//! `LINEARENUM-TOPK` — Algorithm 4: type partitioning (§4.2.1) plus
//! root sampling (§4.2.2).
//!
//! Candidate roots are processed one root **type** at a time, bounding the
//! `TreeDict` to a single partition. Per type `C`:
//!
//! 1. the number of valid subtrees rooted in the partition is computed
//!    *without enumeration* as `N_R = Σ_r Πᵢ |Paths(wᵢ, r)|` (line 4);
//! 2. if `N_R ≥ Λ`, each root is expanded only with probability `ρ`
//!    (lines 5–8) and pattern scores are estimated from the sample
//!    (Horvitz–Thompson for `Sum`/`Count`);
//! 3. only the partition's estimated top-k patterns get their exact scores
//!    and subtrees recomputed (line 11) before entering the global queue.
//!
//! With `Λ = ∞` or `ρ = 1` the result is the exact top-k (Theorem 4); with
//! sampling, the pairwise error probability decays as
//! `exp(−2·((s1−s2)/(s1+s2))²·ρ²)` (Theorem 5).

use crate::common::{expand_root, for_each_path_tuple, materialize_tree, QueryContext, TreeDict};
use crate::result::{QueryStats, RankedPattern, SearchResult};
use crate::score::ScoreAcc;
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Sampling parameters (`Λ`, `ρ`) of Algorithm 4.
#[derive(Clone, Copy, Debug)]
pub struct SamplingConfig {
    /// Sampling threshold `Λ`: partitions with at least this many valid
    /// subtrees are sampled. `u64::MAX` disables sampling entirely.
    pub lambda: u64,
    /// Sampling rate `ρ ∈ (0, 1]`.
    pub rho: f64,
    /// RNG seed for the Bernoulli root selection.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            lambda: u64::MAX,
            rho: 1.0,
            seed: 42,
        }
    }
}

impl SamplingConfig {
    /// No sampling: exact top-k (`Λ = ∞, ρ = 1`).
    pub fn exact() -> Self {
        Self::default()
    }

    /// Sample at threshold `lambda` with rate `rho`.
    pub fn new(lambda: u64, rho: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rho) && rho > 0.0,
            "rho must be in (0,1]"
        );
        SamplingConfig { lambda, rho, seed }
    }
}

/// Run `LINEARENUM-TOPK`.
pub fn linear_enum_topk(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    samp: &SamplingConfig,
) -> SearchResult {
    let t0 = Instant::now();
    let roots = ctx.candidate_roots();
    let mut rng = SmallRng::seed_from_u64(samp.seed);

    // Partition candidate roots by type (iteration in type-id order for
    // determinism).
    let mut by_type: FxHashMap<TypeId, Vec<NodeId>> = FxHashMap::default();
    for &r in &roots {
        by_type.entry(ctx.g.node_type(r)).or_default().push(r);
    }
    let mut types: Vec<TypeId> = by_type.keys().copied().collect();
    types.sort_unstable();

    let mut global: Vec<RankedPattern> = Vec::new();
    let mut subtrees_expanded = 0usize;
    let mut patterns_seen = 0usize;

    for c in types {
        let part = &by_type[&c];

        // Line 4: N_R without enumeration.
        let mut n_r: u64 = 0;
        for &r in part {
            let mut prod: u64 = 1;
            for w in &ctx.words {
                prod = prod.saturating_mul(w.num_paths_of_root(r) as u64);
            }
            n_r = n_r.saturating_add(prod);
        }
        // Line 5.
        let rate = if n_r >= samp.lambda { samp.rho } else { 1.0 };

        // Lines 6–8: expand (a sample of) the partition's roots.
        let mut dict = TreeDict::default();
        for &r in part {
            if rate >= 1.0 || rng.gen::<f64>() < rate {
                subtrees_expanded += expand_root(ctx, cfg, r, &mut dict);
            }
        }
        patterns_seen += dict.len();

        // Lines 9–10: estimated scores; keep the partition's top-k.
        let mut local: Vec<(Box<[u32]>, crate::common::PatternGroup, f64)> = dict
            .into_iter()
            .map(|(key, group)| {
                let est = group.acc.finish_estimated(cfg.scoring.aggregation, rate);
                (key, group, est)
            })
            .collect();
        local.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        local.truncate(cfg.k);

        // Line 11: exact re-scoring for the estimated winners.
        for (key, group, _est) in local {
            let (score, num_trees, trees) = if rate >= 1.0 {
                (
                    group.acc.finish(cfg.scoring.aggregation),
                    group.acc.count as usize,
                    group.trees,
                )
            } else {
                let pattern_ids: Vec<PatternId> = key.iter().map(|&p| PatternId(p)).collect();
                let (acc, trees) = exact_pattern_score(ctx, cfg, part, &pattern_ids);
                subtrees_expanded += acc.count as usize;
                (
                    acc.finish(cfg.scoring.aggregation),
                    acc.count as usize,
                    trees,
                )
            };
            if num_trees == 0 {
                continue;
            }
            global.push(RankedPattern {
                pattern: ctx.decode_key(&key),
                score,
                num_trees,
                trees,
            });
        }
        // Keep the global queue bounded (paper: queue of size k).
        if global.len() > 4 * cfg.k.max(4) {
            global.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.key().cmp(&b.key()))
            });
            global.truncate(cfg.k);
        }
    }

    SearchResult {
        patterns: global,
        stats: QueryStats {
            candidate_roots: roots.len(),
            subtrees: subtrees_expanded,
            patterns: patterns_seen,
            combos_tried: patterns_seen,
            combos_pruned: 0,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

/// Exact score and subtrees of one tree pattern over a root partition,
/// via `Paths(wᵢ, r, Pᵢ)` lookups (root-first index).
fn exact_pattern_score(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    part: &[NodeId],
    pattern: &[PatternId],
) -> (ScoreAcc, Vec<crate::subtree::ValidSubtree>) {
    let m = ctx.m();
    let mut acc = ScoreAcc::new();
    let mut trees = Vec::new();
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    for &r in part {
        slices.clear();
        let mut empty = false;
        for (i, w) in ctx.words.iter().enumerate() {
            let s = w.paths_of_root_pattern(r, pattern[i]);
            if s.is_empty() {
                empty = true;
                break;
            }
            slices.push(s);
        }
        if empty {
            continue;
        }
        for_each_path_tuple(&slices, &mut scratch, |tuple| {
            if cfg.strict_trees {
                node_scratch.clear();
                for (i, p) in tuple.iter().enumerate() {
                    node_scratch.push(ctx.words[i].nodes_of(p));
                }
                if !node_slices_form_tree(r, &node_scratch) {
                    return;
                }
            }
            let score = cfg.scoring.tree_score_of(tuple);
            acc.push(score);
            if trees.len() < cfg.max_rows {
                trees.push(materialize_tree(&ctx.words, r, tuple, score));
            }
        });
    }
    (acc, trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(&g, &t, &BuildConfig { d: 3, threads: 1 });
        (g, t, idx)
    }

    #[test]
    fn exact_mode_matches_linear_enum() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "revenue",
            "database company",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            let cfg = SearchConfig::top(100);
            let le = linear_enum(&ctx, &cfg);
            let tk = linear_enum_topk(&ctx, &cfg, &SamplingConfig::exact());
            assert_eq!(le.patterns.len(), tk.patterns.len(), "query {query}");
            for (a, b) in le.patterns.iter().zip(&tk.patterns) {
                assert_eq!(a.key(), b.key());
                assert!((a.score - b.score).abs() < 1e-9);
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }

    #[test]
    fn always_sampling_rho_one_is_exact() {
        // Λ = 0 forces the sampling code path; ρ = 1 keeps every root, and
        // estimated == exact.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let le = linear_enum(&ctx, &cfg);
        let tk = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 1.0, 1));
        assert_eq!(le.patterns.len(), tk.patterns.len());
        for (a, b) in le.patterns.iter().zip(&tk.patterns) {
            assert_eq!(a.key(), b.key());
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_scores_are_exact_for_reported_patterns() {
        // Whatever sampling does to the *selection*, reported scores are
        // recomputed exactly (line 11).
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let exact = linear_enum(&ctx, &cfg);
        let sampled = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.5, 7));
        for p in &sampled.patterns {
            let reference = exact
                .patterns
                .iter()
                .find(|e| e.key() == p.key())
                .expect("sampled pattern exists exactly");
            assert!((reference.score - p.score).abs() < 1e-9);
            assert_eq!(reference.num_trees, p.num_trees);
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(10);
        let a = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.4, 99));
        let b = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.4, 99));
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key());
        }
    }

    #[test]
    #[should_panic(expected = "rho must be")]
    fn rejects_zero_rho() {
        SamplingConfig::new(10, 0.0, 1);
    }
}
