//! # patternkb-search
//!
//! The core contribution of the VLDB'14 paper: given a keyword query over a
//! knowledge graph, find the **top-k d-height tree patterns** — aggregations
//! of valid subtrees sharing one structural/type signature — and compose
//! each into a table answer.
//!
//! The crate provides:
//!
//! * the scoring-function class of §2.2.3 ([`score`]);
//! * valid subtrees and tree patterns ([`subtree`], [`result`]);
//! * the **enumeration–aggregation baseline** of §2.3 ([`baseline`]) that
//!   works straight off the graph (no path indexes);
//! * **`PATTERNENUM`** (Algorithm 2, [`pattern_enum`]) over the
//!   pattern-first index;
//! * **`LINEARENUM`** (Algorithm 3, [`linear_enum`]) over the root-first
//!   index, with output-linear running time (Theorem 3);
//! * **`LINEARENUM-TOPK`** (Algorithm 4, [`topk`]) adding type partitioning
//!   (§4.2.1) and root sampling with Hoeffding-bounded error (§4.2.2,
//!   Theorem 5);
//! * **`PATTERNENUM` with admissible upper-bound pruning** ([`bound`]) —
//!   an extension beyond the paper that skips provably-unranked pattern
//!   combinations before their set intersections;
//! * individual-subtree ranking for the §5.3 comparison ([`individual`]);
//! * exact pattern counting for the Theorem-1 experiments ([`counting`]);
//! * table-answer composition per §2.2.2 ([`table`]) with user-facing
//!   presentation — friendly column names, ordering, Markdown/CSV
//!   ([`presentation`]);
//! * a cost-based planner routing each query to the cheapest algorithm
//!   ([`plan`]);
//! * MMR diversification of near-duplicate interpretations ([`mod@diversify`]);
//! * a version-aware LRU result cache ([`cache`]) and snapshot-swap
//!   concurrent serving under live mutation ([`concurrent`]).
//!
//! ## Sharded execution
//!
//! The index partitions into **root-range shards**
//! ([`patternkb_index::PathIndexes`]; knob: [`EngineBuilder::shards`],
//! default = available parallelism). Every algorithm fans out one worker
//! per shard over per-shard [`common::ShardContext`] views — with a shared
//! atomic top-k threshold tightening [`bound`]'s pruning globally — and
//! the per-shard partial pattern groups merge at the top-k heap
//! ([`common::merge_shard_dicts`]). Scores accumulate **exactly**
//! ([`score::ExactSum`]), so sharded answers are bit-identical to
//! `shards(1)` (proptest-enforced); [`QueryStats::per_shard`] reports how
//! the work split.
//!
//! ## The request/response API
//!
//! The public surface is three types plus one serving handle:
//!
//! * [`EngineBuilder`] — fluent construction: graph, stemmer, synonyms,
//!   height `d`, build threads, planner thresholds, cache capacity, or an
//!   index snapshot to skip construction;
//! * [`SearchRequest`] — raw text or a pre-parsed [`Query`], plus k,
//!   algorithm selection (including [`request::AlgorithmChoice::Auto`]),
//!   sampling, diversification, relaxation, presentation and explain
//!   options, all defaultable;
//! * [`SearchResponse`] — ranked patterns, composed tables, the chosen
//!   algorithm, timing/stats, and the optional extras;
//! * [`SharedEngine`] — the concurrent serving handle: the same
//!   `respond(&SearchRequest) -> Result<SearchResponse, Error>` entry
//!   point, with the version-aware [`QueryCache`] built in and
//!   snapshot-swap ingest ([`concurrent`]).
//!
//! Every failure on the query route is a typed [`Error`]. The pre-0.2
//! `search_*`/`build*` facade shims were removed in 0.3; the request
//! types above cover their whole surface (see the migration pointer in
//! the `patternkb` facade crate docs).
//!
//! ```
//! use patternkb_search::{EngineBuilder, SearchRequest};
//!
//! let (graph, _) = patternkb_datagen::figure1();
//! let engine = EngineBuilder::new().graph(graph).height(3).build()?;
//! let response = engine.respond(&SearchRequest::text("database company").k(10))?;
//! assert!(!response.is_empty());
//! # Ok::<(), patternkb_search::Error>(())
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod bound;
pub mod builder;
pub mod cache;
pub mod common;
pub mod concurrent;
pub mod counting;
pub mod diversify;
pub mod durability;
pub mod engine;
pub mod error;
pub mod explain;
pub mod individual;
pub mod intern;
pub mod linear_enum;
pub mod metrics;
pub mod pattern_enum;
pub mod plan;
pub mod presentation;
pub mod query;
pub mod relax;
pub mod request;
pub mod result;
pub mod score;
pub mod subtree;
pub mod table;
pub mod topk;
pub mod unified;

pub use builder::EngineBuilder;
pub use cache::QueryCache;
pub use concurrent::{IngestError, IngestOutcome, SharedEngine};
pub use diversify::{diversify, DiversifyConfig};
pub use durability::{Durability, DurabilityMetrics, DurabilityOptions};
pub use engine::{Algorithm, SearchEngine};
pub use error::Error;
pub use patternkb_index::{RefreshStats, StorageBackend};
pub use patternkb_wal::{FsyncPolicy, FSYNC_BOUNDS};
pub use plan::{PlannerConfig, QueryEstimate};
pub use query::{ParseError, Query};
pub use request::{AlgorithmChoice, CacheOutcome, SearchRequest, SearchResponse};
pub use result::{HotPathStats, QueryStats, RankedPattern, SearchResult, ShardStats};
pub use score::{Aggregation, ScoringConfig};
pub use subtree::{TreePath, ValidSubtree};
pub use table::TableAnswer;

/// Knobs shared by every search algorithm.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Number of tree patterns to return (the paper defaults to 100).
    pub k: usize,
    /// The scoring function (Eqs. (2)–(6)).
    pub scoring: ScoringConfig,
    /// Reject path tuples whose union is not a tree (two paths converging
    /// on one node via different routes). The paper's algorithms do **not**
    /// perform this check (see DESIGN.md §2); enable it as an ablation.
    pub strict_trees: bool,
    /// Materialize at most this many example subtrees (table rows) per
    /// returned pattern. Scores always aggregate over *all* subtrees.
    pub max_rows: usize,
    /// Let the pruned enumerator abandon a pattern combination mid-scan
    /// when a suffix score bound ([`patternkb_index::WordPathIndex::
    /// pattern_block_bounds`]) proves its remaining run blocks cannot
    /// lift it past the shared top-k threshold. Exact-preserving for
    /// `Sum`/`Count`/`Max` ([`Aggregation::Avg`] never skips); only
    /// engages on single-shard indexes, where the per-shard bounds are
    /// global. Disable to A/B the skipping against a full scan.
    pub block_skipping: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            k: 100,
            scoring: ScoringConfig::default(),
            strict_trees: false,
            max_rows: 64,
            block_skipping: true,
        }
    }
}

impl SearchConfig {
    /// Config returning the top `k` with otherwise default settings.
    pub fn top(k: usize) -> Self {
        SearchConfig {
            k,
            ..Default::default()
        }
    }
}
