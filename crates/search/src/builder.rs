//! Fluent engine construction.
//!
//! [`EngineBuilder`] gathers everything the old free-floating constructors
//! (`SearchEngine::build`, `build_with_stemmer`, `load_index`,
//! `SharedEngine::new` + caller-managed `QueryCache`) took as positional
//! arguments: the graph, the text pipeline (stemmer, synonyms), the index
//! height `d`, build parallelism, planner thresholds, result-cache
//! capacity, and an optional index-snapshot path to skip Algorithm-1
//! construction. `build()` yields an immutable [`SearchEngine`];
//! `build_shared()` yields the [`SharedEngine`] serving handle with its
//! version-aware cache built in.
//!
//! ```
//! # use patternkb_search::EngineBuilder;
//! # use patternkb_datagen::figure1;
//! let (graph, _) = figure1();
//! let engine = EngineBuilder::new()
//!     .graph(graph)
//!     .height(3)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! assert_eq!(engine.d(), 3);
//! ```

use crate::concurrent::SharedEngine;
use crate::durability::{self, Durability, DurabilityOptions};
use crate::engine::SearchEngine;
use crate::error::Error;
use crate::plan::PlannerConfig;
use patternkb_graph::KnowledgeGraph;
use patternkb_index::{build_indexes, BuildConfig, StorageBackend};
use patternkb_text::{Stemmer, SynonymTable, TextIndex};
use patternkb_wal::{checkpoint, FsyncPolicy, Wal, WalOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Builds a [`SearchEngine`] or [`SharedEngine`]. See the module docs.
///
/// ```
/// use patternkb_search::{EngineBuilder, SearchRequest};
///
/// let (graph, _) = patternkb_datagen::figure1();
/// let engine = EngineBuilder::new()
///     .graph(graph)
///     .height(3)   // index height d
///     .shards(2)   // root-range shards (answers are bit-identical)
///     .threads(1)  // build parallelism
///     .build()
///     .unwrap();
/// let response = engine
///     .respond(&SearchRequest::text("database software company").k(5))
///     .unwrap();
/// assert!(!response.patterns.is_empty());
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    graph: Option<KnowledgeGraph>,
    synonyms: SynonymTable,
    stemmer: Stemmer,
    d: usize,
    threads: usize,
    shards: usize,
    planner: PlannerConfig,
    cache_capacity: usize,
    index_snapshot: Option<PathBuf>,
    storage: StorageBackend,
    data_dir: Option<PathBuf>,
    durability: DurabilityOptions,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// A builder with the paper's defaults: `d = 3`, lite stemmer, no
    /// synonyms, all available cores for index construction, one index
    /// shard per available core, default planner thresholds, a 256-entry
    /// result cache.
    pub fn new() -> Self {
        EngineBuilder {
            graph: None,
            synonyms: SynonymTable::new(),
            stemmer: Stemmer::Lite,
            d: 3,
            threads: 0,
            shards: 0,
            planner: PlannerConfig::default(),
            cache_capacity: 256,
            index_snapshot: None,
            storage: StorageBackend::Heap,
            data_dir: None,
            durability: DurabilityOptions::default(),
        }
    }

    /// The knowledge graph to index (required).
    pub fn graph(mut self, graph: KnowledgeGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Synonym table folded into the canonical word-id space.
    pub fn synonyms(mut self, synonyms: SynonymTable) -> Self {
        self.synonyms = synonyms;
        self
    }

    /// Stemmer used at index and query time (see [`Stemmer`] for the
    /// Lite/Porter/None trade-offs).
    pub fn stemmer(mut self, stemmer: Stemmer) -> Self {
        self.stemmer = stemmer;
        self
    }

    /// Height threshold `d` for the path indexes (the paper uses 3–5).
    pub fn height(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// OS threads for index construction; 0 = available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Root-range shards the index is partitioned into; queries run one
    /// worker per shard and merge at the top-k heap, with answers
    /// **bit-identical** to `shards(1)`. 0 (the default) = available
    /// parallelism. When loading an [`Self::index_snapshot`] the stored
    /// shard layout wins.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Cost-based planner thresholds used by `Auto` algorithm routing.
    pub fn planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Capacity of the [`SharedEngine`] result cache (entries). Only
    /// `build_shared` uses it.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Load the path indexes from a previously saved snapshot instead of
    /// building them (cf. Figure 6 — construction dominates). The synonym
    /// table and stemmer must match the ones used at save time, and the
    /// stored height overrides [`Self::height`].
    pub fn index_snapshot(mut self, path: impl Into<PathBuf>) -> Self {
        self.index_snapshot = Some(path.into());
        self
    }

    /// Which storage tier serves the path indexes.
    ///
    /// * [`StorageBackend::Heap`] (default): snapshots are fully decoded
    ///   at load time; indexes built from the graph are heap-resident by
    ///   nature.
    /// * [`StorageBackend::Mmap`]: a **v5** [`Self::index_snapshot`] (or
    ///   v5 checkpoint blob under [`Self::data_dir`]) is mapped read-only
    ///   and per-word decode is deferred to first query touch — boot cost
    ///   and resident memory stop scaling with index size. Answers are
    ///   bit-identical to the heap tier. Pre-v5 snapshots fall back to
    ///   the heap tier (they have no offset table to map).
    pub fn storage(mut self, storage: StorageBackend) -> Self {
        self.storage = storage;
        self
    }

    /// Boot durably from (and persist ingests into) `dir`: load the
    /// newest checkpoint if one exists (skipping graph/index
    /// construction), replay the write-ahead log tail past it, and attach
    /// a [`Durability`] handle so every subsequent ingest is logged
    /// before it is acked ([`SharedEngine::ingest_with`]). With no
    /// checkpoint yet, the engine cold-builds from [`Self::graph`] as
    /// usual and the directory is created. `build_shared` opens the log
    /// read-write (truncating any torn tail); `build` replays it
    /// read-only and leaves the files untouched.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Fsync policy for the write-ahead log (only meaningful with
    /// [`Self::data_dir`]); default `group(5ms)`.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.durability.fsync = policy;
        self
    }

    /// Checkpoint once the log exceeds this many bytes (with
    /// [`Self::data_dir`]).
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.durability.checkpoint_bytes = bytes;
        self
    }

    /// Checkpoint once the log holds this many records (with
    /// [`Self::data_dir`]).
    pub fn checkpoint_records(mut self, records: u64) -> Self {
        self.durability.checkpoint_records = records;
        self
    }

    fn validate(&self) -> Result<(), Error> {
        if self.graph.is_none() {
            return Err(Error::MissingGraph);
        }
        let max_d = patternkb_index::build::MAX_D;
        if self.index_snapshot.is_none() && !(1..=max_d).contains(&self.d) {
            return Err(Error::InvalidRequest(format!(
                "height d must be in 1..={max_d}, got {}",
                self.d
            )));
        }
        let rho = self.planner.sampling.rho;
        // NaN-rejecting form: `rho <= 0.0 || rho > 1.0` would let NaN
        // through and silently sample zero roots.
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(Error::Planner(format!(
                "sampling rho must be in (0, 1], got {rho}"
            )));
        }
        Ok(())
    }

    /// Build the immutable engine. With [`Self::data_dir`], this is the
    /// *read-only* durable boot: newest checkpoint + log replay, without
    /// truncating the log or opening it for append.
    pub fn build(self) -> Result<SearchEngine, Error> {
        self.validate()?;
        match self.data_dir.clone() {
            None => self.build_cold(),
            Some(dir) => {
                let mut engine = self.boot_base(&dir)?;
                let summary =
                    patternkb_wal::replay(&dir.join(durability::WAL_FILE)).map_err(Error::Io)?;
                durability::replay_records(&mut engine, &summary.records);
                Ok(engine)
            }
        }
    }

    /// The cold path of [`Self::build`]: construct everything from the
    /// given graph (or index snapshot), ignoring any data dir.
    fn build_cold(self) -> Result<SearchEngine, Error> {
        let EngineBuilder {
            graph,
            synonyms,
            stemmer,
            d,
            threads,
            shards,
            planner,
            index_snapshot,
            storage,
            ..
        } = self;
        let graph = graph.expect("validated above");
        let text = TextIndex::build_with(&graph, synonyms, stemmer);
        let (idx, load_time) = match index_snapshot {
            Some(path) => {
                let t0 = std::time::Instant::now();
                // The mapped tier needs a v5 offset table; earlier
                // snapshot generations can only be decoded, so they fall
                // back to the heap tier regardless of the knob.
                let idx = match storage {
                    StorageBackend::Mmap if file_is_v5(&path)? => {
                        patternkb_index::storage::open_mapped(&path)?
                    }
                    _ => patternkb_index::snapshot::load(&path)?,
                };
                (idx, Some(t0.elapsed()))
            }
            None => (
                build_indexes(&graph, &text, &BuildConfig { d, threads, shards }),
                None,
            ),
        };
        let mut engine = SearchEngine::from_parts(graph, text, idx).with_planner(planner);
        if let Some(took) = load_time {
            engine = engine.with_snapshot_load(took);
        }
        Ok(engine)
    }

    /// Base state of a durable boot: the newest readable checkpoint in
    /// `dir` (graph + index decoded, version restored), or a cold build
    /// when the directory holds none.
    fn boot_base(self, dir: &Path) -> Result<SearchEngine, Error> {
        match checkpoint::load_latest(dir).map_err(Error::Io)? {
            None => self.build_cold(),
            Some((cp, path)) => {
                let t0 = std::time::Instant::now();
                let wrap = |e| Error::Io(patternkb_graph::snapshot::invalid_data(&path, e));
                let graph = patternkb_graph::snapshot::decode(&cp.graph).map_err(wrap)?;
                // Checkpoints written since v5 carry the index as a v5
                // container: under the mapped tier the blob is *opened*
                // (lexicon parse only), not decoded — the durable-boot
                // fast path. Pre-v5 checkpoint blobs decode as before.
                let idx = if self.storage == StorageBackend::Mmap
                    && patternkb_index::storage::is_v5(&cp.index)
                {
                    patternkb_index::storage::open_bytes(cp.index).map_err(wrap)?
                } else {
                    patternkb_index::snapshot::decode(&cp.index).map_err(wrap)?
                };
                let text = TextIndex::build_with(&graph, self.synonyms, self.stemmer);
                let mut engine = SearchEngine::from_parts(graph, text, idx)
                    .with_planner(self.planner)
                    .with_snapshot_load(t0.elapsed());
                if cp.version > 0 {
                    engine.rebase_version(cp.version - 1);
                }
                Ok(engine)
            }
        }
    }

    /// Build the concurrent serving handle: the engine behind a
    /// snapshot-swap pointer plus a version-aware result cache of
    /// [`Self::cache_capacity`] entries. With [`Self::data_dir`], boots
    /// from the newest checkpoint plus the log tail (truncating any torn
    /// or unreplayable suffix — a damaged log never refuses to boot) and
    /// attaches the [`Durability`] handle driving the durable write path.
    pub fn build_shared(self) -> Result<SharedEngine, Error> {
        self.validate()?;
        let capacity = self.cache_capacity;
        match self.data_dir.clone() {
            None => Ok(SharedEngine::with_cache_capacity(
                self.build_cold()?,
                capacity,
            )),
            Some(dir) => {
                std::fs::create_dir_all(&dir).map_err(Error::Io)?;
                let opts = self.durability.clone();
                let mut engine = self.boot_base(&dir)?;
                let (wal, summary) = Wal::open(
                    dir.join(durability::WAL_FILE),
                    WalOptions { fsync: opts.fsync },
                )
                .map_err(Error::Io)?;
                if let Some(offset) = durability::replay_records(&mut engine, &summary.records) {
                    // A record that is CRC-intact but does not follow
                    // (version gap, unreplayable delta): drop it and its
                    // suffix — boot from what does replay.
                    wal.truncate_to(offset).map_err(Error::Io)?;
                }
                let handle = Arc::new(Durability::new(wal, dir, opts));
                Ok(SharedEngine::assemble(engine, capacity, Some(handle)))
            }
        }
    }
}

/// Sniff a snapshot file's 4-byte magic without reading the body (the
/// whole point of the mapped tier is not to).
fn file_is_v5(path: &Path) -> Result<bool, Error> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(Error::Io)?;
    let mut magic = [0u8; 4];
    match f.read_exact(&mut magic) {
        Ok(()) => Ok(patternkb_index::storage::is_v5(&magic)),
        // Shorter than any magic: not v5; the fallback loader will
        // report the truncation with the file path attached.
        Err(_) => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchRequest;
    use patternkb_datagen::figure1;

    #[test]
    fn builder_defaults_answer_figure1() {
        let (g, _) = figure1();
        let e = EngineBuilder::new().graph(g).threads(1).build().unwrap();
        let resp = e
            .respond(&SearchRequest::text("database software company revenue"))
            .unwrap();
        assert_eq!(resp.patterns.len(), 9);
    }

    #[test]
    fn missing_graph_is_typed() {
        assert!(matches!(
            EngineBuilder::new().build(),
            Err(Error::MissingGraph)
        ));
    }

    #[test]
    fn bad_height_is_typed() {
        let (g, _) = figure1();
        match EngineBuilder::new().graph(g).height(0).build() {
            Err(Error::InvalidRequest(msg)) => assert!(msg.contains("height")),
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn bad_planner_is_typed() {
        for bad_rho in [0.0, -1.0, 2.0, f64::NAN] {
            let (g, _) = figure1();
            let mut planner = PlannerConfig::default();
            planner.sampling.rho = bad_rho;
            match EngineBuilder::new().graph(g).planner(planner).build() {
                Err(Error::Planner(msg)) => assert!(msg.contains("rho")),
                other => panic!("expected Planner error for rho {bad_rho}, got {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_through_builder() {
        let (g, _) = figure1();
        let e = EngineBuilder::new().graph(g).threads(1).build().unwrap();
        let dir = std::env::temp_dir().join("patternkb_builder_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("builder.pkbi");
        e.save_index(&path).unwrap();

        let (g, _) = figure1();
        let reloaded = EngineBuilder::new()
            .graph(g)
            .index_snapshot(&path)
            .build()
            .unwrap();
        std::fs::remove_file(&path).ok();
        let resp = reloaded
            .respond(&SearchRequest::text("database software company revenue"))
            .unwrap();
        assert_eq!(resp.patterns.len(), 9);

        let (g, _) = figure1();
        match EngineBuilder::new()
            .graph(g)
            .index_snapshot(dir.join("missing.pkbi"))
            .build()
        {
            Err(Error::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_snapshot_layout_survives_reload() {
        // The stored shard layout wins over the builder's shards knob, and
        // the reloaded engine answers identically to a fresh build.
        let (g, _) = figure1();
        let e = EngineBuilder::new()
            .graph(g)
            .threads(1)
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(e.num_shards(), 3);
        let dir = std::env::temp_dir().join("patternkb_builder_sharded_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sharded.pkbi");
        e.save_index(&path).unwrap();

        let (g, _) = figure1();
        let reloaded = EngineBuilder::new()
            .graph(g)
            .shards(7) // ignored: the snapshot's layout wins
            .index_snapshot(&path)
            .build()
            .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.num_shards(), 3);
        let req = SearchRequest::text("database software company revenue").k(100);
        let a = e.respond(&req).unwrap();
        let b = reloaded.respond(&req).unwrap();
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key());
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}
