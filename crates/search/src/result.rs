//! Search results: ranked tree patterns with their aggregated subtrees.

use crate::subtree::ValidSubtree;
use patternkb_graph::KnowledgeGraph;
use patternkb_index::PathPattern;
use std::time::Duration;

/// One answer: a tree pattern, its relevance score, and (a sample of) the
/// valid subtrees satisfying it — one table row each.
#[derive(Clone, Debug)]
pub struct RankedPattern {
    /// Per-keyword path patterns (Eq. (1)), decoded and self-contained so
    /// results from different algorithms (with different interners) compare
    /// structurally.
    pub pattern: Vec<PathPattern>,
    /// `score(P, q)` under the aggregation in effect.
    pub score: f64,
    /// Total number of valid subtrees `|trees(P)|`.
    pub num_trees: usize,
    /// Materialized subtrees, up to `SearchConfig::max_rows`, in discovery
    /// order (root ascending).
    pub trees: Vec<ValidSubtree>,
}

impl RankedPattern {
    /// Height of the tree pattern — the max path-pattern height (§2.2.2).
    pub fn height(&self) -> usize {
        self.pattern
            .iter()
            .map(PathPattern::height)
            .max()
            .unwrap_or(0)
    }

    /// Paper-style rendering, e.g.
    /// `[(Software) (Genre) (Model) | (Software) | …]`.
    pub fn display(&self, g: &KnowledgeGraph) -> String {
        let parts: Vec<String> = self.pattern.iter().map(|p| p.display(g)).collect();
        format!("[{}]", parts.join(" | "))
    }

    /// A canonical sort/equality key for deterministic ordering and
    /// cross-algorithm comparison.
    pub fn key(&self) -> Vec<u32> {
        let mut key = Vec::new();
        for p in &self.pattern {
            key.extend(p.encode());
        }
        key
    }
}

/// Per-shard slice of one query execution (how the work split across the
/// index's root-range shards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Index shard id (ascending root ranges).
    pub shard: usize,
    /// Candidate roots that fell in this shard's range.
    pub candidate_roots: usize,
    /// Valid subtrees enumerated by this shard's worker.
    pub subtrees: usize,
    /// Non-empty tree patterns this shard contributed to (before the
    /// cross-shard merge, so the same pattern may count in several shards).
    pub patterns: usize,
}

/// Data-plane counters of one execution: how much decode, intersection,
/// and key-allocation work the hot path did. These make the flattened
/// query plane observable — a perf regression shows up here before it
/// shows up in `elapsed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotPathStats {
    /// Cursor seeks issued by gallop intersections (candidate roots,
    /// per-combination emptiness tests, relaxation counts).
    pub intersect_seeks: u64,
    /// Posting blocks decoded through [`patternkb_index::blocks`] cursors
    /// (0 when the query was served entirely from the raw in-memory
    /// index).
    pub blocks_decoded: u64,
    /// Run blocks the pruned enumerator abandoned unscanned because a
    /// suffix score bound proved they could not beat the shared top-k
    /// threshold ([`crate::SearchConfig::block_skipping`]).
    pub blocks_skipped: u64,
    /// Distinct tree-pattern keys interned across all dictionaries — the
    /// number of key-arena allocations (the pre-interner engine paid one
    /// boxed-slice allocation per candidate *access* instead).
    pub keys_interned: u64,
    /// Bytes held by the pattern-key arenas at the end of the search.
    pub key_arena_bytes: u64,
}

impl HotPathStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &HotPathStats) {
        self.intersect_seeks += other.intersect_seeks;
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.keys_interned += other.keys_interned;
        self.key_arena_bytes += other.key_arena_bytes;
    }
}

/// Execution counters reported next to the answers (drives the §5 plots).
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Candidate roots considered (`|R|`).
    pub candidate_roots: usize,
    /// Valid subtrees enumerated (`N`, or the sampled subset for
    /// `LINEARENUM-TOPK`).
    pub subtrees: usize,
    /// Non-empty tree patterns discovered.
    pub patterns: usize,
    /// Pattern combinations *tried* — for `PATTERNENUM` this includes the
    /// empty ones it wastes joins on (§4.1's `Θ(p^m)` term).
    pub combos_tried: usize,
    /// Pattern combinations skipped by an admissible score upper bound
    /// before any intersection work (only [`crate::bound`] sets this).
    pub combos_pruned: usize,
    /// How the execution split over the index's root-range shards: one
    /// entry per shard holding all keywords (index-based algorithms) or
    /// one per root-range worker (the index-free baseline, which
    /// partitions its candidate roots by the same bounds). Empty only for
    /// provably-empty queries, which never reach a shard worker.
    pub per_shard: Vec<ShardStats>,
    /// Hot-path work counters (decode / intersect / alloc).
    pub hot: HotPathStats,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// The outcome of one query execution.
#[derive(Clone, Debug, Default)]
pub struct SearchResult {
    /// Top-k patterns, best first; ties broken by pattern key for
    /// determinism.
    pub patterns: Vec<RankedPattern>,
    /// Execution counters.
    pub stats: QueryStats,
}

impl SearchResult {
    /// Sort patterns by `(score desc, key asc)` and truncate to `k`.
    pub fn finalize(mut self, k: usize) -> Self {
        self.patterns.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key().cmp(&b.key()))
        });
        self.patterns.truncate(k);
        self
    }

    /// The best pattern, if any.
    pub fn top(&self) -> Option<&RankedPattern> {
        self.patterns.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::TypeId;

    fn pat(score: f64, t: u32) -> RankedPattern {
        RankedPattern {
            pattern: vec![PathPattern {
                types: vec![TypeId(t)],
                attrs: vec![],
                edge_terminal: false,
            }],
            score,
            num_trees: 1,
            trees: vec![],
        }
    }

    #[test]
    fn finalize_sorts_and_truncates() {
        let r = SearchResult {
            patterns: vec![pat(1.0, 5), pat(3.0, 1), pat(2.0, 9)],
            stats: QueryStats::default(),
        };
        let r = r.finalize(2);
        assert_eq!(r.patterns.len(), 2);
        assert_eq!(r.patterns[0].score, 3.0);
        assert_eq!(r.patterns[1].score, 2.0);
        assert_eq!(r.top().unwrap().score, 3.0);
    }

    #[test]
    fn ties_break_deterministically() {
        let r = SearchResult {
            patterns: vec![pat(1.0, 9), pat(1.0, 2)],
            stats: QueryStats::default(),
        }
        .finalize(10);
        assert_eq!(r.patterns[0].pattern[0].types[0], TypeId(2));
    }

    #[test]
    fn height_of_pattern() {
        let p = pat(1.0, 0);
        assert_eq!(p.height(), 1);
    }
}
