//! Cost-based algorithm selection.
//!
//! The paper leaves the operator with a tension: `PATTERNENUM` is "fast in
//! practice most of the time" but `Θ(pᵐ)` in the worst case (§4.1), while
//! `LINEARENUM-TOPK` is output-linear (Theorem 3) and sampleable
//! (Theorem 5) but pays dictionary aggregation. A production service
//! should not make the user choose. This module estimates the two cost
//! drivers **from the index alone** — both are exact counts obtained
//! without enumerating a single subtree — and picks:
//!
//! * the **pattern-combination count** `Πᵢ |Patterns(wᵢ)|`, the size of
//!   the product `PATTERNENUM` iterates (its §4.1 failure mode); and
//! * the **valid-subtree count** `N = Σ_r Πᵢ |Paths(wᵢ, r)|` (Algorithm 4
//!   line 4), the term `LINEARENUM`'s Theorem-3 running time is linear in.
//!
//! Policy: small combination space → pruned `PATTERNENUM` (no dictionary,
//! tiny footprint, admissible pruning caps the tail); otherwise exact
//! `LINEARENUM-TOPK` while `N` is affordable; otherwise `LINEARENUM-TOPK`
//! with root sampling (Hoeffding-bounded error). Thresholds are exposed in
//! [`PlannerConfig`] and the decision is returned next to the result, so
//! callers can log or override it.

use crate::common::QueryContext;
use crate::counting::count_subtrees;
use crate::engine::Algorithm;
use crate::topk::SamplingConfig;

/// The two cost drivers, measured exactly from the per-word indexes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryEstimate {
    /// `|∩ᵢ Roots(wᵢ)|` — candidate roots (Algorithm 3 line 1).
    pub candidate_roots: usize,
    /// `N = Σ_r Πᵢ |Paths(wᵢ, r)|` — valid subtrees, without enumeration
    /// (saturating).
    pub subtrees: u64,
    /// `Πᵢ |Patterns(wᵢ)|` — the pattern product `PATTERNENUM` iterates in
    /// the worst case (saturating).
    pub pattern_combos: u64,
    /// `Σᵢ Sᵢ` — total postings behind the query's keywords.
    pub index_postings: usize,
}

/// Measure both cost drivers. Cost: one sorted-list intersection plus a
/// per-root group-size scan — the same work `LINEARENUM` line 1 and
/// Algorithm 4 line 4 do before any enumeration. All quantities are
/// global (merged over the index's root-range shards), so the decision is
/// independent of the shard count.
pub fn estimate(ctx: &QueryContext<'_>) -> QueryEstimate {
    let candidate_roots = ctx.candidate_roots().len();
    let subtrees = count_subtrees(ctx);
    let mut combos: u64 = 1;
    let mut index_postings = 0usize;
    for i in 0..ctx.m() {
        combos = combos.saturating_mul(ctx.global_patterns(i).len() as u64);
        index_postings += ctx.keyword_postings(i);
    }
    QueryEstimate {
        candidate_roots,
        subtrees,
        pattern_combos: combos,
        index_postings,
    }
}

/// Planner thresholds. Defaults favor the paper's observations: the join
/// algorithm until its combination space could bite, exact linear
/// enumeration until `N` gets heavy, sampling beyond.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Run pruned `PATTERNENUM` while `pattern_combos` ≤ this.
    pub max_combos: u64,
    /// Run exact `LINEARENUM-TOPK` while `subtrees` ≤ this.
    pub max_subtrees_exact: u64,
    /// Sampling parameters once `subtrees` exceeds the exact budget.
    pub sampling: SamplingConfig,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_combos: 4_096,
            max_subtrees_exact: 1_000_000,
            sampling: SamplingConfig::new(100_000, 0.1, 42),
        }
    }
}

/// Pick an algorithm for the measured costs.
pub fn choose(est: &QueryEstimate, cfg: &PlannerConfig) -> Algorithm {
    if est.pattern_combos <= cfg.max_combos {
        Algorithm::PatternEnumPruned
    } else if est.subtrees <= cfg.max_subtrees_exact {
        Algorithm::LinearEnumTopK(SamplingConfig::exact())
    } else {
        Algorithm::LinearEnumTopK(cfg.sampling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Query, SearchEngine};
    use patternkb_datagen::figure1;
    use patternkb_datagen::worstcase::{worstcase, W1, W2};

    fn fig1_engine() -> SearchEngine {
        let (g, _) = figure1();
        crate::EngineBuilder::new()
            .graph(g)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn estimate_matches_exact_counters() {
        let e = fig1_engine();
        let q = e.parse("database software company revenue").unwrap();
        let ctx = QueryContext::new(e.graph(), e.index(), &q).unwrap();
        let est = estimate(&ctx);
        assert_eq!(est.subtrees, e.count_subtrees(&q));
        assert_eq!(est.subtrees, 10);
        assert!(est.candidate_roots >= 2);
        assert!(est.pattern_combos >= 9, "at least the 9 nonempty patterns");
    }

    #[test]
    fn small_queries_take_the_join_path() {
        let e = fig1_engine();
        let q = e.parse("database company").unwrap();
        let ctx = QueryContext::new(e.graph(), e.index(), &q).unwrap();
        let algo = choose(&estimate(&ctx), &PlannerConfig::default());
        assert!(matches!(algo, Algorithm::PatternEnumPruned));
    }

    #[test]
    fn worstcase_avoids_the_combination_blowup() {
        // §4.1: p² empty combinations. The planner must see the product
        // coming and route to LINEARENUM, which exits immediately.
        let p = 128usize;
        let e = crate::EngineBuilder::new()
            .graph(worstcase(p))
            .height(2)
            .threads(1)
            .build()
            .unwrap();
        let q = e.parse(&format!("{W1} {W2}")).unwrap();
        let ctx = QueryContext::new(e.graph(), e.index(), &q).unwrap();
        let est = estimate(&ctx);
        assert!(est.pattern_combos >= (p * p) as u64);
        assert_eq!(est.subtrees, 0, "no shared roots in the §4.1 graph");
        let algo = choose(&est, &PlannerConfig::default());
        assert!(
            matches!(algo, Algorithm::LinearEnumTopK(s) if s.rho == 1.0),
            "expected exact linear enumeration, got {algo:?}"
        );
    }

    #[test]
    fn heavy_queries_get_sampling() {
        let est = QueryEstimate {
            candidate_roots: 50_000,
            subtrees: 5_000_000,
            pattern_combos: 1 << 40,
            index_postings: 1_000_000,
        };
        let algo = choose(&est, &PlannerConfig::default());
        assert!(matches!(algo, Algorithm::LinearEnumTopK(s) if s.rho < 1.0));
    }

    #[test]
    fn auto_routing_equals_manual_choice() {
        use crate::request::{AlgorithmChoice, SearchRequest};
        let e = fig1_engine();
        for text in ["database software company revenue", "revenue", "bill gates"] {
            let auto = e.respond(&SearchRequest::text(text).k(10)).unwrap();
            assert!(auto.planned);
            let choice = match auto.algorithm {
                Algorithm::Baseline => AlgorithmChoice::Baseline,
                Algorithm::PatternEnum => AlgorithmChoice::PatternEnum,
                Algorithm::PatternEnumPruned => AlgorithmChoice::PatternEnumPruned,
                Algorithm::LinearEnum => AlgorithmChoice::LinearEnum,
                Algorithm::LinearEnumTopK(_) => AlgorithmChoice::LinearEnumTopK,
            };
            let manual = e
                .respond(&SearchRequest::text(text).k(10).algorithm(choice))
                .unwrap();
            assert!(!manual.planned);
            assert_eq!(auto.patterns.len(), manual.patterns.len(), "{text}");
            for (a, b) in auto.patterns.iter().zip(&manual.patterns) {
                assert_eq!(a.key(), b.key());
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn auto_routing_on_unanswerable_query() {
        use crate::request::SearchRequest;
        let e = fig1_engine();
        let q = Query::from_ids([patternkb_graph::WordId(u32::MAX)]);
        let r = e.respond(&SearchRequest::query(q)).unwrap();
        assert!(r.patterns.is_empty());
        // Default decision on an unindexable query.
        assert!(matches!(r.algorithm, Algorithm::PatternEnumPruned));
    }

    #[test]
    fn custom_thresholds_flip_decisions() {
        let e = fig1_engine();
        let q = e.parse("database company").unwrap();
        let ctx = QueryContext::new(e.graph(), e.index(), &q).unwrap();
        let est = estimate(&ctx);
        // Forbid the join path entirely.
        let cfg = PlannerConfig {
            max_combos: 0,
            ..PlannerConfig::default()
        };
        assert!(matches!(
            choose(&est, &cfg),
            Algorithm::LinearEnumTopK(s) if s.rho == 1.0
        ));
        // Forbid exact enumeration too.
        let cfg = PlannerConfig {
            max_combos: 0,
            max_subtrees_exact: 0,
            ..PlannerConfig::default()
        };
        assert!(matches!(
            choose(&est, &cfg),
            Algorithm::LinearEnumTopK(s) if s.rho < 1.0
        ));
    }
}
