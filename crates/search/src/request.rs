//! The request/response pair of the unified query route.
//!
//! One conceptual pipeline — parse keywords → enumerate d-height tree
//! patterns → rank top-k → compose table answers — takes one request type
//! in and hands one response type back:
//!
//! ```text
//! SearchRequest ──▶ SearchEngine::respond / SharedEngine::respond ──▶ SearchResponse
//! ```
//!
//! Every knob on [`SearchRequest`] is defaultable; `SearchRequest::text("…")`
//! alone is a complete request (planner-routed algorithm, paper-default
//! scoring, k = 100). The fluent setters cover the same surface the old
//! `search_*` facade methods did: algorithm selection (including
//! [`AlgorithmChoice::Auto`]), sampling, MMR diversification, query
//! relaxation on empty results, presentation, and explain traces.

use crate::engine::Algorithm;
use crate::plan::PlannerConfig;
use crate::presentation::{PresentationConfig, PresentedTable};
use crate::query::Query;
use crate::relax::Relaxation;
use crate::result::{QueryStats, RankedPattern};
use crate::score::ScoringConfig;
use crate::table::TableAnswer;
use crate::topk::SamplingConfig;

/// How the caller names the query: raw text (parsed by the engine against
/// its vocabulary) or a pre-parsed [`Query`] (word ids must come from the
/// same engine version).
#[derive(Clone, Debug)]
pub enum QueryInput {
    /// Raw user text, tokenized/stemmed/canonicalized by the engine.
    Text(String),
    /// An already-parsed query.
    Parsed(Query),
}

/// Algorithm selection on a request. Unlike the resolved
/// [`Algorithm`], this can defer the decision to the cost-based planner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// Let the planner pick per query from index statistics (the default;
    /// see [`crate::plan`]).
    #[default]
    Auto,
    /// Enumeration–aggregation over the raw graph (§2.3).
    Baseline,
    /// `PATTERNENUM` over the pattern-first index (Algorithm 2).
    PatternEnum,
    /// `PATTERNENUM` with admissible upper-bound pruning.
    PatternEnumPruned,
    /// `LINEARENUM` over the root-first index (Algorithm 3).
    LinearEnum,
    /// `LINEARENUM-TOPK` with type partitioning; honours the request's
    /// [`SearchRequest::sampling`] parameters (Algorithm 4).
    LinearEnumTopK,
}

/// One keyword-search request. Construct with [`SearchRequest::text`] or
/// [`SearchRequest::query`]; every other field has a sensible default and
/// a fluent setter. Fields are public so struct-update syntax works too.
#[derive(Clone, Debug)]
pub struct SearchRequest {
    /// What to search for.
    pub input: QueryInput,
    /// Number of tree patterns to return (the paper defaults to 100).
    pub k: usize,
    /// Which algorithm to run; `Auto` defers to the planner.
    pub algorithm: AlgorithmChoice,
    /// Sampling parameters used when `algorithm` is `LinearEnumTopK`
    /// (exact by default).
    pub sampling: SamplingConfig,
    /// The scoring function (Eqs. (2)–(6)).
    pub scoring: ScoringConfig,
    /// Reject path tuples whose union is not a tree (ablation knob; the
    /// paper's algorithms do not perform this check).
    pub strict_trees: bool,
    /// Materialize at most this many example subtrees (table rows) per
    /// pattern. Scores always aggregate over *all* subtrees.
    pub max_rows: usize,
    /// Let the pruned enumerator skip whole run blocks once a pattern's
    /// suffix score bound falls below the shared top-k threshold (see
    /// [`crate::SearchConfig::block_skipping`]). Exact-preserving; on by
    /// default. Turn off to A/B the skipping against a full scan.
    pub block_skipping: bool,
    /// Compose a [`TableAnswer`] per pattern into
    /// [`SearchResponse::tables`] (the default). Turn off when only the
    /// ranked patterns matter — e.g. timing harnesses or count-only
    /// callers — to skip the per-row string work. A set
    /// [`Self::presentation`] overrides this back on.
    pub compose_tables: bool,
    /// MMR diversification trade-off λ ∈ [0, 1]; `None` = off. Lower
    /// values trade relevance headroom for interpretation coverage.
    pub diversify: Option<f64>,
    /// On an empty result, also compute maximal answerable sub-queries
    /// ([`crate::relax`]).
    pub relax: bool,
    /// Render presentation-ready tables (friendly columns, ordering) into
    /// [`SearchResponse::presented`].
    pub presentation: Option<PresentationConfig>,
    /// Include a per-pattern explain trace (score breakdown plus the top
    /// subtree rendered as a tree) in [`SearchResponse::explain`].
    pub explain: bool,
    /// Override the engine's planner thresholds for this request's `Auto`
    /// routing.
    pub planner: Option<PlannerConfig>,
}

impl SearchRequest {
    fn with_input(input: QueryInput) -> Self {
        SearchRequest {
            input,
            k: 100,
            algorithm: AlgorithmChoice::Auto,
            sampling: SamplingConfig::exact(),
            scoring: ScoringConfig::default(),
            strict_trees: false,
            max_rows: 64,
            block_skipping: true,
            compose_tables: true,
            diversify: None,
            relax: false,
            presentation: None,
            explain: false,
            planner: None,
        }
    }

    /// A request from raw query text, everything else defaulted.
    pub fn text(input: impl Into<String>) -> Self {
        Self::with_input(QueryInput::Text(input.into()))
    }

    /// A request from a pre-parsed query, everything else defaulted.
    pub fn query(query: Query) -> Self {
        Self::with_input(QueryInput::Parsed(query))
    }

    /// Set the number of patterns to return.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Select the algorithm (default: planner-routed `Auto`).
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set `LINEARENUM-TOPK` sampling parameters (implies nothing about
    /// the algorithm choice — combine with
    /// [`AlgorithmChoice::LinearEnumTopK`]).
    pub fn sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = sampling;
        self
    }

    /// Set the scoring function.
    pub fn scoring(mut self, scoring: ScoringConfig) -> Self {
        self.scoring = scoring;
        self
    }

    /// Enable the strict-tree ablation check.
    pub fn strict_trees(mut self, on: bool) -> Self {
        self.strict_trees = on;
        self
    }

    /// Cap materialized example rows per pattern.
    pub fn max_rows(mut self, max_rows: usize) -> Self {
        self.max_rows = max_rows;
        self
    }

    /// Toggle score-bounded block skipping (see the field docs).
    pub fn block_skipping(mut self, on: bool) -> Self {
        self.block_skipping = on;
        self
    }

    /// Toggle table composition (see the field docs).
    pub fn compose_tables(mut self, on: bool) -> Self {
        self.compose_tables = on;
        self
    }

    /// Diversify the top-k with MMR at trade-off `lambda`.
    pub fn diversify(mut self, lambda: f64) -> Self {
        self.diversify = Some(lambda);
        self
    }

    /// Compute relaxations (keywords to drop) when the result is empty.
    pub fn relax(mut self, on: bool) -> Self {
        self.relax = on;
        self
    }

    /// Render presentation-ready tables into the response.
    pub fn presentation(mut self, cfg: PresentationConfig) -> Self {
        self.presentation = Some(cfg);
        self
    }

    /// Include explain traces in the response.
    pub fn explain(mut self, on: bool) -> Self {
        self.explain = on;
        self
    }

    /// Override planner thresholds for this request.
    pub fn planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = Some(planner);
        self
    }
}

/// Where a [`SharedEngine`](crate::concurrent::SharedEngine) answer came
/// from. Direct [`crate::SearchEngine::respond`] calls always report
/// [`CacheOutcome::Uncached`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the version-aware result cache.
    Hit,
    /// Computed and inserted into the cache.
    Miss,
    /// No cache on this route.
    Uncached,
}

/// Everything a query execution produced, in one value.
#[derive(Clone, Debug)]
pub struct SearchResponse {
    /// The parsed query that actually executed (canonical word ids).
    pub query: Query,
    /// Top-k patterns, best first.
    pub patterns: Vec<RankedPattern>,
    /// One composed table answer per pattern, aligned with `patterns`
    /// (empty when the request opted out via
    /// [`SearchRequest::compose_tables`]).
    pub tables: Vec<TableAnswer>,
    /// Presentation-ready tables, aligned with `patterns`, when the
    /// request asked for them.
    pub presented: Option<Vec<PresentedTable>>,
    /// The algorithm that actually ran (the planner's pick under `Auto`).
    pub algorithm: Algorithm,
    /// Whether `algorithm` was chosen by the planner.
    pub planned: bool,
    /// Execution counters of the search proper.
    pub stats: QueryStats,
    /// Maximal answerable sub-queries; non-empty only when the request
    /// asked for relaxation and the result was empty.
    pub relaxations: Vec<Relaxation>,
    /// Per-pattern explain traces, aligned with `patterns`, when
    /// requested.
    pub explain: Option<Vec<String>>,
    /// Cache disposition (always `Uncached` off the shared route).
    pub cache: CacheOutcome,
    /// Wall-clock time of the whole respond call, including parsing,
    /// planning, table composition, and rendering.
    pub elapsed: std::time::Duration,
}

impl SearchResponse {
    /// The best pattern, if any.
    pub fn top(&self) -> Option<&RankedPattern> {
        self.patterns.first()
    }

    /// The best pattern's table, if any.
    pub fn top_table(&self) -> Option<&TableAnswer> {
        self.tables.first()
    }

    /// Whether the query produced no answers.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of answers returned.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let r = SearchRequest::text("database company");
        assert_eq!(r.k, 100);
        assert_eq!(r.algorithm, AlgorithmChoice::Auto);
        assert_eq!(r.max_rows, 64);
        assert!(!r.strict_trees && !r.relax && !r.explain);
        assert!(r.diversify.is_none() && r.presentation.is_none() && r.planner.is_none());
    }

    #[test]
    fn fluent_setters_compose() {
        let r = SearchRequest::text("a b")
            .k(7)
            .algorithm(AlgorithmChoice::LinearEnumTopK)
            .sampling(SamplingConfig::new(1000, 0.5, 9))
            .max_rows(3)
            .diversify(0.6)
            .relax(true)
            .explain(true);
        assert_eq!(r.k, 7);
        assert_eq!(r.algorithm, AlgorithmChoice::LinearEnumTopK);
        assert_eq!(r.sampling.lambda, 1000);
        assert_eq!(r.max_rows, 3);
        assert_eq!(r.diversify, Some(0.6));
        assert!(r.relax && r.explain);
    }
}
