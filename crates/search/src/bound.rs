//! Admissible score upper bounds for pruning `PATTERNENUM`.
//!
//! Algorithm 2's weakness is the `Θ(p^m)` pattern combinations it
//! intersects (§4.1); most are empty or low-scoring. This module extends it
//! with a classic top-k device the paper leaves on the table: before
//! intersecting a combination `P = (P₁ … P_m)`, compute a cheap **upper
//! bound** on `score(P, q)` from per-`(keyword, path-pattern)` aggregates,
//! and skip the combination outright when the bound cannot beat the current
//! k-th best score.
//!
//! The bound is *admissible* for the whole scoring class of §2.2.3:
//!
//! * every subtree score is `len_sum^z1 · pr_sum^z2 · sim_sum^z3` with each
//!   factor sum decomposing over keywords, so replacing each per-keyword
//!   term with its per-`(word, pattern)` extreme (min for negative
//!   exponents, max for positive ones) bounds any single subtree's score;
//! * `|trees(P)| = Σ_r Π_i |Paths(wᵢ, Pᵢ, r)|` is bounded by
//!   `min_i(nᵢ · Π_{j≠i} max_per_root_j)` where `nᵢ` is pattern `Pᵢ`'s total
//!   path count and `max_per_root_j` the largest per-root group;
//! * `Sum ≤ count·max`, `Avg ≤ max`, `Max ≤ max`, `Count ≤ count`.
//!
//! A `1 + 1e-9` slack factor absorbs floating-point non-associativity, so
//! pruning never changes the reported top-k (asserted by agreement tests
//! and the workload test below). The win is largest exactly where
//! `PATTERNENUM` hurts: many-pattern queries where most combinations are
//! empty yet each costs an intersection.

use crate::common::{for_each_path_tuple, intersect_sorted, materialize_tree, QueryContext};
use crate::result::{QueryStats, RankedPattern, SearchResult};
use crate::score::{Aggregation, ScoreAcc};
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting, WordPathIndex};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Multiplicative slack absorbing float rounding between the bound
/// arithmetic and the exact score arithmetic.
const SLACK: f64 = 1.0 + 1e-9;

/// Per-`(keyword, path-pattern)` aggregates backing the bound.
#[derive(Clone, Copy, Debug)]
pub struct PatternAggregates {
    /// Total paths with this pattern (over all roots).
    pub num_paths: u32,
    /// Largest number of paths under a single root.
    pub max_per_root: u32,
    /// Extremes of the per-path scoring terms.
    pub min_len: f64,
    /// Maximum path length.
    pub max_len: f64,
    /// Minimum cached PageRank.
    pub min_pr: f64,
    /// Maximum cached PageRank.
    pub max_pr: f64,
    /// Minimum cached similarity.
    pub min_sim: f64,
    /// Maximum cached similarity.
    pub max_sim: f64,
}

impl PatternAggregates {
    /// Scan one pattern's postings (sorted by root) once.
    fn scan(widx: &WordPathIndex, p: PatternId) -> Self {
        let paths = widx.paths_of_pattern(p);
        debug_assert!(!paths.is_empty());
        let mut agg = PatternAggregates {
            num_paths: paths.len() as u32,
            max_per_root: 0,
            min_len: f64::INFINITY,
            max_len: 0.0,
            min_pr: f64::INFINITY,
            max_pr: 0.0,
            min_sim: f64::INFINITY,
            max_sim: 0.0,
        };
        let mut run = 0u32;
        let mut prev_root = u32::MAX;
        for post in paths {
            let len = post.score_len() as f64;
            agg.min_len = agg.min_len.min(len);
            agg.max_len = agg.max_len.max(len);
            agg.min_pr = agg.min_pr.min(post.pagerank);
            agg.max_pr = agg.max_pr.max(post.pagerank);
            agg.min_sim = agg.min_sim.min(post.sim);
            agg.max_sim = agg.max_sim.max(post.sim);
            if post.root.0 == prev_root {
                run += 1;
            } else {
                prev_root = post.root.0;
                run = 1;
            }
            agg.max_per_root = agg.max_per_root.max(run);
        }
        agg
    }
}

/// `x^z` picking the interval endpoint that maximizes the factor.
#[inline]
fn factor_bound(min: f64, max: f64, z: f64) -> f64 {
    let x = if z >= 0.0 { max } else { min };
    crate::score::powz(x, z)
}

/// Upper-bound `score(P, q)` for the combination described by `aggs`
/// (one entry per keyword) under `cfg.scoring`.
fn combination_bound(aggs: &[&PatternAggregates], cfg: &SearchConfig) -> f64 {
    // Factor sums over keywords, at their extremes.
    let (mut len_min, mut len_max) = (0.0f64, 0.0f64);
    let (mut pr_min, mut pr_max) = (0.0f64, 0.0f64);
    let (mut sim_min, mut sim_max) = (0.0f64, 0.0f64);
    for a in aggs {
        len_min += a.min_len;
        len_max += a.max_len;
        pr_min += a.min_pr;
        pr_max += a.max_pr;
        sim_min += a.min_sim;
        sim_max += a.max_sim;
    }
    let s = cfg.scoring;
    let tree_bound = factor_bound(len_min, len_max, s.z1)
        * factor_bound(pr_min, pr_max, s.z2)
        * factor_bound(sim_min, sim_max, s.z3);

    // |trees(P)| ≤ min over i of nᵢ · Π_{j≠i} max_per_root_j.
    let mut count_bound = f64::INFINITY;
    for i in 0..aggs.len() {
        let mut b = aggs[i].num_paths as f64;
        for (j, a) in aggs.iter().enumerate() {
            if j != i {
                b *= a.max_per_root as f64;
            }
        }
        count_bound = count_bound.min(b);
    }

    match s.aggregation {
        Aggregation::Sum => count_bound * tree_bound,
        Aggregation::Avg | Aggregation::Max => tree_bound,
        Aggregation::Count => count_bound,
    }
}

/// Monotone threshold tracker: the k-th best pattern score seen so far.
struct TopKThreshold {
    heap: BinaryHeap<std::cmp::Reverse<u64>>, // score bits (non-negative f64s order like u64)
    k: usize,
}

impl TopKThreshold {
    fn new(k: usize) -> Self {
        TopKThreshold {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    fn push(&mut self, score: f64) {
        debug_assert!(score >= 0.0);
        self.heap.push(std::cmp::Reverse(score.to_bits()));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// `None` until k scores have been seen.
    fn kth(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|r| f64::from_bits(r.0))
        } else {
            None
        }
    }
}

/// `PATTERNENUM` with admissible upper-bound pruning. Returns exactly the
/// same top-k as [`crate::pattern_enum::pattern_enum`], with
/// `stats.combos_pruned` counting the combinations skipped before any
/// intersection.
pub fn pattern_enum_pruned(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let m = ctx.m();

    // Per keyword: patterns grouped by root type, plus aggregates.
    let mut by_type: Vec<FxHashMap<TypeId, Vec<PatternId>>> = Vec::with_capacity(m);
    let mut aggs: Vec<FxHashMap<PatternId, PatternAggregates>> = Vec::with_capacity(m);
    for w in &ctx.words {
        let mut map: FxHashMap<TypeId, Vec<PatternId>> = FxHashMap::default();
        let mut agg: FxHashMap<PatternId, PatternAggregates> = FxHashMap::default();
        for p in w.patterns() {
            map.entry(ctx.idx.patterns().root_type(p))
                .or_default()
                .push(p);
            agg.insert(p, PatternAggregates::scan(w, p));
        }
        by_type.push(map);
        aggs.push(agg);
    }

    let mut types: Vec<TypeId> = by_type[0].keys().copied().collect();
    types.sort_unstable();
    types.retain(|c| by_type.iter().all(|map| map.contains_key(c)));

    let mut best: Vec<RankedPattern> = Vec::new();
    let mut threshold = TopKThreshold::new(cfg.k.max(1));
    let mut combos_tried = 0usize;
    let mut combos_pruned = 0usize;
    let mut subtrees = 0usize;
    let mut patterns_found = 0usize;
    let mut candidate_roots_seen: Vec<u32> = Vec::new();

    let mut combo = vec![0usize; m];
    let mut chosen: Vec<PatternId> = vec![PatternId(0); m];
    let mut chosen_aggs: Vec<&PatternAggregates> = Vec::with_capacity(m);
    let mut root_lists: Vec<&[u32]> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);

    for &c in &types {
        let lists: Vec<&Vec<PatternId>> = by_type.iter().map(|map| &map[&c]).collect();
        combo.iter_mut().for_each(|x| *x = 0);

        loop {
            combos_tried += 1;
            chosen_aggs.clear();
            for i in 0..m {
                chosen[i] = lists[i][combo[i]];
                chosen_aggs.push(&aggs[i][&chosen[i]]);
            }

            // The pruning test: O(m), no index access.
            let pruned = match threshold.kth() {
                Some(kth) => combination_bound(&chosen_aggs, cfg) * SLACK < kth,
                None => false,
            };
            if pruned {
                combos_pruned += 1;
            } else {
                root_lists.clear();
                for i in 0..m {
                    root_lists.push(ctx.words[i].roots_of_pattern(chosen[i]));
                }
                let roots = intersect_sorted(&root_lists);
                if !roots.is_empty() {
                    let mut acc = ScoreAcc::new();
                    let mut trees = Vec::new();
                    for &r in &roots {
                        let root = NodeId(r);
                        slices.clear();
                        for i in 0..m {
                            slices.push(ctx.words[i].paths_of_pattern_root(chosen[i], root));
                        }
                        subtrees += for_each_path_tuple(&slices, &mut scratch, |tuple| {
                            if cfg.strict_trees {
                                node_scratch.clear();
                                for (i, p) in tuple.iter().enumerate() {
                                    node_scratch.push(ctx.words[i].nodes_of(p));
                                }
                                if !node_slices_form_tree(root, &node_scratch) {
                                    return;
                                }
                            }
                            let score = cfg.scoring.tree_score_of(tuple);
                            acc.push(score);
                            if trees.len() < cfg.max_rows {
                                trees.push(materialize_tree(&ctx.words, root, tuple, score));
                            }
                        });
                    }
                    if acc.count > 0 {
                        patterns_found += 1;
                        candidate_roots_seen.extend_from_slice(&roots);
                        let score = acc.finish(cfg.scoring.aggregation);
                        threshold.push(score);
                        let key_patterns = chosen
                            .iter()
                            .map(|p| ctx.idx.patterns().decode(*p))
                            .collect();
                        best.push(RankedPattern {
                            pattern: key_patterns,
                            score,
                            num_trees: acc.count as usize,
                            trees,
                        });
                        if best.len() >= 2 * cfg.k.max(8) {
                            compact(&mut best, cfg.k);
                        }
                    }
                }
            }

            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < lists[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    candidate_roots_seen.sort_unstable();
    candidate_roots_seen.dedup();
    SearchResult {
        patterns: best,
        stats: QueryStats {
            candidate_roots: candidate_roots_seen.len(),
            subtrees,
            patterns: patterns_found,
            combos_tried,
            combos_pruned,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

fn compact(best: &mut Vec<RankedPattern>, k: usize) {
    best.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key().cmp(&b.key()))
    });
    best.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern_enum::pattern_enum;
    use crate::score::ScoringConfig;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig, PathIndexes};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (patternkb_graph::KnowledgeGraph, TextIndex, PathIndexes) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(&g, &t, &BuildConfig { d: 3, threads: 1 });
        (g, t, idx)
    }

    fn assert_same(a: &SearchResult, b: &SearchResult, label: &str) {
        assert_eq!(a.patterns.len(), b.patterns.len(), "{label}: k size");
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key(), "{label}: pattern identity");
            assert!((x.score - y.score).abs() < 1e-9, "{label}: score");
            assert_eq!(x.num_trees, y.num_trees, "{label}: tree count");
        }
    }

    #[test]
    fn pruned_matches_exact_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "database company",
            "revenue",
            "bill gates",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            for k in [1, 2, 5, 100] {
                let cfg = SearchConfig::top(k);
                let exact = pattern_enum(&ctx, &cfg);
                let pruned = pattern_enum_pruned(&ctx, &cfg);
                assert_same(&exact, &pruned, &format!("{query} k={k}"));
            }
        }
    }

    #[test]
    fn pruning_fires_for_small_k() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        // k = 1 on a query with 9 patterns: some combination must be
        // prunable once the best pattern is found.
        let r = pattern_enum_pruned(&ctx, &SearchConfig::top(1));
        assert!(
            r.stats.combos_pruned > 0,
            "expected pruned combos, stats = {:?}",
            r.stats
        );
        assert_eq!(r.patterns.len(), 1);
        assert!((r.patterns[0].score - 3.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_under_all_aggregations() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        for agg in [
            Aggregation::Sum,
            Aggregation::Avg,
            Aggregation::Max,
            Aggregation::Count,
        ] {
            let cfg = SearchConfig {
                scoring: ScoringConfig {
                    aggregation: agg,
                    ..ScoringConfig::default()
                },
                ..SearchConfig::top(3)
            };
            let exact = pattern_enum(&ctx, &cfg);
            let pruned = pattern_enum_pruned(&ctx, &cfg);
            assert_same(&exact, &pruned, &format!("{agg:?}"));
        }
    }

    #[test]
    fn agrees_with_positive_size_exponent() {
        // z1 = +1 flips which length extreme the bound must take.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database company").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig {
            scoring: ScoringConfig {
                z1: 1.0,
                ..ScoringConfig::default()
            },
            ..SearchConfig::top(2)
        };
        assert_same(
            &pattern_enum(&ctx, &cfg),
            &pattern_enum_pruned(&ctx, &cfg),
            "z1=+1",
        );
    }

    #[test]
    fn aggregates_are_correct() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let w = ctx.words[0];
        for p in w.patterns() {
            let agg = PatternAggregates::scan(w, p);
            let paths = w.paths_of_pattern(p);
            assert_eq!(agg.num_paths as usize, paths.len());
            let min_len = paths.iter().map(|x| x.score_len()).min().unwrap() as f64;
            let max_sim = paths.iter().map(|x| x.sim).fold(0.0f64, f64::max);
            assert_eq!(agg.min_len, min_len);
            assert_eq!(agg.max_sim, max_sim);
            assert!(agg.max_per_root as usize <= paths.len());
        }
    }
}
