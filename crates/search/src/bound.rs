//! Admissible score upper bounds for pruning `PATTERNENUM`.
//!
//! Algorithm 2's weakness is the `Θ(p^m)` pattern combinations it
//! intersects (§4.1); most are empty or low-scoring. This module extends it
//! with a classic top-k device the paper leaves on the table: before
//! intersecting a combination `P = (P₁ … P_m)`, compute a cheap **upper
//! bound** on `score(P, q)` from per-`(keyword, path-pattern)` aggregates,
//! and skip the combination outright when the bound cannot beat the current
//! k-th best score.
//!
//! The bound is *admissible* for the whole scoring class of §2.2.3:
//!
//! * every subtree score is `len_sum^z1 · pr_sum^z2 · sim_sum^z3` with each
//!   factor sum decomposing over keywords, so replacing each per-keyword
//!   term with its per-`(word, pattern)` extreme (min for negative
//!   exponents, max for positive ones) bounds any single subtree's score;
//! * `|trees(P)| = Σ_r Π_i |Paths(wᵢ, Pᵢ, r)|` is bounded by
//!   `min_i(nᵢ · Π_{j≠i} max_per_root_j)` where `nᵢ` is pattern `Pᵢ`'s total
//!   path count and `max_per_root_j` the largest per-root group;
//! * `Sum ≤ count·max`, `Avg ≤ max`, `Max ≤ max`, `Count ≤ count`.
//!
//! A `1 + 1e-9` slack factor absorbs floating-point non-associativity, so
//! pruning never changes the reported top-k (asserted by agreement tests
//! and the workload test below). The win is largest exactly where
//! `PATTERNENUM` hurts: many-pattern queries where most combinations are
//! empty yet each costs an intersection.
//!
//! ## Sharded pruning
//!
//! Under sharding every worker enumerates the **global** combination list
//! with bounds computed from **global** aggregates (merged across shards),
//! and all workers share one atomic top-k threshold: each completed
//! combination's per-shard partial score accumulates into a per-pattern
//! lower bound, and the k-th best of those lower bounds — monotonically
//! tightening as shards make progress — is published to an atomic every
//! worker reads lock-free. The scheme is sound because
//!
//! * each pattern contributes **one** entry (its accumulated partials), so
//!   the k-th best of the entries never exceeds the true k-th best final
//!   score, and
//! * a partial score only lower-bounds the total for monotone aggregations
//!   (`Sum`, `Count`, `Max`); under `Avg` no lower bounds are offered and
//!   pruning simply stays off.
//!
//! A combination pruned by *any* worker is therefore provably outside the
//! global top-k, so its partial groups can be dropped at merge time while
//! every top-k pattern — never prunable anywhere — merges complete and
//! exact.
//!
//! ## The flattened inner loop
//!
//! Every shard walks the **same global combination list in the same
//! order**, so a combination's position in that enumeration is a dense,
//! shard-independent id. The hot loop exploits that:
//!
//! * aggregates and per-shard root slices are precomputed into arrays
//!   **aligned with the per-type pattern lists**, so a combination's
//!   bound needs zero hash lookups;
//! * the shared top-k threshold keys its lower-bound table by the global
//!   combination index (a `u32`), not a boxed key slice;
//! * pruned combinations are recorded into a flat `u32` arena (only under
//!   multi-shard merges) instead of one boxed slice each;
//! * nonempty combinations intern their key once into the shard's
//!   [`TreeDict`] arena.

use crate::common::{
    for_each_path_tuple, materialize_tree, merge_shard_dicts, run_sharded, QueryContext,
    ShardContext, TreeDict,
};
use crate::result::{QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::score::Aggregation;
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use parking_lot::Mutex;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Multiplicative slack absorbing float rounding between the bound
/// arithmetic and the exact score arithmetic.
const SLACK: f64 = 1.0 + 1e-9;

/// Per-`(keyword, path-pattern)` aggregates backing the bound — the
/// stats the index caches per pattern at construction
/// ([`patternkb_index::PatternPostingStats`]); the per-query posting
/// rescan this type used to do was the largest fixed cost of a pruned
/// query.
pub type PatternAggregates = patternkb_index::PatternPostingStats;

/// `x^z` picking the interval endpoint that maximizes the factor.
#[inline]
fn factor_bound(min: f64, max: f64, z: f64) -> f64 {
    let x = if z >= 0.0 { max } else { min };
    crate::score::powz(x, z)
}

/// Upper-bound `score(P, q)` for the combination described by `aggs`
/// (one entry per keyword) under `cfg.scoring`.
fn combination_bound(aggs: &[&PatternAggregates], cfg: &SearchConfig) -> f64 {
    // Factor sums over keywords, at their extremes.
    let (mut len_min, mut len_max) = (0.0f64, 0.0f64);
    let (mut pr_min, mut pr_max) = (0.0f64, 0.0f64);
    let (mut sim_min, mut sim_max) = (0.0f64, 0.0f64);
    for a in aggs {
        len_min += a.min_len;
        len_max += a.max_len;
        pr_min += a.min_pr;
        pr_max += a.max_pr;
        sim_min += a.min_sim;
        sim_max += a.max_sim;
    }
    let s = cfg.scoring;
    let tree_bound = factor_bound(len_min, len_max, s.z1)
        * factor_bound(pr_min, pr_max, s.z2)
        * factor_bound(sim_min, sim_max, s.z3);

    // |trees(P)| ≤ min over i of nᵢ · Π_{j≠i} max_per_root_j.
    let mut count_bound = f64::INFINITY;
    for i in 0..aggs.len() {
        let mut b = aggs[i].num_paths as f64;
        for (j, a) in aggs.iter().enumerate() {
            if j != i {
                b *= a.max_per_root as f64;
            }
        }
        count_bound = count_bound.min(b);
    }

    match s.aggregation {
        Aggregation::Sum => count_bound * tree_bound,
        Aggregation::Avg | Aggregation::Max => tree_bound,
        Aggregation::Count => count_bound,
    }
}

/// How many common roots the fused intersection emits between two
/// score-bounded abandonment tests (amortizes the O(m) bound arithmetic;
/// skipping targets long scans, which see many checks regardless).
const SKIP_CHECK_EVERY: u32 = 16;

/// Upper bound on the **final** score of the combination being scanned:
/// the score accumulated so far plus an admissible bound on everything
/// the run cursors have not yet consumed. Per keyword the unscanned
/// suffix is bounded by the suffix-table entry of the run block the
/// cursor sits in
/// ([`patternkb_index::WordPathIndex::pattern_block_bounds`]), falling
/// back to the whole-list aggregates for short lists. Only valid when
/// this shard is the combination's sole score contributor (the caller
/// gates on a single shard context). `Avg` returns infinity — a subset
/// mean does not bound the full mean, so `Avg` never abandons.
#[allow(clippy::too_many_arguments)]
fn remaining_upper_bound<'b>(
    shard: &'b ShardContext<'_>,
    cfg: &SearchConfig,
    tl: &'b TypeLists<'_>,
    combo: &[usize],
    prim_buf: &[usize],
    cursors: &[patternkb_index::RunCursor<'_>],
    acc: &crate::score::ScoreAcc,
    suffix: &mut Vec<&'b PatternAggregates>,
) -> f64 {
    let agg = cfg.scoring.aggregation;
    if matches!(agg, Aggregation::Avg) {
        return f64::INFINITY;
    }
    let m = cursors.len();
    suffix.clear();
    for i in 0..m {
        let bounds = shard.words[i].pattern_block_bounds(prim_buf[i]);
        suffix.push(if bounds.is_empty() {
            // Short list: the whole-list aggregates over-bound the suffix.
            &tl.aggs[i][combo[i]]
        } else {
            &bounds[cursors[i].pos() / patternkb_index::BLOCK]
        });
    }
    let rest = combination_bound(suffix, cfg);
    match agg {
        Aggregation::Sum => acc.sum() + rest,
        Aggregation::Count => acc.count as f64 + rest,
        Aggregation::Max => acc.max.max(rest),
        Aggregation::Avg => f64::INFINITY,
    }
}

/// The per-pattern lower bound a shard can publish after completing a
/// combination locally: a valid lower bound on the pattern's **final**
/// score only for monotone aggregations.
fn partial_lower_bound(acc: &crate::score::ScoreAcc, agg: Aggregation) -> Option<f64> {
    match agg {
        Aggregation::Sum => Some(acc.sum()),
        Aggregation::Count => Some(acc.count as f64),
        Aggregation::Max => Some(acc.max),
        // A subset's mean does not bound the full mean from below.
        Aggregation::Avg => None,
    }
}

/// Bits meaning "no threshold yet" (fewer than k patterns seen, or a
/// k-th best of exactly 0.0 — which could never prune anyway since bounds
/// are non-negative). Zero keeps the monotone `fetch_max` publish valid.
const TAU_UNSET: u64 = 0;

/// The shared, monotone top-k threshold. Workers **read** it lock-free
/// from an atomic; **writes** (one per completed combination per shard)
/// funnel through a mutex that owns the per-pattern lower-bound table and
/// republish the k-th best. Scores are non-negative, so their bit patterns
/// order like the floats themselves.
pub(crate) struct SharedThreshold {
    k: usize,
    tau: AtomicU64,
    inner: Mutex<ThresholdInner>,
}

struct ThresholdInner {
    /// Global combination index → accumulated lower bound (sum of
    /// per-shard partials for `Sum`/`Count`, max for `Max`). Every shard
    /// enumerates the same global list, so the index identifies a pattern
    /// across shards without any key hashing. One entry per pattern keeps
    /// the k-th best sound. Unused in single-worker mode.
    entries: FxHashMap<u32, f64>,
    /// Single-worker fast path: with one shard each pattern offers
    /// exactly once, so a size-k min-heap of score bits (non-negative
    /// floats order like their bit patterns) replaces the map and the
    /// periodic k-th-best selection.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    /// Whether the heap fast path is active.
    single: bool,
    agg: Aggregation,
    scratch: Vec<f64>,
    /// Offers since construction; used to amortize the k-th-best
    /// recomputation on many-pattern queries (map mode only).
    updates: u64,
}

impl SharedThreshold {
    /// `single` = one shard worker: every pattern offers exactly once,
    /// enabling the heap fast path.
    fn new(k: usize, agg: Aggregation, single: bool) -> Self {
        SharedThreshold {
            k: k.max(1),
            tau: AtomicU64::new(TAU_UNSET),
            inner: Mutex::new(ThresholdInner {
                entries: FxHashMap::default(),
                heap: std::collections::BinaryHeap::new(),
                single,
                agg,
                scratch: Vec::new(),
                updates: 0,
            }),
        }
    }

    /// The current threshold; `None` until k distinct patterns have
    /// published lower bounds.
    #[inline]
    fn kth(&self) -> Option<f64> {
        match self.tau.load(Ordering::Relaxed) {
            TAU_UNSET => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Fold one shard's partial lower bound for the pattern at global
    /// combination index `combo` in and republish the k-th best entry.
    /// Values only grow, so the published threshold is monotone
    /// non-decreasing and always ≤ the true k-th best final score. The
    /// O(#patterns) k-th-best selection is amortized once the table
    /// outgrows its small regime — a stale (lower) threshold only prunes
    /// less, never wrongly.
    fn offer(&self, combo: u32, partial: f64) {
        debug_assert!(partial >= 0.0);
        let mut inner = self.inner.lock();
        if inner.single {
            // One offer per pattern: stream it through a size-k min-heap.
            let bits = partial.to_bits();
            if inner.heap.len() < self.k {
                inner.heap.push(std::cmp::Reverse(bits));
            } else if bits > inner.heap.peek().expect("k >= 1").0 {
                inner.heap.pop();
                inner.heap.push(std::cmp::Reverse(bits));
            } else {
                return;
            }
            if inner.heap.len() == self.k {
                let kth = inner.heap.peek().expect("k >= 1").0;
                self.tau.fetch_max(kth, Ordering::Relaxed);
            }
            return;
        }
        let agg = inner.agg;
        let entry = inner.entries.entry(combo).or_insert(0.0);
        match agg {
            Aggregation::Sum | Aggregation::Count => *entry += partial,
            Aggregation::Max => *entry = entry.max(partial),
            Aggregation::Avg => unreachable!("Avg never offers lower bounds"),
        }
        inner.updates += 1;
        let len = inner.entries.len();
        let recompute = len >= self.k && (len <= 64 || len == self.k || inner.updates % 8 == 0);
        if recompute {
            let k = self.k;
            let ThresholdInner {
                entries, scratch, ..
            } = &mut *inner;
            scratch.clear();
            scratch.extend(entries.values().copied());
            let idx = scratch.len() - k;
            scratch.select_nth_unstable_by(idx, |a, b| {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
            });
            let kth = scratch[idx];
            // Monotone publish (concurrent offers may race; max wins).
            self.tau.fetch_max(kth.to_bits(), Ordering::Relaxed);
        }
    }
}

/// The global combination lists of one root type, with every per-combo
/// lookup pre-resolved into arrays parallel to the pattern lists. On the
/// single-index-shard layout everything borrows straight from the word
/// indexes' cached [`patternkb_index::PatternTypeGroup`]s — per-query
/// setup is then O(root types), not O(patterns).
struct TypeLists<'a> {
    /// Per keyword: the type's pattern ids, ascending.
    lists: Vec<std::borrow::Cow<'a, [PatternId]>>,
    /// Per keyword: aggregates aligned with `lists` (global, cross-shard).
    aggs: Vec<std::borrow::Cow<'a, [PatternAggregates]>>,
    /// Single-index-shard fast path: per keyword, aligned with `lists`,
    /// the pattern's pattern-first position — cached on the word index,
    /// so the (only) worker never binary-searches patterns. `None` under
    /// multi-shard layouts (positions are shard-specific there; each
    /// worker resolves its own).
    prims: Option<Vec<&'a [u32]>>,
}

/// One shard's pruned pass over the **global** combination list.
struct ShardOutcome {
    dict: TreeDict,
    /// Flat arena of the keys this shard pruned, `m` ids per entry (they
    /// are provably outside the global top-k, so the merge drops them
    /// everywhere). Only recorded when several shards participate — with
    /// one shard a pruned combination was never computed, so there is
    /// nothing to drop and no reason to spend `O(pruned)` memory on the
    /// §4.1 adversarial case.
    pruned_keys: Vec<u32>,
    subtrees: usize,
    combos_pruned: usize,
    candidate_roots: usize,
}

fn pruned_shard(
    shard: &ShardContext<'_>,
    cfg: &SearchConfig,
    type_lists: &[TypeLists],
    threshold: &SharedThreshold,
    record_pruned: bool,
    skipping: bool,
) -> ShardOutcome {
    let m = shard.m();
    let mut dict = TreeDict::new(m);
    let mut pruned_keys: Vec<u32> = Vec::new();
    let mut subtrees = 0usize;
    let mut combos_pruned = 0usize;
    let mut candidate_roots_seen: Vec<u32> = Vec::new();

    let mut combo = vec![0usize; m];
    let mut key: Vec<u32> = vec![0; m];
    let mut prim_buf: Vec<usize> = vec![0; m];
    let mut chosen_aggs: Vec<&PatternAggregates> = Vec::with_capacity(m);
    let mut cursors: Vec<patternkb_index::RunCursor<'_>> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    // Reused by every skip check (no allocation in the scan loop).
    let mut suffix_scratch: Vec<&PatternAggregates> = Vec::with_capacity(m);
    // Position of this combination in the global enumeration — the dense
    // pattern id shared with every other shard and the threshold table.
    let mut combo_idx: u32 = 0;

    for tl in type_lists {
        let lists = &tl.lists;
        combo.iter_mut().for_each(|x| *x = 0);
        // Pattern-first positions aligned with the type's global pattern
        // lists (one binary search per (keyword, pattern) instead of one
        // per combination/root) — or, on the single-shard layout, reused
        // straight from the driver. `None`: the pattern has no postings
        // in this shard, so every combination using it is locally empty.
        let local_prims: Vec<Vec<Option<usize>>> = match &tl.prims {
            Some(_) => Vec::new(),
            None => lists
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    l.iter()
                        .map(|&p| shard.words[i].pattern_primary(p))
                        .collect()
                })
                .collect(),
        };

        loop {
            // The pruning test: O(m), no index access, no hashing —
            // global bound vs the shared threshold.
            let pruned = match threshold.kth() {
                Some(kth) => {
                    chosen_aggs.clear();
                    for i in 0..m {
                        chosen_aggs.push(&tl.aggs[i][combo[i]]);
                    }
                    combination_bound(&chosen_aggs, cfg) * SLACK < kth
                }
                None => false,
            };
            let mut joinable = !pruned;
            if joinable {
                match &tl.prims {
                    Some(prims) => {
                        for i in 0..m {
                            prim_buf[i] = prims[i][combo[i]] as usize;
                        }
                    }
                    None => {
                        for i in 0..m {
                            match local_prims[i][combo[i]] {
                                Some(prim) => prim_buf[i] = prim,
                                None => {
                                    joinable = false;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            if pruned {
                combos_pruned += 1;
                if record_pruned {
                    for i in 0..m {
                        pruned_keys.push(lists[i][combo[i]].0);
                    }
                }
            } else if joinable {
                cursors.clear();
                for i in 0..m {
                    cursors.push(shard.words[i].pattern_run_cursor(prim_buf[i]));
                }
                for i in 0..m {
                    key[i] = lists[i][combo[i]].0;
                }
                // Intersection + join fused: leapfrog the run cursors by
                // root; each common root hands over its posting slices.
                // With skipping on, every `SKIP_CHECK_EVERY` common roots
                // the closure re-tests whether the score accumulated so
                // far plus a suffix bound over the cursors' unscanned run
                // blocks can still reach the shared threshold, and
                // abandons the rest of the scan when it cannot.
                let roots_before = candidate_roots_seen.len();
                let mut group_id = None;
                let mut abandoned = false;
                let mut emits = 0u32;
                let mut skipped_blocks = 0u64;
                let seeks = patternkb_index::intersect_runs_while(
                    &mut cursors,
                    &mut slices,
                    |r, tuple, curs| {
                        let root = NodeId(r);
                        let gid = *group_id.get_or_insert_with(|| dict.intern(&key));
                        let group = dict.group_by_id_mut(gid);
                        candidate_roots_seen.push(r);
                        subtrees += for_each_path_tuple(tuple, &mut scratch, |tuple| {
                            if cfg.strict_trees {
                                node_scratch.clear();
                                for (i, p) in tuple.iter().enumerate() {
                                    node_scratch.push(shard.words[i].nodes_of(p));
                                }
                                if !node_slices_form_tree(root, &node_scratch) {
                                    return;
                                }
                            }
                            let score = cfg.scoring.tree_score_of(tuple);
                            group.acc.push(score);
                            if group.trees.len() < cfg.max_rows {
                                group.trees.push(materialize_tree(
                                    &shard.words,
                                    root,
                                    tuple,
                                    score,
                                ));
                            }
                        });
                        emits += 1;
                        if skipping && emits % SKIP_CHECK_EVERY == 0 {
                            if let Some(kth) = threshold.kth() {
                                let upper = remaining_upper_bound(
                                    shard,
                                    cfg,
                                    tl,
                                    &combo,
                                    &prim_buf,
                                    curs,
                                    &group.acc,
                                    &mut suffix_scratch,
                                );
                                if upper * SLACK < kth {
                                    abandoned = true;
                                    skipped_blocks = curs
                                        .iter()
                                        .map(|c| (c.remaining() / patternkb_index::BLOCK) as u64)
                                        .sum();
                                    return std::ops::ControlFlow::Break(());
                                }
                            }
                        }
                        std::ops::ControlFlow::Continue(())
                    },
                );
                shard.counters.add_seeks(seeks);
                if abandoned {
                    // The abandoned combination is provably outside the
                    // top-k (its upper bound lost to the threshold), but
                    // its partial score *understates* its true score, so
                    // it must neither surface nor tighten the threshold:
                    // drop everything it accumulated.
                    dict.kill(&key);
                    candidate_roots_seen.truncate(roots_before);
                    shard
                        .counters
                        .blocks_skipped
                        .fetch_add(skipped_blocks, Ordering::Relaxed);
                } else if let Some(gid) = group_id {
                    let group = dict.group(gid);
                    if group.is_dead() {
                        // Strict mode rejected every tuple: drop the roots
                        // we optimistically recorded.
                        candidate_roots_seen.truncate(roots_before);
                    } else if let Some(lower) =
                        partial_lower_bound(&group.acc, cfg.scoring.aggregation)
                    {
                        threshold.offer(combo_idx, lower);
                    }
                }
            }
            combo_idx += 1;

            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < lists[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    candidate_roots_seen.sort_unstable();
    candidate_roots_seen.dedup();
    ShardOutcome {
        dict,
        pruned_keys,
        subtrees,
        combos_pruned,
        candidate_roots: candidate_roots_seen.len(),
    }
}

/// `PATTERNENUM` with admissible upper-bound pruning. Returns exactly the
/// same top-k as [`crate::pattern_enum::pattern_enum`], with
/// `stats.combos_pruned` counting the combinations skipped before any
/// intersection (the most-pruning shard worker's count, so the figure
/// stays bounded by `combos_tried` and comparable across shard layouts).
pub fn pattern_enum_pruned(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let m = ctx.m();

    // Global per-(keyword, pattern) aggregates, merged across shards, and
    // the global per-type combination lists they induce. Every shard
    // enumerates the same lists, so bounds and prune decisions are
    // mutually consistent.
    // Per keyword, per root type: pattern lists with aggregates (and, in
    // the single-index-shard layout, pattern positions + root ranges)
    // resolved into arrays parallel to the lists. The single-shard path
    // is hash-free: patterns are tagged with their root type, sorted, and
    // grouped contiguously, with the cached per-pattern stats read
    // straight off the word index.
    let mut combos_tried = 0usize;
    let type_lists: Vec<TypeLists<'_>> = if ctx.num_index_shards() == 1 {
        // Everything borrows from the word indexes' cached type groups:
        // walk keyword 0's groups (ascending by type) and binary-search
        // the other keywords' group lists — O(types · m · log types) per
        // query, with no per-pattern work at all.
        use std::borrow::Cow;
        let groups_per_kw: Vec<&[patternkb_index::PatternTypeGroup]> = (0..m)
            .map(|i| {
                ctx.shard_word(0, i)
                    .expect("single index shard holds every query keyword")
                    .pattern_type_groups(ctx.idx.patterns())
            })
            .collect();
        let mut out = Vec::new();
        'types: for g0 in groups_per_kw[0] {
            let c = g0.root_type;
            let mut lists: Vec<Cow<'_, [PatternId]>> = Vec::with_capacity(m);
            let mut aggs: Vec<Cow<'_, [PatternAggregates]>> = Vec::with_capacity(m);
            let mut prims: Vec<&[u32]> = Vec::with_capacity(m);
            lists.push(Cow::Borrowed(&g0.patterns[..]));
            aggs.push(Cow::Borrowed(&g0.stats[..]));
            prims.push(&g0.prims[..]);
            let mut prod = g0.patterns.len();
            for groups in &groups_per_kw[1..] {
                match groups.binary_search_by_key(&c, |g| g.root_type) {
                    Ok(at) => {
                        let g = &groups[at];
                        prod = prod.saturating_mul(g.patterns.len());
                        lists.push(Cow::Borrowed(&g.patterns[..]));
                        aggs.push(Cow::Borrowed(&g.stats[..]));
                        prims.push(&g.prims[..]);
                    }
                    Err(_) => continue 'types,
                }
            }
            combos_tried = combos_tried.saturating_add(prod);
            out.push(TypeLists {
                lists,
                aggs,
                prims: Some(prims),
            });
        }
        out
    } else {
        type Grouped = FxHashMap<TypeId, (Vec<PatternId>, Vec<PatternAggregates>)>;
        let mut grouped: Vec<Grouped> = Vec::with_capacity(m);
        for i in 0..m {
            let mut map: FxHashMap<PatternId, PatternAggregates> = FxHashMap::default();
            for s in 0..ctx.num_index_shards() {
                let Some(w) = ctx.shard_word(s, i) else {
                    continue;
                };
                for (j, p) in w.patterns().enumerate() {
                    let local: PatternAggregates = w.pattern_stats()[j];
                    map.entry(p)
                        .and_modify(|agg| agg.merge(&local))
                        .or_insert(local);
                }
            }
            let mut ids: Vec<PatternId> = map.keys().copied().collect();
            ids.sort_unstable_by_key(|p| p.0);
            let mut by_type = Grouped::default();
            for p in ids {
                let entry = by_type
                    .entry(ctx.idx.patterns().root_type(p))
                    .or_insert_with(|| (Vec::new(), Vec::new()));
                entry.0.push(p);
                entry.1.push(map[&p]);
            }
            grouped.push(by_type);
        }
        let types = crate::pattern_enum::common_types(&grouped);
        types
            .iter()
            .map(|&c| {
                let mut lists: Vec<std::borrow::Cow<'_, [PatternId]>> = Vec::with_capacity(m);
                let mut resolved: Vec<std::borrow::Cow<'_, [PatternAggregates]>> =
                    Vec::with_capacity(m);
                for map in grouped.iter_mut() {
                    let (l, a) = map.remove(&c).expect("common type present everywhere");
                    lists.push(std::borrow::Cow::Owned(l));
                    resolved.push(std::borrow::Cow::Owned(a));
                }
                let mut prod = 1usize;
                for l in &lists {
                    prod = prod.saturating_mul(l.len());
                }
                combos_tried = combos_tried.saturating_add(prod);
                TypeLists {
                    lists,
                    aggs: resolved,
                    prims: None,
                }
            })
            .collect()
    };

    let threshold = SharedThreshold::new(cfg.k, cfg.scoring.aggregation, ctx.shards.len() <= 1);
    let record_pruned = ctx.shards.len() > 1;
    // Materialization is deferred: the enumeration pass only accumulates
    // exact scores (`max_rows: 0`), and rows are re-joined afterwards for
    // the k patterns that actually survive — most discovered patterns
    // never surface, so building their rows (one allocation per path per
    // subtree) was the single largest avoidable cost of this algorithm.
    let lean_cfg = SearchConfig {
        max_rows: 0,
        ..cfg.clone()
    };
    // Score-bounded block skipping is sound only when one shard context
    // holds every keyword: that worker is then the combination's sole
    // score contributor, so its local suffix bounds and partial scores
    // are the global ones. Multi-shard runs fall back to full scans.
    let skipping = cfg.block_skipping && ctx.shards.len() == 1;
    let locals = run_sharded(&ctx.shards, |shard| {
        (
            pruned_shard(
                shard,
                &lean_cfg,
                &type_lists,
                &threshold,
                record_pruned,
                skipping,
            ),
            shard.shard,
        )
    });

    let mut per_shard = Vec::with_capacity(locals.len());
    let mut dicts = Vec::with_capacity(locals.len());
    let mut all_pruned: Vec<u32> = Vec::new();
    let mut subtrees = 0usize;
    let mut combos_pruned = 0usize;
    let mut candidate_roots = 0usize;
    for (outcome, shard) in locals {
        per_shard.push(ShardStats {
            shard,
            candidate_roots: outcome.candidate_roots,
            subtrees: outcome.subtrees,
            patterns: outcome.dict.len(),
        });
        subtrees += outcome.subtrees;
        // Every worker walks the same global list, so report the
        // most-pruning worker: bounded by `combos_tried` and exactly the
        // skipped count when there is one shard.
        combos_pruned = combos_pruned.max(outcome.combos_pruned);
        candidate_roots += outcome.candidate_roots;
        all_pruned.extend(outcome.pruned_keys);
        dicts.push(outcome.dict);
    }
    let mut dict = merge_shard_dicts(dicts, m, cfg.max_rows);
    // A combination pruned in any shard is provably outside the top-k;
    // its partial groups from other shards must not surface with a
    // partial (understated) score.
    for key in all_pruned.chunks_exact(m) {
        dict.kill(key);
    }

    let patterns_found = dict.len();
    let keys_interned = dict.keys_interned() as u64;
    let key_arena_bytes = dict.arena_bytes() as u64;
    // Two-stage selection so losers never get decoded: (1) rank all live
    // patterns by exact score alone and keep everything at or above the
    // k-th best (boundary ties included); (2) decode only those, apply
    // the full `(score desc, encoded key asc)` order, truncate to k, and
    // materialize rows for the survivors.
    let mut entries: Vec<(f64, crate::intern::PatternKeyId)> = dict
        .iter()
        .map(|(id, _, group)| (group.acc.finish(cfg.scoring.aggregation), id))
        .collect();
    if entries.len() > cfg.k {
        entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let kth = entries[cfg.k - 1].0;
        entries.retain(|&(score, _)| score >= kth);
    }
    // (pattern, id-key, cached sort key): `RankedPattern::key()` allocates
    // per call, so cache it once per candidate instead of per comparison.
    let mut ranked: Vec<(RankedPattern, Vec<u32>, Vec<u32>)> = entries
        .into_iter()
        .map(|(score, id)| {
            let key = dict.key(id);
            let group = dict.group(id);
            let p = RankedPattern {
                pattern: ctx.decode_key(key),
                score,
                num_trees: group.acc.count as usize,
                trees: Vec::new(),
            };
            let sort_key = p.key();
            (p, key.to_vec(), sort_key)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.0.score
            .partial_cmp(&a.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.2.cmp(&b.2))
    });
    ranked.truncate(cfg.k);
    let patterns: Vec<RankedPattern> = ranked
        .into_iter()
        .map(|(mut p, key, _)| {
            p.trees = materialize_pattern_rows(ctx, cfg, &key);
            p
        })
        .collect();

    let mut hot = ctx.hot_stats();
    hot.keys_interned = keys_interned;
    hot.key_arena_bytes = key_arena_bytes;
    SearchResult {
        patterns,
        stats: QueryStats {
            candidate_roots,
            subtrees,
            patterns: patterns_found,
            combos_tried,
            combos_pruned,
            per_shard,
            hot,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

/// Re-join one winning pattern's rows: walk the shards in ascending
/// root-range order, leapfrog its per-keyword posting runs, and
/// materialize the first `cfg.max_rows` accepted subtrees — exactly the
/// rows an inline materialization would have kept.
fn materialize_pattern_rows(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    key: &[u32],
) -> Vec<crate::subtree::ValidSubtree> {
    let m = ctx.m();
    let mut trees = Vec::new();
    let mut cursors: Vec<patternkb_index::RunCursor<'_>> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    'shards: for shard in &ctx.shards {
        if trees.len() >= cfg.max_rows {
            break;
        }
        cursors.clear();
        for i in 0..m {
            match shard.words[i].pattern_primary(PatternId(key[i])) {
                Some(prim) => cursors.push(shard.words[i].pattern_run_cursor(prim)),
                None => continue 'shards,
            }
        }
        let seeks = patternkb_index::intersect_runs(&mut cursors, &mut slices, |r, tuple| {
            if trees.len() >= cfg.max_rows {
                return;
            }
            let root = NodeId(r);
            for_each_path_tuple(tuple, &mut scratch, |tuple| {
                if trees.len() >= cfg.max_rows {
                    return;
                }
                if cfg.strict_trees {
                    node_scratch.clear();
                    for (i, p) in tuple.iter().enumerate() {
                        node_scratch.push(shard.words[i].nodes_of(p));
                    }
                    if !node_slices_form_tree(root, &node_scratch) {
                        return;
                    }
                }
                let score = cfg.scoring.tree_score_of(tuple);
                trees.push(materialize_tree(&shard.words, root, tuple, score));
            });
        });
        shard.counters.add_seeks(seeks);
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern_enum::pattern_enum;
    use crate::score::ScoringConfig;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig, PathIndexes};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (patternkb_graph::KnowledgeGraph, TextIndex, PathIndexes) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    fn assert_same(a: &SearchResult, b: &SearchResult, label: &str) {
        assert_eq!(a.patterns.len(), b.patterns.len(), "{label}: k size");
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key(), "{label}: pattern identity");
            assert!((x.score - y.score).abs() < 1e-9, "{label}: score");
            assert_eq!(x.num_trees, y.num_trees, "{label}: tree count");
        }
    }

    #[test]
    fn pruned_matches_exact_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "database company",
            "revenue",
            "bill gates",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            for k in [1, 2, 5, 100] {
                let cfg = SearchConfig::top(k);
                let exact = pattern_enum(&ctx, &cfg);
                let pruned = pattern_enum_pruned(&ctx, &cfg);
                assert_same(&exact, &pruned, &format!("{query} k={k}"));
            }
        }
    }

    #[test]
    fn pruned_matches_exact_when_sharded() {
        let (g, t, _) = setup();
        for shards in [2usize, 3, 7] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            for query in ["database software company revenue", "database company"] {
                let q = Query::parse(&t, query).unwrap();
                let ctx = QueryContext::new(&g, &idx, &q).unwrap();
                for k in [1, 3, 100] {
                    let cfg = SearchConfig::top(k);
                    let exact = pattern_enum(&ctx, &cfg);
                    let pruned = pattern_enum_pruned(&ctx, &cfg);
                    assert_same(&exact, &pruned, &format!("{query} k={k} shards={shards}"));
                }
            }
        }
    }

    #[test]
    fn pruning_fires_for_small_k() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        // k = 1 on a query with 9 patterns: some combination must be
        // prunable once the best pattern is found.
        let r = pattern_enum_pruned(&ctx, &SearchConfig::top(1));
        assert!(
            r.stats.combos_pruned > 0,
            "expected pruned combos, stats = {:?}",
            r.stats
        );
        assert_eq!(r.patterns.len(), 1);
        assert!((r.patterns[0].score - 3.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_under_all_aggregations() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        for agg in [
            Aggregation::Sum,
            Aggregation::Avg,
            Aggregation::Max,
            Aggregation::Count,
        ] {
            let cfg = SearchConfig {
                scoring: ScoringConfig {
                    aggregation: agg,
                    ..ScoringConfig::default()
                },
                ..SearchConfig::top(3)
            };
            let exact = pattern_enum(&ctx, &cfg);
            let pruned = pattern_enum_pruned(&ctx, &cfg);
            assert_same(&exact, &pruned, &format!("{agg:?}"));
        }
    }

    #[test]
    fn agrees_with_positive_size_exponent() {
        // z1 = +1 flips which length extreme the bound must take.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database company").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig {
            scoring: ScoringConfig {
                z1: 1.0,
                ..ScoringConfig::default()
            },
            ..SearchConfig::top(2)
        };
        assert_same(
            &pattern_enum(&ctx, &cfg),
            &pattern_enum_pruned(&ctx, &cfg),
            "z1=+1",
        );
    }

    #[test]
    fn aggregates_are_correct() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let w = ctx.shards[0].words[0];
        for p in w.patterns() {
            let prim = w.pattern_primary(p).expect("pattern present");
            let agg: PatternAggregates = w.pattern_stats()[prim];
            let paths = w.paths_of_pattern(p);
            assert_eq!(agg.num_paths as usize, paths.len());
            let min_len = paths.iter().map(|x| x.score_len()).min().unwrap() as f64;
            let max_sim = paths.iter().map(|x| x.sim).fold(0.0f64, f64::max);
            assert_eq!(agg.min_len, min_len);
            assert_eq!(agg.max_sim, max_sim);
            assert!(agg.max_per_root as usize <= paths.len());
        }
    }

    #[test]
    fn shared_threshold_is_sound_per_pattern() {
        // The same pattern offered from several "shards" counts once: the
        // threshold is the k-th best per-pattern total, not the k-th best
        // raw offer.
        let t = SharedThreshold::new(2, Aggregation::Sum, false);
        assert_eq!(t.kth(), None);
        t.offer(1, 10.0);
        assert_eq!(t.kth(), None, "one pattern < k");
        t.offer(1, 9.0); // same pattern (same global combo index), second shard
        assert_eq!(t.kth(), None, "still one distinct pattern");
        t.offer(2, 5.0);
        assert_eq!(t.kth(), Some(5.0), "2nd best of {{19, 5}}");
        t.offer(3, 7.0);
        assert_eq!(t.kth(), Some(7.0), "2nd best of {{19, 5, 7}}");
    }

    #[test]
    fn hot_path_counters_are_populated() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = pattern_enum_pruned(&ctx, &SearchConfig::top(3));
        assert!(
            r.stats.hot.intersect_seeks > 0,
            "gallop intersections must report their seeks: {:?}",
            r.stats.hot
        );
        assert!(
            r.stats.hot.keys_interned as usize >= r.stats.patterns,
            "every discovered pattern was interned: {:?}",
            r.stats.hot
        );
        assert!(r.stats.hot.key_arena_bytes > 0);
        // The raw in-memory index never decodes posting blocks.
        assert_eq!(r.stats.hot.blocks_decoded, 0);
    }

    #[test]
    fn skipping_agrees_with_full_scan_on_figure1() {
        let (g, t, idx) = setup();
        for query in ["database software company revenue", "database company"] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            for agg in [
                Aggregation::Sum,
                Aggregation::Avg,
                Aggregation::Max,
                Aggregation::Count,
            ] {
                for k in [1, 2, 100] {
                    let on = SearchConfig {
                        scoring: ScoringConfig {
                            aggregation: agg,
                            ..ScoringConfig::default()
                        },
                        ..SearchConfig::top(k)
                    };
                    let off = SearchConfig {
                        block_skipping: false,
                        ..on.clone()
                    };
                    assert_same(
                        &pattern_enum_pruned(&ctx, &on),
                        &pattern_enum_pruned(&ctx, &off),
                        &format!("{query} {agg:?} k={k}"),
                    );
                }
            }
        }
    }

    /// A workload engineered so the mid-scan abandonment check *must*
    /// fire, whatever order the index assigns pattern ids.
    ///
    /// 700 roots, two child types X and Y, both matching both keywords, so
    /// each keyword has exactly two patterns and both posting lists span
    /// several run blocks (the suffix bound tables exist). The scores are
    /// shaped with Jaccard sims (sim = 1/#tokens):
    ///
    /// * root 1's X children match each keyword alone (sim 1.0), doubling
    ///   the whole-list sim bound of X — mixed combinations survive the
    ///   up-front prune on the strength of a sim that exists only in run
    ///   block 0;
    /// * Y children switch from 2-token text (sim 0.5) to 8-token text
    ///   (sim 0.125) at root 160 — every suffix entry from block 2 on
    ///   bounds a mixed combination far below the best diagonal's total.
    ///
    /// Whichever diagonal combination runs first, once a diagonal
    /// completes and sets the threshold, the next mixed combination's
    /// block-2 suffix bound loses to it mid-scan and the scan abandons.
    #[test]
    fn skipping_agrees_and_fires_on_long_lists() {
        use patternkb_graph::GraphBuilder;
        const N: usize = 700;
        const SIM_DROP: usize = 160;
        let mut b = GraphBuilder::with_capacity(4 * N, 3 * N);
        let root_t = b.add_type("Root");
        let x_t = b.add_type("Xnode");
        let y_t = b.add_type("Ynode");
        let ax = b.add_attr("ax");
        let ay = b.add_attr("ay");
        for i in 0..N {
            let r = b.add_node(root_t, &format!("root{i}"));
            if i == 1 {
                // Two single-token X children: sim 1.0 per keyword.
                let xa = b.add_node(x_t, "alpha");
                let xb = b.add_node(x_t, "beta");
                b.add_edge(r, ax, xa);
                b.add_edge(r, ax, xb);
            } else {
                let x = b.add_node(x_t, "alpha beta");
                b.add_edge(r, ax, x);
            }
            if i >= 1 {
                // Y skips root 0 (n_Y = 699, still > one run block).
                let text = if i < SIM_DROP {
                    "alpha beta".to_string()
                } else {
                    format!("alpha beta p{i}a p{i}b p{i}c p{i}d p{i}e p{i}f")
                };
                let y = b.add_node(y_t, &text);
                b.add_edge(r, ay, y);
            }
        }
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "alpha beta").unwrap();
        let on = SearchConfig::top(1);
        let off = SearchConfig {
            block_skipping: false,
            ..SearchConfig::top(1)
        };
        // Hot counters accumulate on a context, so each run gets its own.
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r_on = pattern_enum_pruned(&ctx, &on);
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r_off = pattern_enum_pruned(&ctx, &off);
        assert_same(&r_on, &r_off, "crafted long-list workload");
        assert_same(&pattern_enum(&ctx, &off), &r_on, "vs unpruned");
        assert_eq!(
            r_off.stats.hot.blocks_skipped, 0,
            "skipping off must not skip"
        );
        assert!(
            r_on.stats.hot.blocks_skipped > 0,
            "expected the suffix score bound to abandon a mixed-pattern \
             scan, stats = {:?}",
            r_on.stats
        );
    }

    #[test]
    fn single_worker_heap_threshold_tracks_kth_best() {
        let t = SharedThreshold::new(2, Aggregation::Sum, true);
        assert_eq!(t.kth(), None);
        t.offer(0, 10.0);
        assert_eq!(t.kth(), None, "one offer < k");
        t.offer(1, 5.0);
        assert_eq!(t.kth(), Some(5.0));
        t.offer(2, 7.0);
        assert_eq!(t.kth(), Some(7.0), "2nd best of {{10, 5, 7}}");
        t.offer(3, 1.0);
        assert_eq!(t.kth(), Some(7.0), "low offers do not lower tau");
    }

    mod proptests {
        use super::*;
        use patternkb_datagen::wiki::{wiki, WikiConfig};
        use patternkb_datagen::QueryGenerator;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Random Zipf graphs × random queries × every aggregation:
            /// the pruned enumerator returns a **bit-identical** top-k
            /// with block skipping on, with it off, and against the
            /// unpruned `PATTERNENUM` reference.
            #[test]
            fn skipping_preserves_topk_bits(
                seed in 0u64..1000,
                query_seed in 0u64..1000,
                m in 1usize..4,
                k in prop_oneof![Just(1usize), Just(5), Just(50)],
                agg in prop_oneof![
                    Just(Aggregation::Sum),
                    Just(Aggregation::Avg),
                    Just(Aggregation::Max),
                    Just(Aggregation::Count),
                ],
            ) {
                let g = wiki(&WikiConfig {
                    entities: 120,
                    types: 6,
                    attrs_per_type: 3,
                    attr_pool: 6,
                    vocab: 40,
                    avg_degree: 3.0,
                    value_pool: 15,
                    seed,
                    ..WikiConfig::default()
                });
                let t = TextIndex::build(&g, SynonymTable::new());
                let mut qg = QueryGenerator::new(&g, &t, 2, query_seed);
                let Some(spec) = qg.anchored(m) else { return Ok(()) };
                let q = Query::from_ids(spec.keywords);
                let idx = build_indexes(
                    &g,
                    &t,
                    &BuildConfig { d: 2, threads: 1, shards: 1 },
                );
                let Some(ctx) = QueryContext::new(&g, &idx, &q) else {
                    return Ok(());
                };
                let on = SearchConfig {
                    scoring: ScoringConfig {
                        aggregation: agg,
                        ..ScoringConfig::default()
                    },
                    ..SearchConfig::top(k)
                };
                let off = SearchConfig {
                    block_skipping: false,
                    ..on.clone()
                };
                let exact = pattern_enum(&ctx, &on);
                let r_on = pattern_enum_pruned(&ctx, &on);
                let r_off = pattern_enum_pruned(&ctx, &off);
                prop_assert_eq!(r_on.patterns.len(), r_off.patterns.len());
                prop_assert_eq!(r_on.patterns.len(), exact.patterns.len());
                for ((x, y), z) in
                    r_on.patterns.iter().zip(&r_off.patterns).zip(&exact.patterns)
                {
                    prop_assert_eq!(x.key(), y.key());
                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                    prop_assert_eq!(x.num_trees, y.num_trees);
                    prop_assert_eq!(x.key(), z.key());
                    prop_assert_eq!(x.score.to_bits(), z.score.to_bits());
                    prop_assert_eq!(x.num_trees, z.num_trees);
                }
            }
        }
    }
}
