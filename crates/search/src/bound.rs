//! Admissible score upper bounds for pruning `PATTERNENUM`.
//!
//! Algorithm 2's weakness is the `Θ(p^m)` pattern combinations it
//! intersects (§4.1); most are empty or low-scoring. This module extends it
//! with a classic top-k device the paper leaves on the table: before
//! intersecting a combination `P = (P₁ … P_m)`, compute a cheap **upper
//! bound** on `score(P, q)` from per-`(keyword, path-pattern)` aggregates,
//! and skip the combination outright when the bound cannot beat the current
//! k-th best score.
//!
//! The bound is *admissible* for the whole scoring class of §2.2.3:
//!
//! * every subtree score is `len_sum^z1 · pr_sum^z2 · sim_sum^z3` with each
//!   factor sum decomposing over keywords, so replacing each per-keyword
//!   term with its per-`(word, pattern)` extreme (min for negative
//!   exponents, max for positive ones) bounds any single subtree's score;
//! * `|trees(P)| = Σ_r Π_i |Paths(wᵢ, Pᵢ, r)|` is bounded by
//!   `min_i(nᵢ · Π_{j≠i} max_per_root_j)` where `nᵢ` is pattern `Pᵢ`'s total
//!   path count and `max_per_root_j` the largest per-root group;
//! * `Sum ≤ count·max`, `Avg ≤ max`, `Max ≤ max`, `Count ≤ count`.
//!
//! A `1 + 1e-9` slack factor absorbs floating-point non-associativity, so
//! pruning never changes the reported top-k (asserted by agreement tests
//! and the workload test below). The win is largest exactly where
//! `PATTERNENUM` hurts: many-pattern queries where most combinations are
//! empty yet each costs an intersection.
//!
//! ## Sharded pruning
//!
//! Under sharding every worker enumerates the **global** combination list
//! with bounds computed from **global** aggregates (merged across shards),
//! and all workers share one atomic top-k threshold: each completed
//! combination's per-shard partial score accumulates into a per-pattern
//! lower bound, and the k-th best of those lower bounds — monotonically
//! tightening as shards make progress — is published to an atomic every
//! worker reads lock-free. The scheme is sound because
//!
//! * each pattern contributes **one** entry (its accumulated partials), so
//!   the k-th best of the entries never exceeds the true k-th best final
//!   score, and
//! * a partial score only lower-bounds the total for monotone aggregations
//!   (`Sum`, `Count`, `Max`); under `Avg` no lower bounds are offered and
//!   pruning simply stays off.
//!
//! A combination pruned by *any* worker is therefore provably outside the
//! global top-k, so its partial groups can be dropped at merge time while
//! every top-k pattern — never prunable anywhere — merges complete and
//! exact.

use crate::common::{
    for_each_path_tuple, intersect_sorted, materialize_tree, merge_shard_dicts, run_sharded,
    QueryContext, ShardContext, TreeDict,
};
use crate::result::{QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::score::Aggregation;
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use parking_lot::Mutex;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting, WordPathIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Multiplicative slack absorbing float rounding between the bound
/// arithmetic and the exact score arithmetic.
const SLACK: f64 = 1.0 + 1e-9;

/// Per-`(keyword, path-pattern)` aggregates backing the bound.
#[derive(Clone, Copy, Debug)]
pub struct PatternAggregates {
    /// Total paths with this pattern (over all roots).
    pub num_paths: u32,
    /// Largest number of paths under a single root.
    pub max_per_root: u32,
    /// Extremes of the per-path scoring terms.
    pub min_len: f64,
    /// Maximum path length.
    pub max_len: f64,
    /// Minimum cached PageRank.
    pub min_pr: f64,
    /// Maximum cached PageRank.
    pub max_pr: f64,
    /// Minimum cached similarity.
    pub min_sim: f64,
    /// Maximum cached similarity.
    pub max_sim: f64,
}

impl PatternAggregates {
    /// Scan one pattern's postings (sorted by root) once.
    pub(crate) fn scan(widx: &WordPathIndex, p: PatternId) -> Self {
        let paths = widx.paths_of_pattern(p);
        debug_assert!(!paths.is_empty());
        let mut agg = PatternAggregates {
            num_paths: paths.len() as u32,
            max_per_root: 0,
            min_len: f64::INFINITY,
            max_len: 0.0,
            min_pr: f64::INFINITY,
            max_pr: 0.0,
            min_sim: f64::INFINITY,
            max_sim: 0.0,
        };
        let mut run = 0u32;
        let mut prev_root = u32::MAX;
        for post in paths {
            let len = post.score_len() as f64;
            agg.min_len = agg.min_len.min(len);
            agg.max_len = agg.max_len.max(len);
            agg.min_pr = agg.min_pr.min(post.pagerank);
            agg.max_pr = agg.max_pr.max(post.pagerank);
            agg.min_sim = agg.min_sim.min(post.sim);
            agg.max_sim = agg.max_sim.max(post.sim);
            if post.root.0 == prev_root {
                run += 1;
            } else {
                prev_root = post.root.0;
                run = 1;
            }
            agg.max_per_root = agg.max_per_root.max(run);
        }
        agg
    }

    /// Combine aggregates of the same `(keyword, pattern)` from two shards.
    /// Roots are disjoint across shards, so `max_per_root` combines by
    /// `max` and everything else by sum/min/max.
    pub(crate) fn merge(&mut self, other: &PatternAggregates) {
        self.num_paths += other.num_paths;
        self.max_per_root = self.max_per_root.max(other.max_per_root);
        self.min_len = self.min_len.min(other.min_len);
        self.max_len = self.max_len.max(other.max_len);
        self.min_pr = self.min_pr.min(other.min_pr);
        self.max_pr = self.max_pr.max(other.max_pr);
        self.min_sim = self.min_sim.min(other.min_sim);
        self.max_sim = self.max_sim.max(other.max_sim);
    }
}

/// `x^z` picking the interval endpoint that maximizes the factor.
#[inline]
fn factor_bound(min: f64, max: f64, z: f64) -> f64 {
    let x = if z >= 0.0 { max } else { min };
    crate::score::powz(x, z)
}

/// Upper-bound `score(P, q)` for the combination described by `aggs`
/// (one entry per keyword) under `cfg.scoring`.
fn combination_bound(aggs: &[&PatternAggregates], cfg: &SearchConfig) -> f64 {
    // Factor sums over keywords, at their extremes.
    let (mut len_min, mut len_max) = (0.0f64, 0.0f64);
    let (mut pr_min, mut pr_max) = (0.0f64, 0.0f64);
    let (mut sim_min, mut sim_max) = (0.0f64, 0.0f64);
    for a in aggs {
        len_min += a.min_len;
        len_max += a.max_len;
        pr_min += a.min_pr;
        pr_max += a.max_pr;
        sim_min += a.min_sim;
        sim_max += a.max_sim;
    }
    let s = cfg.scoring;
    let tree_bound = factor_bound(len_min, len_max, s.z1)
        * factor_bound(pr_min, pr_max, s.z2)
        * factor_bound(sim_min, sim_max, s.z3);

    // |trees(P)| ≤ min over i of nᵢ · Π_{j≠i} max_per_root_j.
    let mut count_bound = f64::INFINITY;
    for i in 0..aggs.len() {
        let mut b = aggs[i].num_paths as f64;
        for (j, a) in aggs.iter().enumerate() {
            if j != i {
                b *= a.max_per_root as f64;
            }
        }
        count_bound = count_bound.min(b);
    }

    match s.aggregation {
        Aggregation::Sum => count_bound * tree_bound,
        Aggregation::Avg | Aggregation::Max => tree_bound,
        Aggregation::Count => count_bound,
    }
}

/// The per-pattern lower bound a shard can publish after completing a
/// combination locally: a valid lower bound on the pattern's **final**
/// score only for monotone aggregations.
fn partial_lower_bound(acc: &crate::score::ScoreAcc, agg: Aggregation) -> Option<f64> {
    match agg {
        Aggregation::Sum => Some(acc.sum()),
        Aggregation::Count => Some(acc.count as f64),
        Aggregation::Max => Some(acc.max),
        // A subset's mean does not bound the full mean from below.
        Aggregation::Avg => None,
    }
}

/// Bits meaning "no threshold yet" (fewer than k patterns seen, or a
/// k-th best of exactly 0.0 — which could never prune anyway since bounds
/// are non-negative). Zero keeps the monotone `fetch_max` publish valid.
const TAU_UNSET: u64 = 0;

/// The shared, monotone top-k threshold. Workers **read** it lock-free
/// from an atomic; **writes** (one per completed combination per shard)
/// funnel through a mutex that owns the per-pattern lower-bound table and
/// republish the k-th best. Scores are non-negative, so their bit patterns
/// order like the floats themselves.
pub(crate) struct SharedThreshold {
    k: usize,
    tau: AtomicU64,
    inner: Mutex<ThresholdInner>,
}

struct ThresholdInner {
    /// Pattern key → accumulated lower bound (sum of per-shard partials
    /// for `Sum`/`Count`, max for `Max`). One entry per pattern keeps the
    /// k-th best sound.
    entries: FxHashMap<Box<[u32]>, f64>,
    agg: Aggregation,
    scratch: Vec<f64>,
    /// Offers since construction; used to amortize the k-th-best
    /// recomputation on many-pattern queries.
    updates: u64,
}

impl SharedThreshold {
    fn new(k: usize, agg: Aggregation) -> Self {
        SharedThreshold {
            k: k.max(1),
            tau: AtomicU64::new(TAU_UNSET),
            inner: Mutex::new(ThresholdInner {
                entries: FxHashMap::default(),
                agg,
                scratch: Vec::new(),
                updates: 0,
            }),
        }
    }

    /// The current threshold; `None` until k distinct patterns have
    /// published lower bounds.
    #[inline]
    fn kth(&self) -> Option<f64> {
        match self.tau.load(Ordering::Relaxed) {
            TAU_UNSET => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Fold one shard's partial lower bound for `key` in and republish the
    /// k-th best entry. Values only grow, so the published threshold is
    /// monotone non-decreasing and always ≤ the true k-th best final
    /// score. The O(#patterns) k-th-best selection is amortized once the
    /// table outgrows its small regime — a stale (lower) threshold only
    /// prunes less, never wrongly.
    fn offer(&self, key: &[u32], partial: f64) {
        debug_assert!(partial >= 0.0);
        let mut inner = self.inner.lock();
        let agg = inner.agg;
        let entry = inner.entries.entry(key.into()).or_insert(0.0);
        match agg {
            Aggregation::Sum | Aggregation::Count => *entry += partial,
            Aggregation::Max => *entry = entry.max(partial),
            Aggregation::Avg => unreachable!("Avg never offers lower bounds"),
        }
        inner.updates += 1;
        let len = inner.entries.len();
        let recompute =
            len >= self.k && (len <= 64 || len == self.k || inner.updates.is_multiple_of(8));
        if recompute {
            let k = self.k;
            let ThresholdInner {
                entries, scratch, ..
            } = &mut *inner;
            scratch.clear();
            scratch.extend(entries.values().copied());
            let idx = scratch.len() - k;
            scratch.select_nth_unstable_by(idx, |a, b| {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
            });
            let kth = scratch[idx];
            // Monotone publish (concurrent offers may race; max wins).
            self.tau.fetch_max(kth.to_bits(), Ordering::Relaxed);
        }
    }
}

/// One shard's pruned pass over the **global** combination list.
struct ShardOutcome {
    dict: TreeDict,
    /// Keys of combinations this shard pruned (they are provably outside
    /// the global top-k, so the merge drops them everywhere). Only
    /// recorded when several shards participate — with one shard a pruned
    /// combination was never computed, so there is nothing to drop and no
    /// reason to spend `O(pruned)` memory on the §4.1 adversarial case.
    pruned_keys: Vec<Box<[u32]>>,
    subtrees: usize,
    combos_pruned: usize,
    candidate_roots: usize,
}

#[allow(clippy::too_many_arguments)]
fn pruned_shard(
    shard: &ShardContext<'_>,
    cfg: &SearchConfig,
    types: &[TypeId],
    global_lists: &FxHashMap<TypeId, Vec<Vec<PatternId>>>,
    aggs: &[FxHashMap<PatternId, PatternAggregates>],
    threshold: &SharedThreshold,
    record_pruned: bool,
) -> ShardOutcome {
    let m = shard.m();
    let mut dict = TreeDict::default();
    let mut pruned_keys: Vec<Box<[u32]>> = Vec::new();
    let mut subtrees = 0usize;
    let mut combos_pruned = 0usize;
    let mut candidate_roots_seen: Vec<u32> = Vec::new();

    let mut combo = vec![0usize; m];
    let mut chosen: Vec<PatternId> = vec![PatternId(0); m];
    let mut key: Vec<u32> = vec![0; m];
    let mut chosen_aggs: Vec<&PatternAggregates> = Vec::with_capacity(m);
    let mut root_lists: Vec<&[u32]> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);

    for c in types {
        let lists = &global_lists[c];
        combo.iter_mut().for_each(|x| *x = 0);

        loop {
            chosen_aggs.clear();
            for i in 0..m {
                chosen[i] = lists[i][combo[i]];
                key[i] = chosen[i].0;
                chosen_aggs.push(&aggs[i][&chosen[i]]);
            }

            // The pruning test: O(m), no index access, global bound vs the
            // shared threshold.
            let pruned = match threshold.kth() {
                Some(kth) => combination_bound(&chosen_aggs, cfg) * SLACK < kth,
                None => false,
            };
            if pruned {
                combos_pruned += 1;
                if record_pruned {
                    pruned_keys.push(key.as_slice().into());
                }
            } else {
                root_lists.clear();
                for i in 0..m {
                    root_lists.push(shard.words[i].roots_of_pattern(chosen[i]));
                }
                let roots = intersect_sorted(&root_lists);
                if !roots.is_empty() {
                    let group = dict.entry(key.as_slice().into()).or_default();
                    for &r in &roots {
                        let root = NodeId(r);
                        slices.clear();
                        for i in 0..m {
                            slices.push(shard.words[i].paths_of_pattern_root(chosen[i], root));
                        }
                        subtrees += for_each_path_tuple(&slices, &mut scratch, |tuple| {
                            if cfg.strict_trees {
                                node_scratch.clear();
                                for (i, p) in tuple.iter().enumerate() {
                                    node_scratch.push(shard.words[i].nodes_of(p));
                                }
                                if !node_slices_form_tree(root, &node_scratch) {
                                    return;
                                }
                            }
                            let score = cfg.scoring.tree_score_of(tuple);
                            group.acc.push(score);
                            if group.trees.len() < cfg.max_rows {
                                group.trees.push(materialize_tree(
                                    &shard.words,
                                    root,
                                    tuple,
                                    score,
                                ));
                            }
                        });
                    }
                    if group.acc.count == 0 && group.trees.is_empty() {
                        dict.remove(key.as_slice());
                    } else {
                        candidate_roots_seen.extend_from_slice(&roots);
                        if let Some(lower) =
                            partial_lower_bound(&dict[key.as_slice()].acc, cfg.scoring.aggregation)
                        {
                            threshold.offer(&key, lower);
                        }
                    }
                }
            }

            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < lists[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    candidate_roots_seen.sort_unstable();
    candidate_roots_seen.dedup();
    ShardOutcome {
        dict,
        pruned_keys,
        subtrees,
        combos_pruned,
        candidate_roots: candidate_roots_seen.len(),
    }
}

/// `PATTERNENUM` with admissible upper-bound pruning. Returns exactly the
/// same top-k as [`crate::pattern_enum::pattern_enum`], with
/// `stats.combos_pruned` counting the combinations skipped before any
/// intersection (the most-pruning shard worker's count, so the figure
/// stays bounded by `combos_tried` and comparable across shard layouts).
pub fn pattern_enum_pruned(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let m = ctx.m();

    // Global per-(keyword, pattern) aggregates, merged across shards, and
    // the global per-type combination lists they induce. Every shard
    // enumerates the same lists, so bounds and prune decisions are
    // mutually consistent.
    let mut aggs: Vec<FxHashMap<PatternId, PatternAggregates>> = Vec::with_capacity(m);
    for i in 0..m {
        let mut map: FxHashMap<PatternId, PatternAggregates> = FxHashMap::default();
        for s in 0..ctx.num_index_shards() {
            let Some(w) = ctx.shard_word(s, i) else {
                continue;
            };
            for p in w.patterns() {
                let local = PatternAggregates::scan(w, p);
                map.entry(p)
                    .and_modify(|agg| agg.merge(&local))
                    .or_insert(local);
            }
        }
        aggs.push(map);
    }
    let by_type: Vec<FxHashMap<TypeId, Vec<PatternId>>> = aggs
        .iter()
        .map(|map| {
            let mut grouped: FxHashMap<TypeId, Vec<PatternId>> = FxHashMap::default();
            let mut ids: Vec<PatternId> = map.keys().copied().collect();
            ids.sort_unstable_by_key(|p| p.0);
            for p in ids {
                grouped
                    .entry(ctx.idx.patterns().root_type(p))
                    .or_default()
                    .push(p);
            }
            grouped
        })
        .collect();
    let types = crate::pattern_enum::common_types(&by_type);
    let mut global_lists: FxHashMap<TypeId, Vec<Vec<PatternId>>> = FxHashMap::default();
    let mut combos_tried = 0usize;
    for &c in &types {
        let lists: Vec<Vec<PatternId>> = by_type.iter().map(|map| map[&c].clone()).collect();
        let mut prod = 1usize;
        for l in &lists {
            prod = prod.saturating_mul(l.len());
        }
        combos_tried = combos_tried.saturating_add(prod);
        global_lists.insert(c, lists);
    }

    let threshold = SharedThreshold::new(cfg.k, cfg.scoring.aggregation);
    let record_pruned = ctx.shards.len() > 1;
    let locals = run_sharded(&ctx.shards, |shard| {
        (
            pruned_shard(
                shard,
                cfg,
                &types,
                &global_lists,
                &aggs,
                &threshold,
                record_pruned,
            ),
            shard.shard,
        )
    });

    let mut per_shard = Vec::with_capacity(locals.len());
    let mut dicts = Vec::with_capacity(locals.len());
    let mut all_pruned: Vec<Box<[u32]>> = Vec::new();
    let mut subtrees = 0usize;
    let mut combos_pruned = 0usize;
    let mut candidate_roots = 0usize;
    for (outcome, shard) in locals {
        per_shard.push(ShardStats {
            shard,
            candidate_roots: outcome.candidate_roots,
            subtrees: outcome.subtrees,
            patterns: outcome.dict.len(),
        });
        subtrees += outcome.subtrees;
        // Every worker walks the same global list, so report the
        // most-pruning worker: bounded by `combos_tried` and exactly the
        // skipped count when there is one shard.
        combos_pruned = combos_pruned.max(outcome.combos_pruned);
        candidate_roots += outcome.candidate_roots;
        all_pruned.extend(outcome.pruned_keys);
        dicts.push(outcome.dict);
    }
    let mut dict = merge_shard_dicts(dicts, cfg.max_rows);
    // A combination pruned in any shard is provably outside the top-k;
    // its partial groups from other shards must not surface with a
    // partial (understated) score.
    for key in all_pruned {
        dict.remove(&key);
    }

    let patterns_found = dict.len();
    let patterns: Vec<RankedPattern> = dict
        .into_iter()
        .map(|(key, group)| RankedPattern {
            pattern: ctx.decode_key(&key),
            score: group.acc.finish(cfg.scoring.aggregation),
            num_trees: group.acc.count as usize,
            trees: group.trees,
        })
        .collect();
    SearchResult {
        patterns,
        stats: QueryStats {
            candidate_roots,
            subtrees,
            patterns: patterns_found,
            combos_tried,
            combos_pruned,
            per_shard,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern_enum::pattern_enum;
    use crate::score::ScoringConfig;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig, PathIndexes};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (patternkb_graph::KnowledgeGraph, TextIndex, PathIndexes) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    fn assert_same(a: &SearchResult, b: &SearchResult, label: &str) {
        assert_eq!(a.patterns.len(), b.patterns.len(), "{label}: k size");
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key(), "{label}: pattern identity");
            assert!((x.score - y.score).abs() < 1e-9, "{label}: score");
            assert_eq!(x.num_trees, y.num_trees, "{label}: tree count");
        }
    }

    #[test]
    fn pruned_matches_exact_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "database company",
            "revenue",
            "bill gates",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            for k in [1, 2, 5, 100] {
                let cfg = SearchConfig::top(k);
                let exact = pattern_enum(&ctx, &cfg);
                let pruned = pattern_enum_pruned(&ctx, &cfg);
                assert_same(&exact, &pruned, &format!("{query} k={k}"));
            }
        }
    }

    #[test]
    fn pruned_matches_exact_when_sharded() {
        let (g, t, _) = setup();
        for shards in [2usize, 3, 7] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            for query in ["database software company revenue", "database company"] {
                let q = Query::parse(&t, query).unwrap();
                let ctx = QueryContext::new(&g, &idx, &q).unwrap();
                for k in [1, 3, 100] {
                    let cfg = SearchConfig::top(k);
                    let exact = pattern_enum(&ctx, &cfg);
                    let pruned = pattern_enum_pruned(&ctx, &cfg);
                    assert_same(&exact, &pruned, &format!("{query} k={k} shards={shards}"));
                }
            }
        }
    }

    #[test]
    fn pruning_fires_for_small_k() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        // k = 1 on a query with 9 patterns: some combination must be
        // prunable once the best pattern is found.
        let r = pattern_enum_pruned(&ctx, &SearchConfig::top(1));
        assert!(
            r.stats.combos_pruned > 0,
            "expected pruned combos, stats = {:?}",
            r.stats
        );
        assert_eq!(r.patterns.len(), 1);
        assert!((r.patterns[0].score - 3.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_under_all_aggregations() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        for agg in [
            Aggregation::Sum,
            Aggregation::Avg,
            Aggregation::Max,
            Aggregation::Count,
        ] {
            let cfg = SearchConfig {
                scoring: ScoringConfig {
                    aggregation: agg,
                    ..ScoringConfig::default()
                },
                ..SearchConfig::top(3)
            };
            let exact = pattern_enum(&ctx, &cfg);
            let pruned = pattern_enum_pruned(&ctx, &cfg);
            assert_same(&exact, &pruned, &format!("{agg:?}"));
        }
    }

    #[test]
    fn agrees_with_positive_size_exponent() {
        // z1 = +1 flips which length extreme the bound must take.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database company").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig {
            scoring: ScoringConfig {
                z1: 1.0,
                ..ScoringConfig::default()
            },
            ..SearchConfig::top(2)
        };
        assert_same(
            &pattern_enum(&ctx, &cfg),
            &pattern_enum_pruned(&ctx, &cfg),
            "z1=+1",
        );
    }

    #[test]
    fn aggregates_are_correct() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let w = ctx.shards[0].words[0];
        for p in w.patterns() {
            let agg = PatternAggregates::scan(w, p);
            let paths = w.paths_of_pattern(p);
            assert_eq!(agg.num_paths as usize, paths.len());
            let min_len = paths.iter().map(|x| x.score_len()).min().unwrap() as f64;
            let max_sim = paths.iter().map(|x| x.sim).fold(0.0f64, f64::max);
            assert_eq!(agg.min_len, min_len);
            assert_eq!(agg.max_sim, max_sim);
            assert!(agg.max_per_root as usize <= paths.len());
        }
    }

    #[test]
    fn shared_threshold_is_sound_per_pattern() {
        // The same pattern offered from several "shards" counts once: the
        // threshold is the k-th best per-pattern total, not the k-th best
        // raw offer.
        let t = SharedThreshold::new(2, Aggregation::Sum);
        assert_eq!(t.kth(), None);
        t.offer(&[1], 10.0);
        assert_eq!(t.kth(), None, "one pattern < k");
        t.offer(&[1], 9.0); // same pattern, second shard
        assert_eq!(t.kth(), None, "still one distinct pattern");
        t.offer(&[2], 5.0);
        assert_eq!(t.kth(), Some(5.0), "2nd best of {{19, 5}}");
        t.offer(&[3], 7.0);
        assert_eq!(t.kth(), Some(7.0), "2nd best of {{19, 5, 7}}");
    }
}
