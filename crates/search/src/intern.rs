//! Per-query pattern-key interning: dense `u32` ids instead of hashed
//! boxed slices.
//!
//! The inner loops of every index-based algorithm key their `TreeDict` by
//! a tree-pattern key — one pattern id per keyword, flattened to `[u32]`.
//! The previous engine boxed that slice (`Box<[u32]>`) on **every**
//! dictionary access: one heap allocation plus a slice hash per candidate
//! combination, repeated again at shard-merge time and in the pruning
//! threshold. This module replaces that with a bump-arena interner:
//!
//! * every distinct key is copied **once** into a flat `u32` arena and
//!   assigned a dense [`PatternKeyId`] (`0, 1, 2, …`);
//! * groups live in a flat `Vec` indexed by id — no rehash on access;
//! * shard merge re-interns each shard's distinct keys once (id remap)
//!   and then walks vectors, instead of rehashing per posting.
//!
//! All keys within one query share the same width `m` (the keyword
//! count), so the arena needs no per-key length bookkeeping: key `i`
//! lives at `arena[i·m .. (i+1)·m]`.

use patternkb_graph::fxhash::FxHasher;
use patternkb_graph::FxHashMap;
use std::hash::Hasher;

/// Dense id of an interned tree-pattern key (valid within one
/// [`KeyInterner`] only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKeyId(pub u32);

/// Bump-arena interner for fixed-width `u32` keys.
#[derive(Clone, Debug)]
pub struct KeyInterner {
    /// Key width (the query's keyword count; every key has this length).
    width: usize,
    /// All interned keys, back to back.
    arena: Vec<u32>,
    /// key hash → id of the first key with that hash.
    map: FxHashMap<u64, u32>,
    /// Rare true collisions: further `(hash, id)` pairs, scanned linearly.
    overflow: Vec<(u64, u32)>,
}

#[inline]
fn hash_key(key: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &v in key {
        h.write_u32(v);
    }
    h.finish()
}

impl KeyInterner {
    /// An interner for keys of length `width` (≥ 1 — queries always have
    /// at least one keyword).
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "key width must be >= 1");
        KeyInterner {
            width,
            arena: Vec::new(),
            map: FxHashMap::default(),
            overflow: Vec::new(),
        }
    }

    /// Key width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.arena.len() / self.width
    }

    /// Whether no key has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arena bytes held (the "alloc" observability counter).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<u32>()
    }

    /// The key of `id`.
    #[inline]
    pub fn key(&self, id: PatternKeyId) -> &[u32] {
        let i = id.0 as usize * self.width;
        &self.arena[i..i + self.width]
    }

    #[inline]
    fn key_at(&self, id: u32) -> &[u32] {
        let i = id as usize * self.width;
        &self.arena[i..i + self.width]
    }

    /// Intern `key`, returning its dense id and whether it was new.
    ///
    /// # Panics
    /// If `key.len() != self.width()`.
    pub fn intern_full(&mut self, key: &[u32]) -> (PatternKeyId, bool) {
        assert_eq!(key.len(), self.width, "key width mismatch");
        let h = hash_key(key);
        if let Some(&id) = self.map.get(&h) {
            if self.key_at(id) == key {
                return (PatternKeyId(id), false);
            }
            // True hash collision: scan the overflow chain.
            for &(oh, oid) in &self.overflow {
                if oh == h && self.key_at(oid) == key {
                    return (PatternKeyId(oid), false);
                }
            }
            let id = self.push(key);
            self.overflow.push((h, id));
            return (PatternKeyId(id), true);
        }
        let id = self.push(key);
        self.map.insert(h, id);
        (PatternKeyId(id), true)
    }

    /// Intern `key`, returning its dense id.
    #[inline]
    pub fn intern(&mut self, key: &[u32]) -> PatternKeyId {
        self.intern_full(key).0
    }

    /// Look up `key` without interning.
    pub fn get(&self, key: &[u32]) -> Option<PatternKeyId> {
        if key.len() != self.width {
            return None;
        }
        let h = hash_key(key);
        if let Some(&id) = self.map.get(&h) {
            if self.key_at(id) == key {
                return Some(PatternKeyId(id));
            }
            for &(oh, oid) in &self.overflow {
                if oh == h && self.key_at(oid) == key {
                    return Some(PatternKeyId(oid));
                }
            }
        }
        None
    }

    fn push(&mut self, key: &[u32]) -> u32 {
        let id = self.len() as u32;
        self.arena.extend_from_slice(key);
        id
    }

    /// Iterate `(id, key)` in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (PatternKeyId, &[u32])> {
        (0..self.len() as u32).map(|i| (PatternKeyId(i), self.key_at(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut it = KeyInterner::new(3);
        let a = it.intern(&[1, 2, 3]);
        let b = it.intern(&[4, 5, 6]);
        let a2 = it.intern(&[1, 2, 3]);
        assert_eq!(a, PatternKeyId(0));
        assert_eq!(b, PatternKeyId(1));
        assert_eq!(a, a2);
        assert_eq!(it.len(), 2);
        assert_eq!(it.key(a), &[1, 2, 3]);
        assert_eq!(it.key(b), &[4, 5, 6]);
        assert_eq!(it.get(&[4, 5, 6]), Some(b));
        assert_eq!(it.get(&[9, 9, 9]), None);
        assert_eq!(it.arena_bytes(), 24);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut it = KeyInterner::new(2);
        it.intern(&[7, 7]);
        it.intern(&[1, 9]);
        let all: Vec<(u32, Vec<u32>)> = it.iter().map(|(id, k)| (id.0, k.to_vec())).collect();
        assert_eq!(all, vec![(0, vec![7, 7]), (1, vec![1, 9])]);
    }

    #[test]
    fn collisions_resolve_by_key_equality() {
        // Force the collision path artificially by interning through a
        // tiny synthetic interner whose map we pre-poison: intern two
        // distinct keys, then overwrite the map so both hash entries point
        // at key 0. The overflow chain must still resolve correctly.
        let mut it = KeyInterner::new(1);
        let a = it.intern(&[10]);
        // Redirect the second key's hash bucket to id 0 before interning.
        let h = hash_key(&[20]);
        it.map.insert(h, a.0);
        let (b, fresh) = it.intern_full(&[20]);
        assert!(fresh);
        assert_ne!(a, b);
        assert_eq!(it.key(b), &[20]);
        // Both remain findable.
        assert_eq!(it.get(&[10]), Some(a));
        assert_eq!(it.get(&[20]), Some(b));
        assert_eq!(it.intern(&[20]), b, "re-intern hits the overflow chain");
    }

    #[test]
    fn width_one_and_many_keys() {
        let mut it = KeyInterner::new(1);
        for i in 0..1000u32 {
            assert_eq!(it.intern(&[i]), PatternKeyId(i));
        }
        for i in 0..1000u32 {
            assert_eq!(it.intern(&[i]), PatternKeyId(i), "stable on re-intern");
        }
        assert_eq!(it.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        KeyInterner::new(2).intern(&[1]);
    }
}
