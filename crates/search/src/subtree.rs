//! Valid subtrees (§2.2.1).
//!
//! A valid subtree for query `{w1, …, wm}` is identified with the tuple of
//! per-keyword root-to-match paths sharing one root — exactly the objects
//! Algorithms 2–4 enumerate (see DESIGN.md §2). Minimality (condition iii)
//! holds by construction: every leaf of the union of root-to-match paths is
//! the terminus of at least one path.

use patternkb_graph::{FxHashMap, NodeId};

/// One per-keyword root-to-match path of a subtree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePath {
    /// Node sequence `v1 … v_l` (plus the leaf target for edge matches).
    pub nodes: Vec<NodeId>,
    /// Whether the keyword is matched on the final edge (in which case the
    /// last entry of `nodes` is the edge's target leaf).
    pub edge_terminal: bool,
}

impl TreePath {
    /// The matched element's node: the terminal node for node matches, the
    /// edge's *source* for edge matches.
    pub fn match_node(&self) -> NodeId {
        if self.edge_terminal {
            self.nodes[self.nodes.len() - 2]
        } else {
            *self.nodes.last().expect("non-empty path")
        }
    }

    /// The paper's `|T(w)|` — number of nodes including the implied leaf.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the path is empty (never true for well-formed paths).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A valid subtree: one path per keyword, all from the same root, plus its
/// Eq. (3) relevance score.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidSubtree {
    /// The shared root `r`.
    pub root: NodeId,
    /// Per-keyword paths, in query keyword order.
    pub paths: Vec<TreePath>,
    /// `score(T, q)` under the scoring config in effect.
    pub score: f64,
}

impl ValidSubtree {
    /// Whether the union of the paths is a tree: every node other than the
    /// root has exactly one parent among the union's edges. The paper's
    /// products do not perform this check; [`crate::SearchConfig::strict_trees`]
    /// turns it on.
    pub fn is_tree(&self) -> bool {
        paths_form_tree(self.root, self.paths.iter())
    }

    /// All distinct nodes of the subtree.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .paths
            .iter()
            .flat_map(|p| p.nodes.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A canonical identity for deduplication across algorithms: the sorted
    /// per-keyword node sequences.
    pub fn identity(&self) -> (NodeId, Vec<(Vec<NodeId>, bool)>) {
        (
            self.root,
            self.paths
                .iter()
                .map(|p| (p.nodes.clone(), p.edge_terminal))
                .collect(),
        )
    }
}

/// Tree check over any path iterator (used pre-materialization by the
/// algorithms' strict mode): conflicting parents ⇒ not a tree.
pub fn paths_form_tree<'a>(root: NodeId, paths: impl Iterator<Item = &'a TreePath>) -> bool {
    let mut parent: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    for path in paths {
        debug_assert_eq!(path.nodes.first(), Some(&root));
        for w in path.nodes.windows(2) {
            let (p, c) = (w[0], w[1]);
            if c == root {
                return false;
            }
            match parent.entry(c) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != p {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(p);
                }
            }
        }
    }
    true
}

/// Slice-level variant of [`paths_form_tree`] for hot loops that have not
/// materialized [`TreePath`]s yet.
pub fn node_slices_form_tree(root: NodeId, paths: &[&[NodeId]]) -> bool {
    let mut parent: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    for nodes in paths {
        for w in nodes.windows(2) {
            let (p, c) = (w[0], w[1]);
            if c == root {
                return false;
            }
            match parent.entry(c) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != p {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(p);
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[u32], edge_terminal: bool) -> TreePath {
        TreePath {
            nodes: nodes.iter().map(|&i| NodeId(i)).collect(),
            edge_terminal,
        }
    }

    #[test]
    fn match_node() {
        assert_eq!(path(&[0, 1, 2], false).match_node(), NodeId(2));
        assert_eq!(path(&[0, 1, 2], true).match_node(), NodeId(1));
        assert_eq!(path(&[0], false).match_node(), NodeId(0));
    }

    #[test]
    fn shared_prefixes_are_trees() {
        let t = ValidSubtree {
            root: NodeId(0),
            paths: vec![
                path(&[0, 1, 2], false),
                path(&[0, 1, 3], false),
                path(&[0], false),
            ],
            score: 1.0,
        };
        assert!(t.is_tree());
        assert_eq!(t.nodes(), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn converging_paths_are_not_trees() {
        // 0→1→3 and 0→2→3: node 3 has two parents.
        let t = ValidSubtree {
            root: NodeId(0),
            paths: vec![path(&[0, 1, 3], false), path(&[0, 2, 3], false)],
            score: 1.0,
        };
        assert!(!t.is_tree());
    }

    #[test]
    fn edge_back_to_root_is_not_a_tree() {
        let t = ValidSubtree {
            root: NodeId(0),
            paths: vec![path(&[0, 1], false), path(&[0, 2, 0], false)],
            score: 1.0,
        };
        assert!(!t.is_tree());
    }

    #[test]
    fn slice_variant_agrees() {
        let a = [NodeId(0), NodeId(1), NodeId(3)];
        let b = [NodeId(0), NodeId(2), NodeId(3)];
        assert!(!node_slices_form_tree(NodeId(0), &[&a, &b]));
        let c = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(node_slices_form_tree(NodeId(0), &[&a, &c[..2]]));
    }

    #[test]
    fn identity_distinguishes_paths() {
        let t1 = ValidSubtree {
            root: NodeId(0),
            paths: vec![path(&[0, 1], false)],
            score: 1.0,
        };
        let t2 = ValidSubtree {
            root: NodeId(0),
            paths: vec![path(&[0, 1], true)],
            score: 1.0,
        };
        assert_ne!(t1.identity(), t2.identity());
    }
}
