//! Query relaxation for empty results.
//!
//! A keyword query has answers iff the intersection of the per-keyword
//! root sets is non-empty (§4.2, line 1 of Algorithm 3). When a user query
//! comes back empty, the productive next step is to tell them *which
//! keywords to drop*: this module finds all **maximal answerable
//! sub-queries** — subsets of the keywords whose root intersection is
//! non-empty and that are not contained in any larger answerable subset.
//!
//! The search is a lattice walk from the full query downward, pruning
//! subsets of already-answerable sets; with the paper's m ≤ 10 keywords
//! the worst case (2^m intersections) is trivially affordable, and each
//! intersection is a sorted-list walk over the root-first index.

use crate::common::QueryContext;
use crate::Query;
use patternkb_graph::WordId;

/// One maximal answerable sub-query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relaxation {
    /// The keywords kept (in original query order).
    pub keywords: Vec<WordId>,
    /// The keywords that had to be dropped.
    pub dropped: Vec<WordId>,
    /// Number of candidate roots of the kept sub-query.
    pub candidate_roots: usize,
}

/// Find all maximal answerable sub-queries of `query`. Returns an empty
/// vector when the full query is already answerable (no relaxation
/// needed), and also when *no* single keyword matches anything.
pub fn relax(ctx: &QueryContext<'_>, query: &Query) -> Vec<Relaxation> {
    let m = query.keywords.len();
    debug_assert_eq!(m, ctx.m());
    if m == 0 {
        return Vec::new();
    }
    // Sub-query root counts sum over shards (a root lives in exactly one
    // shard); shards missing a selected keyword contribute nothing.
    let roots_of = |mask: u32| -> usize { ctx.mask_roots(mask) };

    let full: u32 = if m >= 32 { u32::MAX } else { (1u32 << m) - 1 };
    if roots_of(full) > 0 {
        return Vec::new(); // already answerable
    }

    // Enumerate subsets by descending popcount; keep answerable ones that
    // are not subsets of an already-kept set.
    let mut kept: Vec<(u32, usize)> = Vec::new();
    let mut subsets: Vec<u32> = (1..full).collect();
    subsets.sort_by_key(|s| std::cmp::Reverse(s.count_ones()));
    for s in subsets {
        if kept.iter().any(|&(k, _)| k & s == s) {
            continue; // contained in a maximal answerable superset
        }
        let roots = roots_of(s);
        if roots > 0 {
            kept.push((s, roots));
        }
    }

    kept.sort_by_key(|&(s, roots)| (std::cmp::Reverse(s.count_ones()), std::cmp::Reverse(roots)));
    kept.into_iter()
        .map(|(s, candidate_roots)| {
            let mut keywords = Vec::new();
            let mut dropped = Vec::new();
            for (i, &w) in query.keywords.iter().enumerate() {
                if s & (1 << i) != 0 {
                    keywords.push(w);
                } else {
                    dropped.push(w);
                }
            }
            Relaxation {
                keywords,
                dropped,
                candidate_roots,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_datagen::figure1;
    use patternkb_datagen::worstcase::{self, W1, W2};
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    #[test]
    fn answerable_query_needs_no_relaxation() {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        assert!(relax(&ctx, &q).is_empty());
    }

    #[test]
    fn worstcase_query_splits_into_singletons() {
        // {w1, w2} has no shared root; each singleton is answerable.
        let g = worstcase::worstcase(3);
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, &format!("{W1} {W2}")).unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let rs = relax(&ctx, &q);
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(r.keywords.len(), 1);
            assert_eq!(r.dropped.len(), 1);
            assert!(r.candidate_roots > 0);
        }
    }

    #[test]
    fn drops_only_the_offending_keyword() {
        // "database oracle gates" on Figure 1(d): no root reaches all three
        // ("oracle" lives under v7/v8, "gates" under v1/v3/v11; the only
        // shared root candidates don't overlap). The maximal relaxations are
        // {database, oracle} (root v7) and {database, gates} (root v1) —
        // each dropping exactly one keyword.
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "database oracle gates").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let rs = relax(&ctx, &q);
        assert_eq!(rs.len(), 2, "{rs:?}");
        let oracle = t.lookup_word("oracle").unwrap();
        let gates = t.lookup_word("gates").unwrap();
        for r in &rs {
            assert_eq!(r.keywords.len(), 2);
            assert_eq!(r.dropped.len(), 1);
            assert!(r.dropped == vec![oracle] || r.dropped == vec![gates]);
            assert!(r.candidate_roots > 0);
        }
        // All results are maximal: no result's keyword set is a subset of
        // another's.
        for a in &rs {
            for b in &rs {
                if a != b {
                    let a_set: std::collections::BTreeSet<_> = a.keywords.iter().collect();
                    let b_set: std::collections::BTreeSet<_> = b.keywords.iter().collect();
                    assert!(!a_set.is_subset(&b_set));
                }
            }
        }
    }

    #[test]
    fn ordering_prefers_larger_then_more_roots() {
        let g = worstcase::worstcase(4);
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, &format!("{W1} {W2} rootone")).unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let rs = relax(&ctx, &q);
        assert!(!rs.is_empty());
        for w in rs.windows(2) {
            assert!(w[0].keywords.len() >= w[1].keywords.len());
        }
    }
}
