//! Version-aware LRU cache for query results.
//!
//! Keyword search is an online service with heavily repeated queries, so a
//! result cache sits naturally in front of the engine. The subtlety is
//! correctness under mutation: [`crate::engine::SearchEngine::apply_delta`]
//! changes answers, so every cache entry records the engine **version** it
//! was computed at and is rejected once the engine moves on (the engine
//! bumps its version on every applied delta). There is no time-based
//! expiry — versions are exact.
//!
//! The key covers everything that determines a result: the keyword-id
//! sequence (order matters — tree patterns are keyword-indexed vectors),
//! the algorithm (including sampling parameters, which change answers),
//! the full [`SearchConfig`], **and the engine's shard count** — sharded
//! execution is answer-identical by construction, but `stats.per_shard`
//! and sampling determinism are layout-properties, and a rebuild with a
//! different `shards(n)` must never serve entries computed under the old
//! layout. Results are shared via [`Arc`], so a hit never clones row
//! data.
//!
//! The cache is internally synchronized (`parking_lot::Mutex`) and can be
//! shared across query threads alongside the immutable engine.

use crate::engine::{Algorithm, SearchEngine};
use crate::request::AlgorithmChoice;
use crate::result::SearchResult;
use crate::topk::SamplingConfig;
use crate::{PlannerConfig, Query, SearchConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything that determines a query's answer, in hashable form.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    words: Vec<u32>,
    /// Root-range shard count of the engine the entry was computed on
    /// (complements the version check: version survives a from-scratch
    /// rebuild with a different `shards(n)`).
    shards: usize,
    /// Algorithm discriminant plus sampling parameters when applicable.
    /// Tags 0–4 are resolved algorithms; tag 5 is an `Auto` request,
    /// whose answer additionally depends on the planner thresholds.
    algo: u8,
    sampling: Option<(u64, u64, u64)>,
    /// Planner thresholds, set only for `Auto` keys (tag 5): the decision
    /// is deterministic per engine version, so (query, thresholds) fully
    /// determines the answer.
    planner: Option<(u64, u64, u64, u64, u64)>,
    k: usize,
    z: (u64, u64, u64),
    aggregation: u8,
    strict_trees: bool,
    max_rows: usize,
}

impl CacheKey {
    fn with_algo(query: &Query, cfg: &SearchConfig, shards: usize, algo_tag: u8) -> Self {
        let s = cfg.scoring;
        CacheKey {
            words: query.keywords.iter().map(|w| w.0).collect(),
            shards,
            algo: algo_tag,
            sampling: None,
            planner: None,
            k: cfg.k,
            z: (s.z1.to_bits(), s.z2.to_bits(), s.z3.to_bits()),
            aggregation: match s.aggregation {
                crate::score::Aggregation::Sum => 0,
                crate::score::Aggregation::Avg => 1,
                crate::score::Aggregation::Max => 2,
                crate::score::Aggregation::Count => 3,
            },
            strict_trees: cfg.strict_trees,
            max_rows: cfg.max_rows,
        }
    }

    fn new(query: &Query, cfg: &SearchConfig, shards: usize, algo: Algorithm) -> Self {
        let (algo_tag, sampling) = match algo {
            Algorithm::Baseline => (0u8, None),
            Algorithm::PatternEnum => (1, None),
            Algorithm::PatternEnumPruned => (2, None),
            Algorithm::LinearEnum => (3, None),
            Algorithm::LinearEnumTopK(s) => (4, Some((s.lambda, s.rho.to_bits(), s.seed))),
        };
        let mut key = Self::with_algo(query, cfg, shards, algo_tag);
        key.sampling = sampling;
        key
    }

    /// Key for a request-level algorithm choice. Non-`Auto` choices share
    /// keys (and therefore entries) with the equivalent resolved
    /// algorithm; `Auto` keys carry the planner thresholds instead of a
    /// resolved decision, so hits skip planning entirely.
    fn for_choice(
        query: &Query,
        cfg: &SearchConfig,
        shards: usize,
        choice: AlgorithmChoice,
        sampling: &SamplingConfig,
        planner: &PlannerConfig,
    ) -> Self {
        match choice {
            AlgorithmChoice::Baseline => Self::new(query, cfg, shards, Algorithm::Baseline),
            AlgorithmChoice::PatternEnum => Self::new(query, cfg, shards, Algorithm::PatternEnum),
            AlgorithmChoice::PatternEnumPruned => {
                Self::new(query, cfg, shards, Algorithm::PatternEnumPruned)
            }
            AlgorithmChoice::LinearEnum => Self::new(query, cfg, shards, Algorithm::LinearEnum),
            AlgorithmChoice::LinearEnumTopK => {
                Self::new(query, cfg, shards, Algorithm::LinearEnumTopK(*sampling))
            }
            AlgorithmChoice::Auto => {
                let mut key = Self::with_algo(query, cfg, shards, 5);
                key.planner = Some((
                    planner.max_combos,
                    planner.max_subtrees_exact,
                    planner.sampling.lambda,
                    planner.sampling.rho.to_bits(),
                    planner.sampling.seed,
                ));
                key
            }
        }
    }
}

struct Entry {
    result: Arc<SearchResult>,
    /// The algorithm that produced the result (the planner's pick for
    /// `Auto` keys — reported on cached responses without re-planning).
    algorithm: Algorithm,
    version: u64,
    /// Monotone access stamp for LRU eviction.
    last_used: u64,
}

/// Cache hit/miss counters (cumulative).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries rejected because the engine version moved on.
    pub stale_rejections: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    stats: CacheStats,
}

/// A bounded, version-aware result cache. See the module docs.
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl QueryCache {
    /// A cache holding at most `capacity` results (≥ 1).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity.max(1)),
                clock: 0,
                stats: CacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Answer `query` from the cache, or run the engine and remember the
    /// result at the engine's current version.
    pub fn get_or_compute(
        &self,
        engine: &SearchEngine,
        query: &Query,
        cfg: &SearchConfig,
        algo: Algorithm,
    ) -> Arc<SearchResult> {
        self.lookup_or_compute(engine, query, cfg, algo).0
    }

    /// [`Self::get_or_compute`] plus whether the answer was a cache hit —
    /// the [`crate::concurrent::SharedEngine`] respond route reports this
    /// in [`crate::SearchResponse::cache`].
    pub fn lookup_or_compute(
        &self,
        engine: &SearchEngine,
        query: &Query,
        cfg: &SearchConfig,
        algo: Algorithm,
    ) -> (Arc<SearchResult>, bool) {
        let key = CacheKey::new(query, cfg, engine.num_shards(), algo);
        let (result, _, hit) = self.lookup_with(key, engine.version(), || {
            (engine.execute(query, cfg, algo), algo)
        });
        (result, hit)
    }

    /// The respond route's lookup: keyed by the request's algorithm
    /// *choice* so `Auto` hits skip planning. `resolve_and_run` is only
    /// called on a miss; its resolved algorithm is stored with the entry
    /// and reported back on hits.
    pub(crate) fn lookup_for_request(
        &self,
        engine: &SearchEngine,
        query: &Query,
        cfg: &SearchConfig,
        choice: AlgorithmChoice,
        sampling: &SamplingConfig,
        planner: &PlannerConfig,
        resolve_and_run: impl FnOnce() -> (SearchResult, Algorithm),
    ) -> (Arc<SearchResult>, Algorithm, bool) {
        let key = CacheKey::for_choice(query, cfg, engine.num_shards(), choice, sampling, planner);
        self.lookup_with(key, engine.version(), resolve_and_run)
    }

    fn lookup_with(
        &self,
        key: CacheKey,
        version: u64,
        compute: impl FnOnce() -> (SearchResult, Algorithm),
    ) -> (Arc<SearchResult>, Algorithm, bool) {
        enum Lookup {
            Hit(Arc<SearchResult>, Algorithm),
            Stale,
            Miss,
        }
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let lookup = match inner.map.get_mut(&key) {
                Some(e) if e.version == version => {
                    e.last_used = clock;
                    Lookup::Hit(Arc::clone(&e.result), e.algorithm)
                }
                Some(_) => Lookup::Stale,
                None => Lookup::Miss,
            };
            match lookup {
                Lookup::Hit(r, algorithm) => {
                    inner.stats.hits += 1;
                    return (r, algorithm, true);
                }
                Lookup::Stale => {
                    inner.map.remove(&key);
                    inner.stats.stale_rejections += 1;
                    inner.stats.misses += 1;
                }
                Lookup::Miss => inner.stats.misses += 1,
            }
        } // release the lock while computing
        let (result, algorithm) = compute();
        let result = Arc::new(result);
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // Under capacity pressure, sweep version-stale corpses first:
            // entries strictly older than the version being inserted can
            // only ever be hit again by a snapshot that predates it (a
            // transient respond_on batch), so they must not squat LRU
            // slots and evict live entries. Strictly-older — not `!=` —
            // so an old-snapshot insert never sweeps newer live entries.
            // Linear scans: capacities are small (hundreds) and eviction
            // is off the hit path.
            let stale: Vec<CacheKey> = inner
                .map
                .iter()
                .filter(|(_, e)| e.version < version)
                .map(|(k, _)| k.clone())
                .collect();
            if !stale.is_empty() {
                for k in &stale {
                    inner.map.remove(k);
                }
                inner.stats.evictions += stale.len() as u64;
            } else if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                // No stale victims: fall back to plain LRU.
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                result: Arc::clone(&result),
                algorithm,
                version,
                last_used: clock,
            },
        );
        (result, algorithm, false)
    }

    /// Drop every entry (e.g. ahead of a bulk mutation).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_datagen::figure1;

    fn engine() -> SearchEngine {
        let (g, _) = figure1();
        crate::EngineBuilder::new()
            .graph(g)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn hit_returns_shared_result() {
        let e = engine();
        let cache = QueryCache::new(8);
        let q = e.parse("database company").unwrap();
        let cfg = SearchConfig::top(10);
        let a = cache.get_or_compute(&e, &q, &cfg, Algorithm::PatternEnum);
        let b = cache.get_or_compute(&e, &q, &cfg, Algorithm::PatternEnum);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn different_shard_count_is_different_entry() {
        // Two engines at the same data version but different shard
        // layouts: a shared cache must never hand one engine's entry to
        // the other (the version check alone cannot tell them apart).
        let e1 = engine();
        let (g, _) = figure1();
        let e2 = crate::EngineBuilder::new()
            .graph(g)
            .threads(1)
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(e1.version(), e2.version());
        assert_ne!(e1.num_shards(), e2.num_shards());
        let cache = QueryCache::new(8);
        let q = e1.parse("database company").unwrap();
        let cfg = SearchConfig::top(10);
        let _ = cache.get_or_compute(&e1, &q, &cfg, Algorithm::PatternEnum);
        let _ = cache.get_or_compute(&e2, &q, &cfg, Algorithm::PatternEnum);
        assert_eq!(
            cache.stats().misses,
            2,
            "shard layouts must not share entries"
        );
        assert_eq!(cache.len(), 2);
        // Each engine still hits its own entry.
        let _ = cache.get_or_compute(&e1, &q, &cfg, Algorithm::PatternEnum);
        let _ = cache.get_or_compute(&e2, &q, &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn different_config_is_different_entry() {
        let e = engine();
        let cache = QueryCache::new(8);
        let q = e.parse("database company").unwrap();
        let a = cache.get_or_compute(&e, &q, &SearchConfig::top(10), Algorithm::PatternEnum);
        let b = cache.get_or_compute(&e, &q, &SearchConfig::top(5), Algorithm::PatternEnum);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // Same query, different algorithm: also distinct.
        let _ = cache.get_or_compute(&e, &q, &SearchConfig::top(10), Algorithm::LinearEnum);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn keyword_order_matters() {
        let e = engine();
        let cache = QueryCache::new(8);
        let q1 = e.parse("database company").unwrap();
        let q2 = e.parse("company database").unwrap();
        let _ = cache.get_or_compute(&e, &q1, &SearchConfig::top(10), Algorithm::PatternEnum);
        let _ = cache.get_or_compute(&e, &q2, &SearchConfig::top(10), Algorithm::PatternEnum);
        assert_eq!(
            cache.stats().misses,
            2,
            "permuted keywords are distinct keys"
        );
    }

    #[test]
    fn mutation_invalidates() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let cache = QueryCache::new(8);
        let q = e.parse("database software company revenue").unwrap();
        let cfg = SearchConfig::top(10);
        let before = cache.get_or_compute(&e, &q, &cfg, Algorithm::PatternEnum);
        let before_table_rows = before.top().unwrap().num_trees;
        assert_eq!(before_table_rows, 2);

        // Mutate: add DB2/IBM as a third row of the Figure-3 table.
        let g = e.graph();
        let soft = g.type_by_text("Software").unwrap();
        let comp = g.type_by_text("Company").unwrap();
        let model = g.type_by_text("Model").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let genre = g.attr_by_text("Genre").unwrap();
        let mut d = GraphDelta::new(g);
        let db2 = d.add_node(soft, "DB2").unwrap();
        let ibm = d.add_node(comp, "IBM").unwrap();
        let rdb = d.add_node(model, "Relational database").unwrap();
        d.add_edge(db2, dev, ibm).unwrap();
        d.add_edge(db2, genre, rdb).unwrap();
        d.add_text_edge(ibm, rev, "US$ 57 billion").unwrap();
        e.apply_delta(&d, PagerankMode::Recompute).unwrap();

        let q = e.parse("database software company revenue").unwrap();
        let after = cache.get_or_compute(&e, &q, &cfg, Algorithm::PatternEnum);
        assert_eq!(
            after.top().unwrap().num_trees,
            3,
            "stale cached answer served after mutation"
        );
        assert_eq!(cache.stats().stale_rejections, 1);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let e = engine();
        let cache = QueryCache::new(2);
        let q1 = e.parse("database").unwrap();
        let q2 = e.parse("company").unwrap();
        let q3 = e.parse("revenue").unwrap();
        let cfg = SearchConfig::top(10);
        let _ = cache.get_or_compute(&e, &q1, &cfg, Algorithm::PatternEnum);
        let _ = cache.get_or_compute(&e, &q2, &cfg, Algorithm::PatternEnum);
        // Touch q1 so q2 becomes LRU.
        let _ = cache.get_or_compute(&e, &q1, &cfg, Algorithm::PatternEnum);
        let _ = cache.get_or_compute(&e, &q3, &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // q1 must still hit; q2 was evicted.
        let hits_before = cache.stats().hits;
        let _ = cache.get_or_compute(&e, &q1, &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.stats().hits, hits_before + 1);
        let misses_before = cache.stats().misses;
        let _ = cache.get_or_compute(&e, &q2, &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn stale_corpses_are_evicted_before_live_entries() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        // Two coexisting states: e0 at version 0, e1 at version 1 — the
        // respond_on micro-batching route really does insert at an old
        // version while newer entries exist.
        let e0 = engine();
        let g = e0.graph();
        let comp = g.type_by_text("Company").unwrap();
        let mut d = GraphDelta::new(g);
        d.add_node(comp, "Sybase").unwrap();
        let (e1, _) = e0.with_delta(&d, PagerankMode::Frozen).unwrap();
        assert_eq!((e0.version(), e1.version()), (0, 1));

        let cache = QueryCache::new(4);
        let cfg = SearchConfig::top(10);
        let q = |text: &str| e0.parse(text).unwrap();
        // Three live v1 entries…
        for text in ["database", "company", "revenue"] {
            let _ = cache.get_or_compute(&e1, &q(text), &cfg, Algorithm::PatternEnum);
        }
        // …then a v0 corpse inserted LAST (highest LRU stamp: plain LRU
        // would protect it and evict the live "database" entry instead).
        let _ = cache.get_or_compute(&e0, &q("software"), &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.len(), 4);

        // Capacity pressure at v1: the corpse is swept, never a live one.
        let _ = cache.get_or_compute(&e1, &q("microsoft"), &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.stats().evictions, 1);
        let hits_before = cache.stats().hits;
        for text in ["database", "company", "revenue", "microsoft"] {
            let _ = cache.get_or_compute(&e1, &q(text), &cfg, Algorithm::PatternEnum);
        }
        assert_eq!(
            cache.stats().hits,
            hits_before + 4,
            "every v1 entry survived while the v0 corpse was swept"
        );
        // The corpse is gone: re-querying it at v0 misses.
        let misses_before = cache.stats().misses;
        let _ = cache.get_or_compute(&e0, &q("software"), &cfg, Algorithm::PatternEnum);
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn stale_sweep_frees_all_corpses_at_once() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let e0 = engine();
        let g = e0.graph();
        let comp = g.type_by_text("Company").unwrap();
        let mut d = GraphDelta::new(g);
        d.add_node(comp, "Sybase").unwrap();
        let (e1, _) = e0.with_delta(&d, PagerankMode::Frozen).unwrap();

        // Fill the cache entirely with v0 entries, bump to v1, insert.
        let cache = QueryCache::new(3);
        let cfg = SearchConfig::top(10);
        for text in ["database", "company", "revenue"] {
            let _ =
                cache.get_or_compute(&e0, &e0.parse(text).unwrap(), &cfg, Algorithm::PatternEnum);
        }
        let _ = cache.get_or_compute(
            &e1,
            &e1.parse("software").unwrap(),
            &cfg,
            Algorithm::PatternEnum,
        );
        // One insert swept every corpse, not just one LRU victim.
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let e = engine();
        let cache = QueryCache::new(4);
        let q = e.parse("database").unwrap();
        let _ = cache.get_or_compute(&e, &q, &SearchConfig::top(10), Algorithm::PatternEnum);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_are_safe() {
        let e = engine();
        let cache = QueryCache::new(16);
        let queries: Vec<Query> = ["database", "company", "revenue", "software"]
            .iter()
            .map(|s| e.parse(s).unwrap())
            .collect();
        let cfg = SearchConfig::top(10);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        for q in &queries {
                            let r = cache.get_or_compute(&e, q, &cfg, Algorithm::PatternEnum);
                            assert!(!r.patterns.is_empty());
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 25 * 4);
        assert!(s.hits > s.misses, "steady state must be hit-dominated");
    }
}
