//! `PATTERNENUM` — Algorithm 2.
//!
//! For each root type `C`, enumerate every combination of per-keyword path
//! patterns rooted at `C` (from the pattern-first index), intersect the
//! pattern's root lists to test emptiness (line 5), and for nonempty
//! combinations join the paths at their shared roots into valid subtrees.
//!
//! Only `k` patterns (plus their materialized rows) are ever held in
//! memory, so the footprint is small; the price is the worst-case `Θ(p^m)`
//! joins wasted on **empty** pattern combinations (§4.1's adversarial
//! construction, reproduced in `datagen::worstcase` and the `worst_case`
//! bench).

use crate::common::{for_each_path_tuple, intersect_sorted, materialize_tree, QueryContext};
use crate::result::{QueryStats, RankedPattern, SearchResult};
use crate::score::ScoreAcc;
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting};
use std::time::Instant;

/// Run `PATTERNENUM`.
pub fn pattern_enum(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let m = ctx.m();

    // Per keyword: patterns grouped by root type (PatternsC(wᵢ), line 3).
    let by_type: Vec<FxHashMap<TypeId, Vec<PatternId>>> = ctx
        .words
        .iter()
        .map(|w| {
            let mut map: FxHashMap<TypeId, Vec<PatternId>> = FxHashMap::default();
            for p in w.patterns() {
                map.entry(ctx.idx.patterns().root_type(p))
                    .or_default()
                    .push(p);
            }
            map
        })
        .collect();

    // Root types present for *every* keyword, in id order for determinism.
    let mut types: Vec<TypeId> = by_type[0].keys().copied().collect();
    types.sort_unstable();
    types.retain(|c| by_type.iter().all(|map| map.contains_key(c)));

    let mut best: Vec<RankedPattern> = Vec::new();
    let mut combos_tried = 0usize;
    let mut subtrees = 0usize;
    let mut patterns_found = 0usize;
    let mut candidate_roots_seen: Vec<u32> = Vec::new();

    let mut combo = vec![0usize; m];
    let mut chosen: Vec<PatternId> = vec![PatternId(0); m];
    let mut root_lists: Vec<&[u32]> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);

    for &c in &types {
        let lists: Vec<&Vec<PatternId>> = by_type.iter().map(|map| &map[&c]).collect();
        combo.iter_mut().for_each(|x| *x = 0);

        // Line 4: the pattern product for this root type.
        loop {
            combos_tried += 1;
            root_lists.clear();
            for i in 0..m {
                chosen[i] = lists[i][combo[i]];
                root_lists.push(ctx.words[i].roots_of_pattern(chosen[i]));
            }
            // Line 5: candidate roots of this tree pattern.
            let roots = intersect_sorted(&root_lists);
            if !roots.is_empty() {
                // Lines 7–8: join paths at each shared root.
                let mut acc = ScoreAcc::new();
                let mut trees = Vec::new();
                for &r in &roots {
                    let root = NodeId(r);
                    slices.clear();
                    for i in 0..m {
                        slices.push(ctx.words[i].paths_of_pattern_root(chosen[i], root));
                    }
                    subtrees += for_each_path_tuple(&slices, &mut scratch, |tuple| {
                        if cfg.strict_trees {
                            node_scratch.clear();
                            for (i, p) in tuple.iter().enumerate() {
                                node_scratch.push(ctx.words[i].nodes_of(p));
                            }
                            if !node_slices_form_tree(root, &node_scratch) {
                                return;
                            }
                        }
                        let score = cfg.scoring.tree_score_of(tuple);
                        acc.push(score);
                        if trees.len() < cfg.max_rows {
                            trees.push(materialize_tree(&ctx.words, root, tuple, score));
                        }
                    });
                }
                if acc.count > 0 {
                    patterns_found += 1;
                    candidate_roots_seen.extend_from_slice(&roots);
                    let key_patterns = chosen
                        .iter()
                        .map(|p| ctx.idx.patterns().decode(*p))
                        .collect();
                    best.push(RankedPattern {
                        pattern: key_patterns,
                        score: acc.finish(cfg.scoring.aggregation),
                        num_trees: acc.count as usize,
                        trees,
                    });
                    // Keep at most ~k patterns in memory (paper: queue Q of
                    // size k), amortizing the compaction.
                    if best.len() >= 2 * cfg.k.max(8) {
                        compact(&mut best, cfg.k);
                    }
                }
            }

            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < lists[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    candidate_roots_seen.sort_unstable();
    candidate_roots_seen.dedup();
    SearchResult {
        patterns: best,
        stats: QueryStats {
            candidate_roots: candidate_roots_seen.len(),
            subtrees,
            patterns: patterns_found,
            combos_tried,
            combos_pruned: 0,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

fn compact(best: &mut Vec<RankedPattern>, k: usize) {
    best.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key().cmp(&b.key()))
    });
    best.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::Query;
    use patternkb_datagen::{figure1, worstcase};
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(&g, &t, &BuildConfig { d: 3, threads: 1 });
        (g, t, idx)
    }

    #[test]
    fn agrees_with_linear_enum_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "revenue",
            "database company",
            "bill gates",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            let cfg = SearchConfig::top(100);
            let le = linear_enum(&ctx, &cfg);
            let pe = pattern_enum(&ctx, &cfg);
            assert_eq!(le.patterns.len(), pe.patterns.len(), "query {query}");
            for (a, b) in le.patterns.iter().zip(&pe.patterns) {
                assert_eq!(a.key(), b.key(), "query {query}");
                assert!((a.score - b.score).abs() < 1e-9);
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }

    #[test]
    fn wastes_quadratic_combos_on_worstcase() {
        // §4.1: p² combos tried, zero patterns found.
        let p = 12;
        let g = worstcase::worstcase(p);
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(&g, &t, &BuildConfig { d: 2, threads: 1 });
        let q = Query::parse(&t, &format!("{} {}", worstcase::W1, worstcase::W2)).unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let pe = pattern_enum(&ctx, &SearchConfig::top(10));
        assert_eq!(pe.patterns.len(), 0);
        assert!(
            pe.stats.combos_tried >= p * p,
            "tried {} combos, expected ≥ {}",
            pe.stats.combos_tried,
            p * p
        );
        // LINEARENUM finds the empty answer without trying any combo.
        let le = linear_enum(&ctx, &SearchConfig::top(10));
        assert_eq!(le.patterns.len(), 0);
        assert_eq!(le.stats.combos_tried, 0);
        assert_eq!(le.stats.candidate_roots, 0);
    }

    #[test]
    fn stats_subtree_counts_match() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let pe = pattern_enum(&ctx, &cfg);
        let le = linear_enum(&ctx, &cfg);
        assert_eq!(pe.stats.subtrees, le.stats.subtrees);
        assert_eq!(pe.stats.candidate_roots, le.stats.candidate_roots);
    }
}
