//! `PATTERNENUM` — Algorithm 2, shard-parallel.
//!
//! For each root type `C`, enumerate every combination of per-keyword path
//! patterns rooted at `C` (from the pattern-first index), intersect the
//! pattern's root lists to test emptiness (line 5), and for nonempty
//! combinations join the paths at their shared roots into valid subtrees.
//!
//! Under sharding each worker runs the enumeration over **its shard's**
//! pattern lists and root ranges; a pattern combination whose subtrees
//! spread over several shards is discovered independently in each and its
//! partial groups merge exactly at the end (a pattern's score aggregates
//! over roots, and roots partition across shards). The cross-shard merge
//! requires holding every *nonempty* combination's partial group until
//! the end — `O(patterns)` memory, the same class as `LINEARENUM`'s
//! dictionary, replacing the pre-shard `O(k)` periodic compaction; empty
//! combinations (the adversarial bulk) still cost nothing. The worst case remains
//! the `Θ(p^m)` joins wasted on **empty** pattern combinations (§4.1's
//! adversarial construction, reproduced in `datagen::worstcase` and the
//! `worst_case` bench); `stats.combos_tried` reports the global
//! combination count — `Σ_C Πᵢ |PatternsC(wᵢ)|` over the whole index — so
//! the figure is comparable across shard counts.

use crate::common::{
    for_each_path_tuple, materialize_tree, merge_shard_dicts, run_sharded, QueryContext,
    ShardContext, TreeDict,
};
use crate::result::{QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting};
use std::time::Instant;

/// Root types present in *every* per-keyword map, in id order.
pub(crate) fn common_types<V>(by_type: &[FxHashMap<TypeId, V>]) -> Vec<TypeId> {
    let mut types: Vec<TypeId> = by_type[0].keys().copied().collect();
    types.sort_unstable();
    types.retain(|c| by_type.iter().all(|map| map.contains_key(c)));
    types
}

/// The global pattern-combination count `Σ_C Πᵢ |PatternsC(wᵢ)|` over the
/// whole index — what a single-shard `PATTERNENUM` iterates (saturating).
fn global_combo_count(ctx: &QueryContext<'_>) -> usize {
    let by_type: Vec<FxHashMap<TypeId, Vec<PatternId>>> = (0..ctx.m())
        .map(|i| {
            let mut map: FxHashMap<TypeId, Vec<PatternId>> = FxHashMap::default();
            for p in ctx.global_patterns(i) {
                map.entry(ctx.idx.patterns().root_type(p))
                    .or_default()
                    .push(p);
            }
            map
        })
        .collect();
    let mut total = 0usize;
    for c in common_types(&by_type) {
        let mut prod = 1usize;
        for map in &by_type {
            prod = prod.saturating_mul(map[&c].len());
        }
        total = total.saturating_add(prod);
    }
    total
}

/// One shard's `PATTERNENUM` pass: every nonempty local combination folded
/// into a [`TreeDict`] keyed by the (global) pattern-id tuple.
///
/// The per-combination inner loop is **fused**: instead of materializing
/// the root intersection and then re-searching each root's posting run,
/// per-keyword [`patternkb_index::RunCursor`]s leapfrog by root and land
/// on each common root's posting slices directly
/// ([`patternkb_index::intersect_runs`]).
fn pattern_enum_shard(shard: &ShardContext<'_>, cfg: &SearchConfig) -> (TreeDict, usize, Vec<u32>) {
    let m = shard.m();
    // Per keyword: patterns grouped by root type (`PatternsC(wᵢ)`,
    // line 3) — cached on the word index, so per-query setup is
    // O(root types), not O(patterns).
    let groups_per_kw: Vec<&[patternkb_index::PatternTypeGroup]> = shard
        .words
        .iter()
        .map(|w| w.pattern_type_groups(shard.idx.patterns()))
        .collect();

    let mut dict = TreeDict::new(m);
    let mut subtrees = 0usize;
    let mut candidate_roots_seen: Vec<u32> = Vec::new();

    let mut combo = vec![0usize; m];
    let mut key: Vec<u32> = vec![0; m];
    let mut lists: Vec<&[PatternId]> = Vec::with_capacity(m);
    let mut prims: Vec<&[u32]> = Vec::with_capacity(m);
    let mut cursors: Vec<patternkb_index::RunCursor<'_>> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);

    // Walk keyword 0's types (ascending); a type missing for any other
    // keyword has no combinations.
    'types: for g0 in groups_per_kw[0] {
        let c = g0.root_type;
        lists.clear();
        prims.clear();
        lists.push(&g0.patterns);
        prims.push(&g0.prims);
        for groups in &groups_per_kw[1..] {
            match groups.binary_search_by_key(&c, |g| g.root_type) {
                Ok(at) => {
                    lists.push(&groups[at].patterns);
                    prims.push(&groups[at].prims);
                }
                Err(_) => continue 'types,
            }
        }
        combo.iter_mut().for_each(|x| *x = 0);

        // Line 4: the pattern product for this root type.
        loop {
            for i in 0..m {
                key[i] = lists[i][combo[i]].0;
            }
            cursors.clear();
            for i in 0..m {
                cursors.push(shard.words[i].pattern_run_cursor(prims[i][combo[i]] as usize));
            }
            // Lines 5–8 fused: leapfrog the run cursors; every common
            // root yields its posting slices for the path product.
            let roots_before = candidate_roots_seen.len();
            let mut group_id = None;
            let seeks = patternkb_index::intersect_runs(&mut cursors, &mut slices, |r, tuple| {
                let root = NodeId(r);
                let gid = *group_id.get_or_insert_with(|| dict.intern(&key));
                let group = dict.group_by_id_mut(gid);
                candidate_roots_seen.push(r);
                subtrees += for_each_path_tuple(tuple, &mut scratch, |tuple| {
                    if cfg.strict_trees {
                        node_scratch.clear();
                        for (i, p) in tuple.iter().enumerate() {
                            node_scratch.push(shard.words[i].nodes_of(p));
                        }
                        if !node_slices_form_tree(root, &node_scratch) {
                            return;
                        }
                    }
                    let score = cfg.scoring.tree_score_of(tuple);
                    group.acc.push(score);
                    if group.trees.len() < cfg.max_rows {
                        group
                            .trees
                            .push(materialize_tree(&shard.words, root, tuple, score));
                    }
                });
            });
            shard.counters.add_seeks(seeks);
            if let Some(gid) = group_id {
                if dict.group(gid).is_dead() {
                    // Strict mode rejected every tuple: drop the roots we
                    // optimistically recorded.
                    candidate_roots_seen.truncate(roots_before);
                }
            }

            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < lists[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    candidate_roots_seen.sort_unstable();
    candidate_roots_seen.dedup();
    (dict, subtrees, candidate_roots_seen)
}

/// Run `PATTERNENUM`.
pub fn pattern_enum(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let combos_tried = global_combo_count(ctx);
    let locals = run_sharded(&ctx.shards, |shard| {
        let (dict, subtrees, roots) = pattern_enum_shard(shard, cfg);
        (dict, subtrees, roots, shard.shard)
    });

    let mut per_shard = Vec::with_capacity(locals.len());
    let mut dicts = Vec::with_capacity(locals.len());
    let mut subtrees = 0usize;
    let mut candidate_roots = 0usize;
    for (dict, local_subtrees, roots, shard) in locals {
        per_shard.push(ShardStats {
            shard,
            candidate_roots: roots.len(),
            subtrees: local_subtrees,
            patterns: dict.len(),
        });
        subtrees += local_subtrees;
        // Shards partition the root space, so per-shard dedup is global
        // dedup.
        candidate_roots += roots.len();
        dicts.push(dict);
    }
    let dict = merge_shard_dicts(dicts, ctx.m(), cfg.max_rows);

    let patterns_found = dict.len();
    let mut hot = ctx.hot_stats();
    hot.keys_interned = dict.keys_interned() as u64;
    hot.key_arena_bytes = dict.arena_bytes() as u64;
    let mut patterns: Vec<RankedPattern> = Vec::with_capacity(patterns_found);
    dict.drain_live(|key, group| {
        patterns.push(RankedPattern {
            pattern: ctx.decode_key(key),
            score: group.acc.finish(cfg.scoring.aggregation),
            num_trees: group.acc.count as usize,
            trees: group.trees,
        });
    });
    SearchResult {
        patterns,
        stats: QueryStats {
            candidate_roots,
            subtrees,
            patterns: patterns_found,
            combos_tried,
            combos_pruned: 0,
            per_shard,
            hot,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::Query;
    use patternkb_datagen::{figure1, worstcase};
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn agrees_with_linear_enum_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "revenue",
            "database company",
            "bill gates",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            let cfg = SearchConfig::top(100);
            let le = linear_enum(&ctx, &cfg);
            let pe = pattern_enum(&ctx, &cfg);
            assert_eq!(le.patterns.len(), pe.patterns.len(), "query {query}");
            for (a, b) in le.patterns.iter().zip(&pe.patterns) {
                assert_eq!(a.key(), b.key(), "query {query}");
                assert!((a.score - b.score).abs() < 1e-9);
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }

    #[test]
    fn wastes_quadratic_combos_on_worstcase() {
        // §4.1: p² combos tried, zero patterns found.
        let p = 12;
        let g = worstcase::worstcase(p);
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, &format!("{} {}", worstcase::W1, worstcase::W2)).unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let pe = pattern_enum(&ctx, &SearchConfig::top(10));
        assert_eq!(pe.patterns.len(), 0);
        assert!(
            pe.stats.combos_tried >= p * p,
            "tried {} combos, expected ≥ {}",
            pe.stats.combos_tried,
            p * p
        );
        // LINEARENUM finds the empty answer without trying any combo.
        let le = linear_enum(&ctx, &SearchConfig::top(10));
        assert_eq!(le.patterns.len(), 0);
        assert_eq!(le.stats.combos_tried, 0);
        assert_eq!(le.stats.candidate_roots, 0);
    }

    #[test]
    fn stats_subtree_counts_match() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let pe = pattern_enum(&ctx, &cfg);
        let le = linear_enum(&ctx, &cfg);
        assert_eq!(pe.stats.subtrees, le.stats.subtrees);
        assert_eq!(pe.stats.candidate_roots, le.stats.candidate_roots);
    }
}
