//! `PATTERNENUM` — Algorithm 2, shard-parallel.
//!
//! For each root type `C`, enumerate every combination of per-keyword path
//! patterns rooted at `C` (from the pattern-first index), intersect the
//! pattern's root lists to test emptiness (line 5), and for nonempty
//! combinations join the paths at their shared roots into valid subtrees.
//!
//! Under sharding each worker runs the enumeration over **its shard's**
//! pattern lists and root ranges; a pattern combination whose subtrees
//! spread over several shards is discovered independently in each and its
//! partial groups merge exactly at the end (a pattern's score aggregates
//! over roots, and roots partition across shards). The cross-shard merge
//! requires holding every *nonempty* combination's partial group until
//! the end — `O(patterns)` memory, the same class as `LINEARENUM`'s
//! dictionary, replacing the pre-shard `O(k)` periodic compaction; empty
//! combinations (the adversarial bulk) still cost nothing. The worst case remains
//! the `Θ(p^m)` joins wasted on **empty** pattern combinations (§4.1's
//! adversarial construction, reproduced in `datagen::worstcase` and the
//! `worst_case` bench); `stats.combos_tried` reports the global
//! combination count — `Σ_C Πᵢ |PatternsC(wᵢ)|` over the whole index — so
//! the figure is comparable across shard counts.

use crate::common::{
    for_each_path_tuple, intersect_sorted, materialize_tree, merge_shard_dicts, run_sharded,
    QueryContext, ShardContext, TreeDict,
};
use crate::result::{QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting, WordPathIndex};
use std::time::Instant;

/// Per-keyword patterns grouped by root type (`PatternsC(wᵢ)`, line 3).
pub(crate) fn patterns_by_type(
    idx: &patternkb_index::PathIndexes,
    words: &[&WordPathIndex],
) -> Vec<FxHashMap<TypeId, Vec<PatternId>>> {
    words
        .iter()
        .map(|w| {
            let mut map: FxHashMap<TypeId, Vec<PatternId>> = FxHashMap::default();
            for p in w.patterns() {
                map.entry(idx.patterns().root_type(p)).or_default().push(p);
            }
            map
        })
        .collect()
}

/// Root types present in *every* per-keyword map, in id order.
pub(crate) fn common_types(by_type: &[FxHashMap<TypeId, Vec<PatternId>>]) -> Vec<TypeId> {
    let mut types: Vec<TypeId> = by_type[0].keys().copied().collect();
    types.sort_unstable();
    types.retain(|c| by_type.iter().all(|map| map.contains_key(c)));
    types
}

/// The global pattern-combination count `Σ_C Πᵢ |PatternsC(wᵢ)|` over the
/// whole index — what a single-shard `PATTERNENUM` iterates (saturating).
fn global_combo_count(ctx: &QueryContext<'_>) -> usize {
    let by_type: Vec<FxHashMap<TypeId, Vec<PatternId>>> = (0..ctx.m())
        .map(|i| {
            let mut map: FxHashMap<TypeId, Vec<PatternId>> = FxHashMap::default();
            for p in ctx.global_patterns(i) {
                map.entry(ctx.idx.patterns().root_type(p))
                    .or_default()
                    .push(p);
            }
            map
        })
        .collect();
    let mut total = 0usize;
    for c in common_types(&by_type) {
        let mut prod = 1usize;
        for map in &by_type {
            prod = prod.saturating_mul(map[&c].len());
        }
        total = total.saturating_add(prod);
    }
    total
}

/// One shard's `PATTERNENUM` pass: every nonempty local combination folded
/// into a [`TreeDict`] keyed by the (global) pattern-id tuple.
fn pattern_enum_shard(shard: &ShardContext<'_>, cfg: &SearchConfig) -> (TreeDict, usize, Vec<u32>) {
    let m = shard.m();
    let by_type = patterns_by_type(shard.idx, &shard.words);
    let types = common_types(&by_type);

    let mut dict = TreeDict::default();
    let mut subtrees = 0usize;
    let mut candidate_roots_seen: Vec<u32> = Vec::new();

    let mut combo = vec![0usize; m];
    let mut chosen: Vec<PatternId> = vec![PatternId(0); m];
    let mut key: Vec<u32> = vec![0; m];
    let mut root_lists: Vec<&[u32]> = Vec::with_capacity(m);
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);

    for &c in &types {
        let lists: Vec<&Vec<PatternId>> = by_type.iter().map(|map| &map[&c]).collect();
        combo.iter_mut().for_each(|x| *x = 0);

        // Line 4: the pattern product for this root type.
        loop {
            root_lists.clear();
            for i in 0..m {
                chosen[i] = lists[i][combo[i]];
                key[i] = chosen[i].0;
                root_lists.push(shard.words[i].roots_of_pattern(chosen[i]));
            }
            // Line 5: candidate roots of this tree pattern (in-shard).
            let roots = intersect_sorted(&root_lists);
            if !roots.is_empty() {
                // Lines 7–8: join paths at each shared root.
                let group = dict.entry(key.as_slice().into()).or_default();
                for &r in &roots {
                    let root = NodeId(r);
                    slices.clear();
                    for i in 0..m {
                        slices.push(shard.words[i].paths_of_pattern_root(chosen[i], root));
                    }
                    subtrees += for_each_path_tuple(&slices, &mut scratch, |tuple| {
                        if cfg.strict_trees {
                            node_scratch.clear();
                            for (i, p) in tuple.iter().enumerate() {
                                node_scratch.push(shard.words[i].nodes_of(p));
                            }
                            if !node_slices_form_tree(root, &node_scratch) {
                                return;
                            }
                        }
                        let score = cfg.scoring.tree_score_of(tuple);
                        group.acc.push(score);
                        if group.trees.len() < cfg.max_rows {
                            group
                                .trees
                                .push(materialize_tree(&shard.words, root, tuple, score));
                        }
                    });
                }
                if group.acc.count == 0 && group.trees.is_empty() {
                    dict.remove(key.as_slice());
                } else {
                    candidate_roots_seen.extend_from_slice(&roots);
                }
            }

            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < lists[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    candidate_roots_seen.sort_unstable();
    candidate_roots_seen.dedup();
    (dict, subtrees, candidate_roots_seen)
}

/// Run `PATTERNENUM`.
pub fn pattern_enum(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let combos_tried = global_combo_count(ctx);
    let locals = run_sharded(&ctx.shards, |shard| {
        let (dict, subtrees, roots) = pattern_enum_shard(shard, cfg);
        (dict, subtrees, roots, shard.shard)
    });

    let mut per_shard = Vec::with_capacity(locals.len());
    let mut dicts = Vec::with_capacity(locals.len());
    let mut subtrees = 0usize;
    let mut candidate_roots = 0usize;
    for (dict, local_subtrees, roots, shard) in locals {
        per_shard.push(ShardStats {
            shard,
            candidate_roots: roots.len(),
            subtrees: local_subtrees,
            patterns: dict.len(),
        });
        subtrees += local_subtrees;
        // Shards partition the root space, so per-shard dedup is global
        // dedup.
        candidate_roots += roots.len();
        dicts.push(dict);
    }
    let dict = merge_shard_dicts(dicts, cfg.max_rows);

    let patterns_found = dict.len();
    let patterns: Vec<RankedPattern> = dict
        .into_iter()
        .map(|(key, group)| RankedPattern {
            pattern: ctx.decode_key(&key),
            score: group.acc.finish(cfg.scoring.aggregation),
            num_trees: group.acc.count as usize,
            trees: group.trees,
        })
        .collect();
    SearchResult {
        patterns,
        stats: QueryStats {
            candidate_roots,
            subtrees,
            patterns: patterns_found,
            combos_tried,
            combos_pruned: 0,
            per_shard,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::Query;
    use patternkb_datagen::{figure1, worstcase};
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn agrees_with_linear_enum_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "revenue",
            "database company",
            "bill gates",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            let cfg = SearchConfig::top(100);
            let le = linear_enum(&ctx, &cfg);
            let pe = pattern_enum(&ctx, &cfg);
            assert_eq!(le.patterns.len(), pe.patterns.len(), "query {query}");
            for (a, b) in le.patterns.iter().zip(&pe.patterns) {
                assert_eq!(a.key(), b.key(), "query {query}");
                assert!((a.score - b.score).abs() < 1e-9);
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }

    #[test]
    fn wastes_quadratic_combos_on_worstcase() {
        // §4.1: p² combos tried, zero patterns found.
        let p = 12;
        let g = worstcase::worstcase(p);
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, &format!("{} {}", worstcase::W1, worstcase::W2)).unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let pe = pattern_enum(&ctx, &SearchConfig::top(10));
        assert_eq!(pe.patterns.len(), 0);
        assert!(
            pe.stats.combos_tried >= p * p,
            "tried {} combos, expected ≥ {}",
            pe.stats.combos_tried,
            p * p
        );
        // LINEARENUM finds the empty answer without trying any combo.
        let le = linear_enum(&ctx, &SearchConfig::top(10));
        assert_eq!(le.patterns.len(), 0);
        assert_eq!(le.stats.combos_tried, 0);
        assert_eq!(le.stats.candidate_roots, 0);
    }

    #[test]
    fn stats_subtree_counts_match() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let pe = pattern_enum(&ctx, &cfg);
        let le = linear_enum(&ctx, &cfg);
        assert_eq!(pe.stats.subtrees, le.stats.subtrees);
        assert_eq!(pe.stats.candidate_roots, le.stats.candidate_roots);
    }
}
