//! Ranking-quality metrics used throughout the §5 reproduction.
//!
//! The paper's "precision" (§5.2) is the fraction of true top-k answers an
//! approximate run recovered; this module adds the standard companions
//! (recall is identical for same-length lists, Kendall tau for order
//! agreement, reciprocal rank for where the first miss happens), all over
//! opaque answer keys so they apply to pattern rankings and subtree
//! rankings alike.

/// Fraction of `truth` present in `approx` (the paper's precision; §5.2).
/// Empty truth → 1.0 by convention.
pub fn precision<K: PartialEq>(truth: &[K], approx: &[K]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = truth.iter().filter(|t| approx.contains(t)).count();
    hits as f64 / truth.len() as f64
}

/// Precision@j for every prefix `j = 1..=k` of the truth list — the curve
/// behind Figure 11/12-style plots.
pub fn precision_curve<K: PartialEq>(truth: &[K], approx: &[K]) -> Vec<f64> {
    (1..=truth.len())
        .map(|j| precision(&truth[..j], approx))
        .collect()
}

/// Kendall tau-a rank correlation between two rankings of the same item
/// set, each given as a list of keys (rank = position). Items missing from
/// either list are ignored. Returns a value in [-1, 1]; 1 = identical
/// order, -1 = reversed. `None` when fewer than 2 shared items.
pub fn kendall_tau<K: PartialEq>(a: &[K], b: &[K]) -> Option<f64> {
    // Positions of shared items in both lists.
    let shared: Vec<(usize, usize)> = a
        .iter()
        .enumerate()
        .filter_map(|(ia, key)| b.iter().position(|x| x == key).map(|ib| (ia, ib)))
        .collect();
    let n = shared.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let (a1, b1) = shared[i];
            let (a2, b2) = shared[j];
            let s = ((a1 < a2) == (b1 < b2)) as i64 * 2 - 1;
            if s > 0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Reciprocal rank of the first element of `truth` inside `approx`
/// (1-based); 0.0 when absent.
pub fn reciprocal_rank<K: PartialEq>(truth: &[K], approx: &[K]) -> f64 {
    let Some(best) = truth.first() else {
        return 0.0;
    };
    match approx.iter().position(|x| x == best) {
        Some(i) => 1.0 / (i + 1) as f64,
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basics() {
        assert_eq!(precision(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(precision(&[1, 2, 3, 4], &[1, 2]), 0.5);
        assert_eq!(precision::<u32>(&[], &[1]), 1.0);
        assert_eq!(precision(&[1], &[]), 0.0);
    }

    #[test]
    fn curve_is_monotone_for_prefix_hits() {
        let c = precision_curve(&[1, 2, 9], &[1, 2, 3]);
        assert_eq!(c, vec![1.0, 1.0, 2.0 / 3.0]);
    }

    #[test]
    fn kendall_identical_and_reversed() {
        assert_eq!(kendall_tau(&[1, 2, 3, 4], &[1, 2, 3, 4]), Some(1.0));
        assert_eq!(kendall_tau(&[1, 2, 3, 4], &[4, 3, 2, 1]), Some(-1.0));
    }

    #[test]
    fn kendall_partial_overlap() {
        // Shared items {1, 3} in the same relative order.
        assert_eq!(kendall_tau(&[1, 2, 3], &[1, 3, 9]), Some(1.0));
        // Too little overlap.
        assert_eq!(kendall_tau(&[1, 2], &[3, 4]), None);
        assert_eq!(kendall_tau(&[1], &[1]), None);
    }

    #[test]
    fn kendall_single_swap() {
        // One discordant pair of three: tau = (2 - 1) / 3.
        let tau = kendall_tau(&[1, 2, 3], &[2, 1, 3]).unwrap();
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rr() {
        assert_eq!(reciprocal_rank(&[7, 8], &[7, 9]), 1.0);
        assert_eq!(reciprocal_rank(&[7], &[9, 7]), 0.5);
        assert_eq!(reciprocal_rank(&[7], &[1, 2]), 0.0);
        assert_eq!(reciprocal_rank::<u32>(&[], &[1]), 0.0);
    }
}
