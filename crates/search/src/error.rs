//! The one error type of the query route.
//!
//! Everything that can go wrong between a raw request and a
//! [`crate::SearchResponse`] surfaces here as a typed variant instead of a
//! panic: parse failures ([`Error::EmptyQuery`], [`Error::UnknownWords`]),
//! invalid request knobs ([`Error::InvalidRequest`]), planner
//! misconfiguration ([`Error::Planner`]), mutation conflicts
//! ([`Error::Delta`]) and persistence I/O ([`Error::Io`]). `From`
//! conversions from the lower-level error types mean `?` works throughout
//! the engine internals.

use crate::query::ParseError;
use patternkb_graph::mutate::DeltaError;

/// Why a request could not be served. Non-exhaustive: new variants may be
/// added as the serving surface grows.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The query text contained no tokens at all.
    EmptyQuery,
    /// Some keywords never occur in the knowledge base (canonical forms
    /// listed); they can match nothing, so the query has zero answers by
    /// construction.
    UnknownWords(Vec<String>),
    /// The request's knobs are inconsistent (`k = 0`, a sampling rate
    /// outside `(0, 1]`, …). The message names the offending field.
    InvalidRequest(String),
    /// The planner configuration cannot route any query (e.g. exhausted
    /// thresholds with an invalid fallback).
    Planner(String),
    /// A graph mutation was rejected (stale base, unknown node, …).
    Delta(DeltaError),
    /// Persistence (index snapshot save/load) failed.
    Io(std::io::Error),
    /// The write-ahead log could not make an ingest durable (append or
    /// fsync failure). The delta was **not** applied — a write that is
    /// not durable is never made visible.
    Durability(std::io::Error),
    /// A storage-backed (mmap) index stream needed by this query is
    /// damaged: the deferred per-word decode failed with a typed snapshot
    /// error carrying the byte offset of the corruption. The engine
    /// refuses to answer from a partial index rather than silently
    /// treating the word as absent.
    Snapshot(patternkb_graph::snapshot::SnapshotError),
    /// The engine builder was not given a graph source.
    MissingGraph,
    /// The serving handle was closed ([`crate::SharedEngine::close`]);
    /// no new queries are admitted.
    Closed,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyQuery => write!(f, "empty query"),
            Error::UnknownWords(ws) => {
                write!(
                    f,
                    "keywords not found in the knowledge base: {}",
                    ws.join(", ")
                )
            }
            Error::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Error::Planner(msg) => write!(f, "planner misconfigured: {msg}"),
            Error::Delta(e) => write!(f, "graph mutation rejected: {e}"),
            Error::Io(e) => write!(f, "index persistence failed: {e}"),
            Error::Durability(e) => write!(f, "ingest not made durable: {e}"),
            Error::Snapshot(e) => write!(f, "mapped index stream is damaged: {e}"),
            Error::MissingGraph => write!(f, "engine builder needs a graph (EngineBuilder::graph)"),
            Error::Closed => write!(f, "engine is shutting down; no new queries admitted"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Delta(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Durability(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::Empty => Error::EmptyQuery,
            ParseError::UnknownWords(ws) => Error::UnknownWords(ws),
        }
    }
}

impl From<DeltaError> for Error {
    fn from(e: DeltaError) -> Self {
        Error::Delta(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_convert() {
        let e: Error = ParseError::Empty.into();
        assert!(matches!(e, Error::EmptyQuery));
        let e: Error = ParseError::UnknownWords(vec!["zebra".into()]).into();
        match &e {
            Error::UnknownWords(ws) => assert_eq!(ws, &["zebra".to_string()]),
            other => panic!("expected UnknownWords, got {other:?}"),
        }
        assert!(e.to_string().contains("zebra"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Error::EmptyQuery.to_string(), "empty query");
        assert!(Error::Closed.to_string().contains("shutting down"));
        assert!(Error::MissingGraph.to_string().contains("graph"));
        assert!(Error::InvalidRequest("k must be >= 1".into())
            .to_string()
            .contains("k must be >= 1"));
    }
}
