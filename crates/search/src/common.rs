//! Shared machinery of the index-based algorithms: the sharded query
//! context, gallop intersection over sorted root lists, the `EXPANDROOT`
//! subroutine of Algorithm 3, path-tuple products, and the shard-parallel
//! driver.
//!
//! ## The shard layer
//!
//! [`patternkb_index::PathIndexes`] partitions its postings into
//! root-range shards. A [`QueryContext`] mirrors that: it holds one
//! [`ShardContext`] per shard in which **every** keyword has postings
//! (other shards cannot contribute answers — a candidate root must reach
//! all keywords, and a root lives in exactly one shard). Each algorithm
//! runs its single-shard kernel over every shard — in parallel via
//! [`run_sharded`] — and merges the per-shard partial results. Because
//! roots are disjoint across shards and [`crate::score::ScoreAcc`] sums
//! exactly, the merged answers are bit-identical to single-shard
//! execution.
//!
//! ## The flattened data plane
//!
//! Two hot-loop costs of the original engine are gone:
//!
//! * **Intersections gallop.** `R = ∩ᵢ Roots(wᵢ)` and every per-
//!   combination emptiness test run leapfrog intersection over seekable
//!   cursors ([`patternkb_index::cursor`]) instead of binary-searching
//!   each element of the shortest list; `stats.hot.intersect_seeks`
//!   counts the work.
//! * **Pattern keys intern.** [`TreeDict`] keys on a dense
//!   [`PatternKeyId`] from a bump-arena [`KeyInterner`] instead of
//!   hashing a freshly boxed `[u32]` per candidate; groups live in a flat
//!   `Vec` and shard merge is an id remap + vector walk.

use crate::intern::{KeyInterner, PatternKeyId};
use crate::score::ScoreAcc;
use crate::subtree::{node_slices_form_tree, TreePath, ValidSubtree};
use crate::{Query, SearchConfig};
use patternkb_graph::{KnowledgeGraph, NodeId};
use patternkb_index::cursor as pcursor;
use patternkb_index::{PathIndexes, PathPattern, PatternId, Posting, WordPathIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Relaxed shared counters behind `stats.hot` — written from shard
/// workers (hence atomic; contention is negligible at one add per
/// intersection).
#[derive(Debug, Default)]
pub struct HotCounters {
    /// Cursor seeks performed by gallop intersections.
    pub intersect_seeks: AtomicU64,
    /// Posting blocks decoded (compressed-tier cursors only; 0 when the
    /// query is served from the raw index).
    pub blocks_decoded: AtomicU64,
    /// Run blocks the pruned enumerator abandoned without scanning,
    /// because a suffix score bound proved they could not reach the
    /// shared top-k threshold (see
    /// [`crate::SearchConfig::block_skipping`]).
    pub blocks_skipped: AtomicU64,
}

impl HotCounters {
    /// Add `seeks` intersection seeks.
    #[inline]
    pub fn add_seeks(&self, seeks: u64) {
        if seeks > 0 {
            self.intersect_seeks.fetch_add(seeks, Ordering::Relaxed);
        }
    }
}

/// One shard's view of the query: the graph, the indexes, and one
/// [`WordPathIndex`] per keyword, all restricted to the shard's root
/// range. The single-shard algorithm kernels run against this.
pub struct ShardContext<'a> {
    /// The knowledge graph.
    pub g: &'a KnowledgeGraph,
    /// The path indexes (all shards + pattern set).
    pub idx: &'a PathIndexes,
    /// Which index shard this view covers.
    pub shard: usize,
    /// Per-keyword word indexes within the shard, in query order.
    pub words: Vec<&'a WordPathIndex>,
    /// This shard's hot-path counters.
    pub counters: HotCounters,
    /// Memoized local `R = ∩ᵢ Roots(wᵢ)` (roots in this shard's range).
    roots: OnceLock<Vec<NodeId>>,
}

impl<'a> ShardContext<'a> {
    /// Number of keywords `m`.
    pub fn m(&self) -> usize {
        self.words.len()
    }

    /// The shard-local candidate roots `R = ∩ᵢ Roots(wᵢ)`, ascending.
    /// Computed once per context; repeat callers get the memoized slice.
    pub fn candidate_roots(&self) -> &[NodeId] {
        self.roots.get_or_init(|| {
            let lists: Vec<&[u32]> = self.words.iter().map(|w| w.roots()).collect();
            let mut out: Vec<u32> = Vec::new();
            let mut seeks = 0u64;
            pcursor::intersect_sorted_into(&lists, &mut out, Some(&mut seeks));
            self.counters.add_seeks(seeks);
            out.into_iter().map(NodeId).collect()
        })
    }

    /// Intersect sorted lists, ticking this shard's seek counter.
    pub fn intersect_into(&self, lists: &[&[u32]], out: &mut Vec<u32>) {
        let mut seeks = 0u64;
        pcursor::intersect_sorted_into(lists, out, Some(&mut seeks));
        self.counters.add_seeks(seeks);
    }
}

/// Immutable per-query view over the whole sharded index.
pub struct QueryContext<'a> {
    /// The knowledge graph.
    pub g: &'a KnowledgeGraph,
    /// The path indexes (all shards + pattern set).
    pub idx: &'a PathIndexes,
    /// One view per shard where **all** keywords have postings, in shard
    /// (= ascending root range) order. Algorithms fan out over these.
    pub shards: Vec<ShardContext<'a>>,
    /// Context-level hot-path counters (relaxation intersections etc.).
    pub counters: HotCounters,
    /// Number of keywords.
    m: usize,
    /// Per index shard, per keyword: the word's index in that shard, if
    /// any. Superset of `shards` (also covers shards missing some
    /// keyword); used by relaxation, which intersects keyword *subsets*.
    sparse: Vec<Vec<Option<&'a WordPathIndex>>>,
    /// Memoized global `R = ∩ᵢ Roots(wᵢ)`: concatenation of the per-shard
    /// intersections in shard order (ascending, since shards partition the
    /// root space by range).
    roots: OnceLock<Vec<NodeId>>,
}

impl<'a> QueryContext<'a> {
    /// Build the context; `None` when some keyword has no paths in any
    /// shard (the query then provably has zero answers).
    pub fn new(g: &'a KnowledgeGraph, idx: &'a PathIndexes, query: &Query) -> Option<Self> {
        if query.keywords.is_empty() {
            return None;
        }
        for &w in &query.keywords {
            if !idx.has_word(w) {
                return None;
            }
        }
        let m = query.keywords.len();
        let sparse: Vec<Vec<Option<&WordPathIndex>>> = idx
            .shards()
            .iter()
            .map(|shard| query.keywords.iter().map(|&w| shard.word(w)).collect())
            .collect();
        let shards: Vec<ShardContext<'a>> = sparse
            .iter()
            .enumerate()
            .filter(|(_, words)| words.iter().all(Option::is_some))
            .map(|(s, words)| ShardContext {
                g,
                idx,
                shard: s,
                words: words.iter().map(|w| w.expect("filtered")).collect(),
                counters: HotCounters::default(),
                roots: OnceLock::new(),
            })
            .collect();
        Some(QueryContext {
            g,
            idx,
            shards,
            counters: HotCounters::default(),
            m,
            sparse,
            roots: OnceLock::new(),
        })
    }

    /// Number of keywords `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `R = ∩ᵢ Roots(wᵢ)` — line 1 of Algorithm 3 — over the whole index:
    /// the per-shard intersections concatenated in shard order (ascending).
    /// Computed once per context; repeat callers get the memoized slice.
    pub fn candidate_roots(&self) -> &[NodeId] {
        self.roots.get_or_init(|| {
            self.shards
                .iter()
                .flat_map(|s| s.candidate_roots().iter().copied())
                .collect()
        })
    }

    /// The word index of keyword `i` within index shard `s` (which may lack
    /// other keywords — this is the relaxation view).
    pub fn shard_word(&self, s: usize, i: usize) -> Option<&'a WordPathIndex> {
        self.sparse[s][i]
    }

    /// Number of index shards (≥ `self.shards.len()`).
    pub fn num_index_shards(&self) -> usize {
        self.sparse.len()
    }

    /// `|∩_{i ∈ mask} Roots(wᵢ)|` over all shards — the relaxation
    /// primitive. Bits of `mask` select keywords. Counts through gallop
    /// cursors without materializing the intersection.
    pub fn mask_roots(&self, mask: u32) -> usize {
        let selected: Vec<usize> = (0..self.m).filter(|i| mask & (1 << i) != 0).collect();
        if selected.is_empty() {
            return 0;
        }
        let mut seeks = 0u64;
        let mut total = 0usize;
        let mut lists: Vec<&[u32]> = Vec::with_capacity(selected.len());
        'shards: for s in 0..self.sparse.len() {
            lists.clear();
            for &i in &selected {
                match self.sparse[s][i] {
                    Some(w) => lists.push(w.roots()),
                    None => continue 'shards,
                }
            }
            total += pcursor::intersect_count(&lists, Some(&mut seeks));
        }
        self.counters.add_seeks(seeks);
        total
    }

    /// Distinct patterns of keyword `i` across all shards, ascending —
    /// the global `Patterns(wᵢ)` the pattern-first algorithms enumerate.
    pub fn global_patterns(&self, i: usize) -> Vec<PatternId> {
        let mut ids: Vec<u32> = self
            .sparse
            .iter()
            .filter_map(|words| words[i])
            .flat_map(|w| w.patterns().map(|p| p.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(PatternId).collect()
    }

    /// Total postings behind keyword `i` across all shards.
    pub fn keyword_postings(&self, i: usize) -> usize {
        self.sparse
            .iter()
            .filter_map(|words| words[i])
            .map(|w| w.len())
            .sum()
    }

    /// Decode a tree-pattern key (one pattern id per keyword) into
    /// self-contained patterns for the result type.
    pub fn decode_key(&self, key: &[u32]) -> Vec<PathPattern> {
        key.iter()
            .map(|&p| self.idx.patterns().decode(PatternId(p)))
            .collect()
    }

    /// Snapshot of the hot-path counters across the context and all its
    /// shards (the intersection/decode half of [`crate::result::QueryStats::hot`];
    /// callers add the interner half from their merged dictionary).
    pub fn hot_stats(&self) -> crate::result::HotPathStats {
        let mut hot = crate::result::HotPathStats {
            intersect_seeks: self.counters.intersect_seeks.load(Ordering::Relaxed),
            blocks_decoded: self.counters.blocks_decoded.load(Ordering::Relaxed),
            blocks_skipped: self.counters.blocks_skipped.load(Ordering::Relaxed),
            ..Default::default()
        };
        for s in &self.shards {
            hot.intersect_seeks += s.counters.intersect_seeks.load(Ordering::Relaxed);
            hot.blocks_decoded += s.counters.blocks_decoded.load(Ordering::Relaxed);
            hot.blocks_skipped += s.counters.blocks_skipped.load(Ordering::Relaxed);
        }
        hot
    }
}

/// Map `f` over `items` on scoped OS threads, returning results **in
/// input order**. Spawns at most `min(items, available cores)` workers —
/// never one per item — so nested fan-outs (e.g. `respond_batch` over a
/// sharded engine) degrade to chunked work instead of thread explosions.
/// Runs inline for a single item or a single core.
pub fn run_parallel<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len());
    if items.len() <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<T>> = items.iter().map(|_| None).collect();
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk_items, slots) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in chunk_items.iter().zip(slots.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("parallel worker filled its slot"))
        .collect()
}

/// Run `kernel` over every shard view via [`run_parallel`], returning the
/// results **in shard order** — ascending root ranges, which is what makes
/// concatenating per-shard outputs order-identical to a single-shard pass.
pub fn run_sharded<'a, T, F>(shards: &[ShardContext<'a>], kernel: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ShardContext<'a>) -> T + Sync,
{
    run_parallel(shards, kernel)
}

/// Intersect k sorted ascending `u32` slices by leapfrog galloping
/// ([`patternkb_index::cursor`]). Kept as the crate-level convenience;
/// hot paths use [`ShardContext::intersect_into`] so the seek counter
/// feeds `stats.hot`.
pub fn intersect_sorted(lists: &[&[u32]]) -> Vec<u32> {
    pcursor::intersect_sorted(lists)
}

/// A pattern's accumulated answer during enumeration.
#[derive(Clone, Debug, Default)]
pub struct PatternGroup {
    /// Streaming score aggregation over all subtrees (exact sum, so
    /// per-shard groups merge bit-identically).
    pub acc: ScoreAcc,
    /// Materialized subtrees, capped at `SearchConfig::max_rows`.
    pub trees: Vec<ValidSubtree>,
}

impl PatternGroup {
    /// Fold a later shard's group for the same pattern in. `other`'s roots
    /// are all strictly greater (shards ascend by root range), so
    /// appending its trees preserves the single-shard discovery order; the
    /// cap keeps the first `max_rows` exactly as a sequential pass would.
    pub fn merge(&mut self, other: PatternGroup, max_rows: usize) {
        self.acc.merge(&other.acc);
        let room = max_rows.saturating_sub(self.trees.len());
        self.trees.extend(other.trees.into_iter().take(room));
    }

    /// Whether the group holds no evidence (all candidate tuples rejected,
    /// e.g. by strict-tree filtering). Dead groups are skipped by
    /// [`TreeDict`] iteration and merging — the arena keeps their key, but
    /// they never surface as answers.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.acc.count == 0 && self.trees.is_empty()
    }
}

/// The `TreeDict` of Algorithm 3: tree-pattern key (one pattern id per
/// keyword, flattened) → group — keyed by interned [`PatternKeyId`]s, with
/// groups in a flat vector. Replaces the former
/// `FxHashMap<Box<[u32]>, PatternGroup>`: one arena copy per **distinct**
/// pattern instead of one heap allocation per candidate access.
#[derive(Clone, Debug)]
pub struct TreeDict {
    interner: KeyInterner,
    groups: Vec<PatternGroup>,
}

impl TreeDict {
    /// An empty dictionary for keys of `m` pattern ids.
    pub fn new(m: usize) -> Self {
        TreeDict {
            interner: KeyInterner::new(m),
            groups: Vec::new(),
        }
    }

    /// Intern `key` and return its dense id (allocating an empty group for
    /// fresh keys).
    #[inline]
    pub fn intern(&mut self, key: &[u32]) -> PatternKeyId {
        let (id, fresh) = self.interner.intern_full(key);
        if fresh {
            self.groups.push(PatternGroup::default());
        }
        id
    }

    /// The group of `key`, interning it first.
    #[inline]
    pub fn group_mut(&mut self, key: &[u32]) -> &mut PatternGroup {
        let id = self.intern(key);
        &mut self.groups[id.0 as usize]
    }

    /// The group of an interned id.
    #[inline]
    pub fn group(&self, id: PatternKeyId) -> &PatternGroup {
        &self.groups[id.0 as usize]
    }

    /// Mutable group of an interned id.
    #[inline]
    pub fn group_by_id_mut(&mut self, id: PatternKeyId) -> &mut PatternGroup {
        &mut self.groups[id.0 as usize]
    }

    /// The key of an interned id.
    #[inline]
    pub fn key(&self, id: PatternKeyId) -> &[u32] {
        self.interner.key(id)
    }

    /// Drop `key`'s accumulated evidence (used by the pruned merge: a
    /// combination pruned in any shard is provably outside the top-k).
    pub fn kill(&mut self, key: &[u32]) {
        if let Some(id) = self.interner.get(key) {
            self.groups[id.0 as usize] = PatternGroup::default();
        }
    }

    /// Fold `group` into `key`'s entry.
    pub fn fold(&mut self, key: &[u32], group: PatternGroup, max_rows: usize) {
        self.group_mut(key).merge(group, max_rows);
    }

    /// Number of **live** (non-dead) groups.
    pub fn len(&self) -> usize {
        self.groups.iter().filter(|g| !g.is_dead()).count()
    }

    /// Whether no live group exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct keys interned (live or dead) — the alloc observability
    /// counter.
    pub fn keys_interned(&self) -> usize {
        self.interner.len()
    }

    /// Bytes held by the key arena.
    pub fn arena_bytes(&self) -> usize {
        self.interner.arena_bytes()
    }

    /// Iterate `(id, key, group)` over live groups in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (PatternKeyId, &[u32], &PatternGroup)> {
        self.interner
            .iter()
            .zip(&self.groups)
            .filter(|(_, g)| !g.is_dead())
            .map(|((id, key), g)| (id, key, g))
    }

    /// Consume into `(key, group)` pairs for live groups, in interning
    /// order.
    pub fn drain_live(self, mut f: impl FnMut(&[u32], PatternGroup)) {
        let TreeDict { interner, groups } = self;
        for ((_, key), group) in interner.iter().zip(groups) {
            if !group.is_dead() {
                f(key, group);
            }
        }
    }
}

/// Merge per-shard tree dictionaries (in shard order) into one: re-intern
/// each shard's **distinct** keys into the first dictionary (id remap),
/// then merge groups by index — no per-posting rehash. The result is
/// identical to what a single-shard pass over the concatenated root
/// sequence would have produced: exact-sum accumulators merge exactly and
/// tree rows concatenate in root order.
pub fn merge_shard_dicts(dicts: Vec<TreeDict>, m: usize, max_rows: usize) -> TreeDict {
    let mut iter = dicts.into_iter();
    let Some(mut merged) = iter.next() else {
        return TreeDict::new(m);
    };
    for dict in iter {
        dict.drain_live(|key, group| merged.fold(key, group, max_rows));
    }
    merged
}

/// Iterate the cartesian product of posting slices, calling `f` with one
/// posting per keyword. Never allocates per tuple.
///
/// Returns the number of tuples visited.
pub fn for_each_path_tuple<'p>(
    slices: &[&'p [Posting]],
    scratch: &mut Vec<&'p Posting>,
    mut f: impl FnMut(&[&'p Posting]),
) -> usize {
    debug_assert!(!slices.is_empty());
    if slices.iter().any(|s| s.is_empty()) {
        return 0;
    }
    let m = slices.len();
    // Odometer digits on the stack — this runs once per (combination,
    // root) and must not allocate. Queries beyond 16 keywords fall back
    // to the heap (the paper's workloads stop at 10).
    let mut small = [0usize; 16];
    let mut big: Vec<usize>;
    let idx: &mut [usize] = if m <= 16 {
        &mut small[..m]
    } else {
        big = vec![0usize; m];
        &mut big
    };
    scratch.clear();
    for s in slices {
        scratch.push(&s[0]);
    }
    let mut count = 0;
    loop {
        f(scratch);
        count += 1;
        // Odometer increment.
        let mut pos = m;
        loop {
            if pos == 0 {
                return count;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < slices[pos].len() {
                scratch[pos] = &slices[pos][idx[pos]];
                break;
            }
            idx[pos] = 0;
            scratch[pos] = &slices[pos][0];
        }
    }
}

/// Materialize a [`ValidSubtree`] from the chosen postings.
pub fn materialize_tree(
    words: &[&WordPathIndex],
    root: NodeId,
    postings: &[&Posting],
    score: f64,
) -> ValidSubtree {
    let paths = postings
        .iter()
        .enumerate()
        .map(|(i, p)| TreePath {
            nodes: words[i].nodes_of(p).to_vec(),
            edge_terminal: p.edge_terminal,
        })
        .collect();
    ValidSubtree { root, paths, score }
}

/// The `EXPANDROOT(r, TreeDict)` subroutine of Algorithm 3: enumerate the
/// pattern product `Patterns(w1, r) × … × Patterns(wm, r)` and, within each
/// tree pattern, the path product, folding every valid subtree into `dict`.
///
/// Returns the number of subtrees enumerated under this root.
pub fn expand_root(
    ctx: &ShardContext<'_>,
    cfg: &SearchConfig,
    r: NodeId,
    dict: &mut TreeDict,
) -> usize {
    let m = ctx.m();
    // Per-keyword (pattern, paths) runs under this root.
    let runs: Vec<Vec<(PatternId, &[Posting])>> =
        ctx.words.iter().map(|w| w.root_runs(r).collect()).collect();
    debug_assert!(
        runs.iter().all(|r| !r.is_empty()),
        "candidate roots reach every keyword"
    );
    if runs.iter().any(|r| r.is_empty()) {
        return 0;
    }

    let mut key: Vec<u32> = vec![0; m];
    let mut combo = vec![0usize; m];
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    let mut total = 0usize;

    // Pattern product (line 7).
    loop {
        slices.clear();
        for i in 0..m {
            let (pat, paths) = runs[i][combo[i]];
            key[i] = pat.0;
            slices.push(paths);
        }
        let group = dict.group_mut(&key);
        // Path product (line 9).
        total += for_each_path_tuple(&slices, &mut scratch, |tuple| {
            if cfg.strict_trees {
                node_scratch.clear();
                for (i, p) in tuple.iter().enumerate() {
                    node_scratch.push(ctx.words[i].nodes_of(p));
                }
                if !node_slices_form_tree(r, &node_scratch) {
                    return;
                }
            }
            let score = cfg.scoring.tree_score_of(tuple);
            group.acc.push(score);
            if group.trees.len() < cfg.max_rows {
                group
                    .trees
                    .push(materialize_tree(&ctx.words, r, tuple, score));
            }
        });
        // Strict mode may have rejected every tuple; the group then stays
        // dead and is skipped by iteration/merge.

        // Odometer over pattern combos.
        let mut pos = m;
        loop {
            if pos == 0 {
                return total;
            }
            pos -= 1;
            combo[pos] += 1;
            if combo[pos] < runs[pos].len() {
                break;
            }
            combo[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 5, 8];
        let c = [3u32, 5, 9];
        assert_eq!(intersect_sorted(&[&a, &b, &c]), vec![3, 5]);
    }

    #[test]
    fn intersect_empty_cases() {
        let a = [1u32, 2];
        let empty: [u32; 0] = [];
        assert!(intersect_sorted(&[&a, &empty]).is_empty());
        assert!(intersect_sorted(&[]).is_empty());
        assert_eq!(intersect_sorted(&[&a]), vec![1, 2]);
    }

    #[test]
    fn tuple_product_counts() {
        let p = |pat: u32| Posting {
            pattern: PatternId(pat),
            root: NodeId(0),
            nodes_start: 0,
            nodes_len: 1,
            edge_terminal: false,
            pagerank: 1.0,
            sim: 1.0,
        };
        let a = [p(1), p(2)];
        let b = [p(3), p(4), p(5)];
        let mut seen = Vec::new();
        let mut scratch = Vec::new();
        let n = for_each_path_tuple(&[&a, &b], &mut scratch, |t| {
            seen.push((t[0].pattern.0, t[1].pattern.0));
        });
        assert_eq!(n, 6);
        assert_eq!(seen.len(), 6);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "all tuples distinct");
    }

    #[test]
    fn tuple_product_empty_slice() {
        let a: [Posting; 0] = [];
        let mut scratch = Vec::new();
        let n = for_each_path_tuple(&[&a], &mut scratch, |_| panic!("no tuples"));
        assert_eq!(n, 0);
    }

    #[test]
    fn pattern_group_merge_caps_rows() {
        let tree = |root: u32| ValidSubtree {
            root: NodeId(root),
            paths: vec![],
            score: 1.0,
        };
        let mut a = PatternGroup::default();
        a.acc.push(1.0);
        a.trees.push(tree(0));
        let mut b = PatternGroup::default();
        b.acc.push(2.0);
        b.trees.push(tree(5));
        b.trees.push(tree(6));
        a.merge(b, 2);
        assert_eq!(a.acc.count, 2);
        assert_eq!(a.trees.len(), 2);
        assert_eq!(a.trees[1].root, NodeId(5), "shard order preserved");
    }

    #[test]
    fn tree_dict_interns_and_iterates_live_only() {
        let mut d = TreeDict::new(2);
        d.group_mut(&[1, 2]).acc.push(1.5);
        d.intern(&[3, 4]); // stays dead — never iterated
        d.group_mut(&[1, 2]).acc.push(0.5);
        assert_eq!(d.keys_interned(), 2);
        assert_eq!(d.len(), 1);
        let live: Vec<Vec<u32>> = d.iter().map(|(_, k, _)| k.to_vec()).collect();
        assert_eq!(live, vec![vec![1, 2]]);
        let id = d.intern(&[1, 2]);
        assert_eq!(d.group(id).acc.count, 2);
        d.kill(&[1, 2]);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn merge_shard_dicts_combines_groups() {
        let key = [1u32, 2];
        let mut d1 = TreeDict::new(2);
        d1.group_mut(&key).acc.push(1.5);
        let mut d2 = TreeDict::new(2);
        d2.group_mut(&key).acc.push(2.5);
        let other = [9u32, 9];
        d2.group_mut(&other).acc.push(0.5);

        let merged = merge_shard_dicts(vec![d1, d2], 2, 64);
        assert_eq!(merged.len(), 2);
        let id = merged.interner.get(&key).expect("merged key");
        assert_eq!(merged.group(id).acc.count, 2);
        assert_eq!(merged.group(id).acc.sum(), 4.0);
        let oid = merged.interner.get(&other).expect("other key");
        assert_eq!(merged.group(oid).acc.count, 1);
        assert!(merge_shard_dicts(vec![], 2, 4).is_empty());
    }
}
