//! Shared machinery of the three index-based algorithms: the query
//! context, sorted-list intersection, the `EXPANDROOT` subroutine of
//! Algorithm 3, and path-tuple products.

use crate::score::ScoreAcc;
use crate::subtree::{node_slices_form_tree, TreePath, ValidSubtree};
use crate::{Query, SearchConfig};
use patternkb_graph::{FxHashMap, KnowledgeGraph, NodeId};
use patternkb_index::{PathIndexes, PathPattern, PatternId, Posting, WordPathIndex};

/// Immutable per-query view: the graph, the indexes, and one
/// [`WordPathIndex`] per keyword.
pub struct QueryContext<'a> {
    /// The knowledge graph.
    pub g: &'a KnowledgeGraph,
    /// The path indexes (both orders + pattern set).
    pub idx: &'a PathIndexes,
    /// Per-keyword word indexes, in query order.
    pub words: Vec<&'a WordPathIndex>,
    /// Memoized `R = ∩ᵢ Roots(wᵢ)`: the planner and the chosen algorithm
    /// share one context on the respond route, so the sorted-list
    /// intersection runs once per query, not once per consumer.
    roots: std::cell::OnceCell<Vec<NodeId>>,
}

impl<'a> QueryContext<'a> {
    /// Build the context; `None` when some keyword has no paths at all (the
    /// query then provably has zero answers).
    pub fn new(g: &'a KnowledgeGraph, idx: &'a PathIndexes, query: &Query) -> Option<Self> {
        let mut words = Vec::with_capacity(query.keywords.len());
        for &w in &query.keywords {
            words.push(idx.word(w)?);
        }
        if words.is_empty() {
            return None;
        }
        Some(QueryContext {
            g,
            idx,
            words,
            roots: std::cell::OnceCell::new(),
        })
    }

    /// Number of keywords `m`.
    pub fn m(&self) -> usize {
        self.words.len()
    }

    /// `R = ∩ᵢ Roots(wᵢ)` — line 1 of Algorithm 3. Computed once per
    /// context; repeat callers get a copy of the memoized set.
    pub fn candidate_roots(&self) -> Vec<NodeId> {
        self.roots
            .get_or_init(|| {
                let lists: Vec<&[u32]> = self.words.iter().map(|w| w.roots()).collect();
                intersect_sorted(&lists).into_iter().map(NodeId).collect()
            })
            .clone()
    }

    /// Decode a tree-pattern key (one pattern id per keyword) into
    /// self-contained patterns for the result type.
    pub fn decode_key(&self, key: &[u32]) -> Vec<PathPattern> {
        key.iter()
            .map(|&p| self.idx.patterns().decode(PatternId(p)))
            .collect()
    }
}

/// Intersect k sorted ascending `u32` slices. Starts from the shortest list
/// and galloping-checks membership in the others, so the cost is near
/// `O(min_len · k · log)`.
pub fn intersect_sorted(lists: &[&[u32]]) -> Vec<u32> {
    if lists.is_empty() {
        return Vec::new();
    }
    let shortest = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty lists");
    let mut out = Vec::with_capacity(lists[shortest].len());
    'outer: for &x in lists[shortest] {
        for (i, l) in lists.iter().enumerate() {
            if i != shortest && l.binary_search(&x).is_err() {
                continue 'outer;
            }
        }
        out.push(x);
    }
    out
}

/// A pattern's accumulated answer during enumeration.
#[derive(Clone, Debug, Default)]
pub struct PatternGroup {
    /// Streaming score aggregation over all subtrees.
    pub acc: ScoreAcc,
    /// Materialized subtrees, capped at `SearchConfig::max_rows`.
    pub trees: Vec<ValidSubtree>,
}

/// The `TreeDict` of Algorithm 3: tree-pattern key (one pattern id per
/// keyword, flattened) → group.
pub type TreeDict = FxHashMap<Box<[u32]>, PatternGroup>;

/// Iterate the cartesian product of posting slices, calling `f` with one
/// posting per keyword. Never allocates per tuple.
///
/// Returns the number of tuples visited.
pub fn for_each_path_tuple<'p>(
    slices: &[&'p [Posting]],
    scratch: &mut Vec<&'p Posting>,
    mut f: impl FnMut(&[&'p Posting]),
) -> usize {
    debug_assert!(!slices.is_empty());
    if slices.iter().any(|s| s.is_empty()) {
        return 0;
    }
    let m = slices.len();
    let mut idx = vec![0usize; m];
    scratch.clear();
    for s in slices {
        scratch.push(&s[0]);
    }
    let mut count = 0;
    loop {
        f(scratch);
        count += 1;
        // Odometer increment.
        let mut pos = m;
        loop {
            if pos == 0 {
                return count;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < slices[pos].len() {
                scratch[pos] = &slices[pos][idx[pos]];
                break;
            }
            idx[pos] = 0;
            scratch[pos] = &slices[pos][0];
        }
    }
}

/// Materialize a [`ValidSubtree`] from the chosen postings.
pub fn materialize_tree(
    words: &[&WordPathIndex],
    root: NodeId,
    postings: &[&Posting],
    score: f64,
) -> ValidSubtree {
    let paths = postings
        .iter()
        .enumerate()
        .map(|(i, p)| TreePath {
            nodes: words[i].nodes_of(p).to_vec(),
            edge_terminal: p.edge_terminal,
        })
        .collect();
    ValidSubtree { root, paths, score }
}

/// The `EXPANDROOT(r, TreeDict)` subroutine of Algorithm 3: enumerate the
/// pattern product `Patterns(w1, r) × … × Patterns(wm, r)` and, within each
/// tree pattern, the path product, folding every valid subtree into `dict`.
///
/// Returns the number of subtrees enumerated under this root.
pub fn expand_root(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    r: NodeId,
    dict: &mut TreeDict,
) -> usize {
    let m = ctx.m();
    // Per-keyword (pattern, paths) runs under this root.
    let runs: Vec<Vec<(PatternId, &[Posting])>> =
        ctx.words.iter().map(|w| w.root_runs(r).collect()).collect();
    debug_assert!(
        runs.iter().all(|r| !r.is_empty()),
        "candidate roots reach every keyword"
    );
    if runs.iter().any(|r| r.is_empty()) {
        return 0;
    }

    let mut key: Vec<u32> = vec![0; m];
    let mut combo = vec![0usize; m];
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    let mut total = 0usize;

    // Pattern product (line 7).
    loop {
        slices.clear();
        for i in 0..m {
            let (pat, paths) = runs[i][combo[i]];
            key[i] = pat.0;
            slices.push(paths);
        }
        let group = dict.entry(key.as_slice().into()).or_default();
        // Path product (line 9).
        total += for_each_path_tuple(&slices, &mut scratch, |tuple| {
            if cfg.strict_trees {
                node_scratch.clear();
                for (i, p) in tuple.iter().enumerate() {
                    node_scratch.push(ctx.words[i].nodes_of(p));
                }
                if !node_slices_form_tree(r, &node_scratch) {
                    return;
                }
            }
            let score = cfg.scoring.tree_score_of(tuple);
            group.acc.push(score);
            if group.trees.len() < cfg.max_rows {
                group
                    .trees
                    .push(materialize_tree(&ctx.words, r, tuple, score));
            }
        });
        if group.acc.count == 0 && group.trees.is_empty() {
            // Strict mode may have rejected every tuple; drop empty groups.
            dict.remove(key.as_slice());
        }

        // Odometer over pattern combos.
        let mut pos = m;
        loop {
            if pos == 0 {
                return total;
            }
            pos -= 1;
            combo[pos] += 1;
            if combo[pos] < runs[pos].len() {
                break;
            }
            combo[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 5, 8];
        let c = [3u32, 5, 9];
        assert_eq!(intersect_sorted(&[&a, &b, &c]), vec![3, 5]);
    }

    #[test]
    fn intersect_empty_cases() {
        let a = [1u32, 2];
        let empty: [u32; 0] = [];
        assert!(intersect_sorted(&[&a, &empty]).is_empty());
        assert!(intersect_sorted(&[]).is_empty());
        assert_eq!(intersect_sorted(&[&a]), vec![1, 2]);
    }

    #[test]
    fn tuple_product_counts() {
        let p = |pat: u32| Posting {
            pattern: PatternId(pat),
            root: NodeId(0),
            nodes_start: 0,
            nodes_len: 1,
            edge_terminal: false,
            pagerank: 1.0,
            sim: 1.0,
        };
        let a = [p(1), p(2)];
        let b = [p(3), p(4), p(5)];
        let mut seen = Vec::new();
        let mut scratch = Vec::new();
        let n = for_each_path_tuple(&[&a, &b], &mut scratch, |t| {
            seen.push((t[0].pattern.0, t[1].pattern.0));
        });
        assert_eq!(n, 6);
        assert_eq!(seen.len(), 6);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "all tuples distinct");
    }

    #[test]
    fn tuple_product_empty_slice() {
        let a: [Posting; 0] = [];
        let mut scratch = Vec::new();
        let n = for_each_path_tuple(&[&a], &mut scratch, |_| panic!("no tuples"));
        assert_eq!(n, 0);
    }
}
