//! Shared machinery of the index-based algorithms: the sharded query
//! context, sorted-list intersection, the `EXPANDROOT` subroutine of
//! Algorithm 3, path-tuple products, and the shard-parallel driver.
//!
//! ## The shard layer
//!
//! [`patternkb_index::PathIndexes`] partitions its postings into
//! root-range shards. A [`QueryContext`] mirrors that: it holds one
//! [`ShardContext`] per shard in which **every** keyword has postings
//! (other shards cannot contribute answers — a candidate root must reach
//! all keywords, and a root lives in exactly one shard). Each algorithm
//! runs its single-shard kernel over every shard — in parallel via
//! [`run_sharded`] — and merges the per-shard partial results. Because
//! roots are disjoint across shards and [`crate::score::ScoreAcc`] sums
//! exactly, the merged answers are bit-identical to single-shard
//! execution.

use crate::score::ScoreAcc;
use crate::subtree::{node_slices_form_tree, TreePath, ValidSubtree};
use crate::{Query, SearchConfig};
use patternkb_graph::{FxHashMap, KnowledgeGraph, NodeId};
use patternkb_index::{PathIndexes, PathPattern, PatternId, Posting, WordPathIndex};
use std::sync::OnceLock;

/// One shard's view of the query: the graph, the indexes, and one
/// [`WordPathIndex`] per keyword, all restricted to the shard's root
/// range. The single-shard algorithm kernels run against this.
pub struct ShardContext<'a> {
    /// The knowledge graph.
    pub g: &'a KnowledgeGraph,
    /// The path indexes (all shards + pattern set).
    pub idx: &'a PathIndexes,
    /// Which index shard this view covers.
    pub shard: usize,
    /// Per-keyword word indexes within the shard, in query order.
    pub words: Vec<&'a WordPathIndex>,
    /// Memoized local `R = ∩ᵢ Roots(wᵢ)` (roots in this shard's range).
    roots: OnceLock<Vec<NodeId>>,
}

impl<'a> ShardContext<'a> {
    /// Number of keywords `m`.
    pub fn m(&self) -> usize {
        self.words.len()
    }

    /// The shard-local candidate roots `R = ∩ᵢ Roots(wᵢ)`, ascending.
    /// Computed once per context; repeat callers get the memoized slice.
    pub fn candidate_roots(&self) -> &[NodeId] {
        self.roots.get_or_init(|| {
            let lists: Vec<&[u32]> = self.words.iter().map(|w| w.roots()).collect();
            intersect_sorted(&lists).into_iter().map(NodeId).collect()
        })
    }
}

/// Immutable per-query view over the whole sharded index.
pub struct QueryContext<'a> {
    /// The knowledge graph.
    pub g: &'a KnowledgeGraph,
    /// The path indexes (all shards + pattern set).
    pub idx: &'a PathIndexes,
    /// One view per shard where **all** keywords have postings, in shard
    /// (= ascending root range) order. Algorithms fan out over these.
    pub shards: Vec<ShardContext<'a>>,
    /// Number of keywords.
    m: usize,
    /// Per index shard, per keyword: the word's index in that shard, if
    /// any. Superset of `shards` (also covers shards missing some
    /// keyword); used by relaxation, which intersects keyword *subsets*.
    sparse: Vec<Vec<Option<&'a WordPathIndex>>>,
    /// Memoized global `R = ∩ᵢ Roots(wᵢ)`: concatenation of the per-shard
    /// intersections in shard order (ascending, since shards partition the
    /// root space by range).
    roots: OnceLock<Vec<NodeId>>,
}

impl<'a> QueryContext<'a> {
    /// Build the context; `None` when some keyword has no paths in any
    /// shard (the query then provably has zero answers).
    pub fn new(g: &'a KnowledgeGraph, idx: &'a PathIndexes, query: &Query) -> Option<Self> {
        if query.keywords.is_empty() {
            return None;
        }
        for &w in &query.keywords {
            if !idx.has_word(w) {
                return None;
            }
        }
        let m = query.keywords.len();
        let sparse: Vec<Vec<Option<&WordPathIndex>>> = idx
            .shards()
            .iter()
            .map(|shard| query.keywords.iter().map(|&w| shard.word(w)).collect())
            .collect();
        let shards: Vec<ShardContext<'a>> = sparse
            .iter()
            .enumerate()
            .filter(|(_, words)| words.iter().all(Option::is_some))
            .map(|(s, words)| ShardContext {
                g,
                idx,
                shard: s,
                words: words.iter().map(|w| w.expect("filtered")).collect(),
                roots: OnceLock::new(),
            })
            .collect();
        Some(QueryContext {
            g,
            idx,
            shards,
            m,
            sparse,
            roots: OnceLock::new(),
        })
    }

    /// Number of keywords `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `R = ∩ᵢ Roots(wᵢ)` — line 1 of Algorithm 3 — over the whole index:
    /// the per-shard intersections concatenated in shard order (ascending).
    /// Computed once per context; repeat callers get a copy.
    pub fn candidate_roots(&self) -> Vec<NodeId> {
        self.roots
            .get_or_init(|| {
                self.shards
                    .iter()
                    .flat_map(|s| s.candidate_roots().iter().copied())
                    .collect()
            })
            .clone()
    }

    /// The word index of keyword `i` within index shard `s` (which may lack
    /// other keywords — this is the relaxation view).
    pub fn shard_word(&self, s: usize, i: usize) -> Option<&'a WordPathIndex> {
        self.sparse[s][i]
    }

    /// Number of index shards (≥ `self.shards.len()`).
    pub fn num_index_shards(&self) -> usize {
        self.sparse.len()
    }

    /// `|∩_{i ∈ mask} Roots(wᵢ)|` over all shards — the relaxation
    /// primitive. Bits of `mask` select keywords.
    pub fn mask_roots(&self, mask: u32) -> usize {
        let selected: Vec<usize> = (0..self.m).filter(|i| mask & (1 << i) != 0).collect();
        if selected.is_empty() {
            return 0;
        }
        let mut total = 0usize;
        'shards: for s in 0..self.sparse.len() {
            let mut lists: Vec<&[u32]> = Vec::with_capacity(selected.len());
            for &i in &selected {
                match self.sparse[s][i] {
                    Some(w) => lists.push(w.roots()),
                    None => continue 'shards,
                }
            }
            total += intersect_sorted(&lists).len();
        }
        total
    }

    /// Distinct patterns of keyword `i` across all shards, ascending —
    /// the global `Patterns(wᵢ)` the pattern-first algorithms enumerate.
    pub fn global_patterns(&self, i: usize) -> Vec<PatternId> {
        let mut ids: Vec<u32> = self
            .sparse
            .iter()
            .filter_map(|words| words[i])
            .flat_map(|w| w.patterns().map(|p| p.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(PatternId).collect()
    }

    /// Total postings behind keyword `i` across all shards.
    pub fn keyword_postings(&self, i: usize) -> usize {
        self.sparse
            .iter()
            .filter_map(|words| words[i])
            .map(|w| w.len())
            .sum()
    }

    /// Decode a tree-pattern key (one pattern id per keyword) into
    /// self-contained patterns for the result type.
    pub fn decode_key(&self, key: &[u32]) -> Vec<PathPattern> {
        key.iter()
            .map(|&p| self.idx.patterns().decode(PatternId(p)))
            .collect()
    }
}

/// Map `f` over `items` on scoped OS threads, returning results **in
/// input order**. Spawns at most `min(items, available cores)` workers —
/// never one per item — so nested fan-outs (e.g. `respond_batch` over a
/// sharded engine) degrade to chunked work instead of thread explosions.
/// Runs inline for a single item or a single core.
pub fn run_parallel<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len());
    if items.len() <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<T>> = items.iter().map(|_| None).collect();
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk_items, slots) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in chunk_items.iter().zip(slots.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("parallel worker filled its slot"))
        .collect()
}

/// Run `kernel` over every shard view via [`run_parallel`], returning the
/// results **in shard order** — ascending root ranges, which is what makes
/// concatenating per-shard outputs order-identical to a single-shard pass.
pub fn run_sharded<'a, T, F>(shards: &[ShardContext<'a>], kernel: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ShardContext<'a>) -> T + Sync,
{
    run_parallel(shards, kernel)
}

/// Intersect k sorted ascending `u32` slices. Starts from the shortest list
/// and galloping-checks membership in the others, so the cost is near
/// `O(min_len · k · log)`.
pub fn intersect_sorted(lists: &[&[u32]]) -> Vec<u32> {
    if lists.is_empty() {
        return Vec::new();
    }
    let shortest = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty lists");
    let mut out = Vec::with_capacity(lists[shortest].len());
    'outer: for &x in lists[shortest] {
        for (i, l) in lists.iter().enumerate() {
            if i != shortest && l.binary_search(&x).is_err() {
                continue 'outer;
            }
        }
        out.push(x);
    }
    out
}

/// A pattern's accumulated answer during enumeration.
#[derive(Clone, Debug, Default)]
pub struct PatternGroup {
    /// Streaming score aggregation over all subtrees (exact sum, so
    /// per-shard groups merge bit-identically).
    pub acc: ScoreAcc,
    /// Materialized subtrees, capped at `SearchConfig::max_rows`.
    pub trees: Vec<ValidSubtree>,
}

impl PatternGroup {
    /// Fold a later shard's group for the same pattern in. `other`'s roots
    /// are all strictly greater (shards ascend by root range), so
    /// appending its trees preserves the single-shard discovery order; the
    /// cap keeps the first `max_rows` exactly as a sequential pass would.
    pub fn merge(&mut self, other: PatternGroup, max_rows: usize) {
        self.acc.merge(&other.acc);
        let room = max_rows.saturating_sub(self.trees.len());
        self.trees.extend(other.trees.into_iter().take(room));
    }
}

/// The `TreeDict` of Algorithm 3: tree-pattern key (one pattern id per
/// keyword, flattened) → group.
pub type TreeDict = FxHashMap<Box<[u32]>, PatternGroup>;

/// Merge per-shard tree dictionaries (in shard order) into one. The result
/// is identical to what a single-shard pass over the concatenated root
/// sequence would have produced: exact-sum accumulators merge exactly and
/// tree rows concatenate in root order.
pub fn merge_shard_dicts(dicts: Vec<TreeDict>, max_rows: usize) -> TreeDict {
    let mut iter = dicts.into_iter();
    let Some(mut merged) = iter.next() else {
        return TreeDict::default();
    };
    for dict in iter {
        for (key, group) in dict {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(group, max_rows);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(group);
                }
            }
        }
    }
    merged
}

/// Iterate the cartesian product of posting slices, calling `f` with one
/// posting per keyword. Never allocates per tuple.
///
/// Returns the number of tuples visited.
pub fn for_each_path_tuple<'p>(
    slices: &[&'p [Posting]],
    scratch: &mut Vec<&'p Posting>,
    mut f: impl FnMut(&[&'p Posting]),
) -> usize {
    debug_assert!(!slices.is_empty());
    if slices.iter().any(|s| s.is_empty()) {
        return 0;
    }
    let m = slices.len();
    let mut idx = vec![0usize; m];
    scratch.clear();
    for s in slices {
        scratch.push(&s[0]);
    }
    let mut count = 0;
    loop {
        f(scratch);
        count += 1;
        // Odometer increment.
        let mut pos = m;
        loop {
            if pos == 0 {
                return count;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < slices[pos].len() {
                scratch[pos] = &slices[pos][idx[pos]];
                break;
            }
            idx[pos] = 0;
            scratch[pos] = &slices[pos][0];
        }
    }
}

/// Materialize a [`ValidSubtree`] from the chosen postings.
pub fn materialize_tree(
    words: &[&WordPathIndex],
    root: NodeId,
    postings: &[&Posting],
    score: f64,
) -> ValidSubtree {
    let paths = postings
        .iter()
        .enumerate()
        .map(|(i, p)| TreePath {
            nodes: words[i].nodes_of(p).to_vec(),
            edge_terminal: p.edge_terminal,
        })
        .collect();
    ValidSubtree { root, paths, score }
}

/// The `EXPANDROOT(r, TreeDict)` subroutine of Algorithm 3: enumerate the
/// pattern product `Patterns(w1, r) × … × Patterns(wm, r)` and, within each
/// tree pattern, the path product, folding every valid subtree into `dict`.
///
/// Returns the number of subtrees enumerated under this root.
pub fn expand_root(
    ctx: &ShardContext<'_>,
    cfg: &SearchConfig,
    r: NodeId,
    dict: &mut TreeDict,
) -> usize {
    let m = ctx.m();
    // Per-keyword (pattern, paths) runs under this root.
    let runs: Vec<Vec<(PatternId, &[Posting])>> =
        ctx.words.iter().map(|w| w.root_runs(r).collect()).collect();
    debug_assert!(
        runs.iter().all(|r| !r.is_empty()),
        "candidate roots reach every keyword"
    );
    if runs.iter().any(|r| r.is_empty()) {
        return 0;
    }

    let mut key: Vec<u32> = vec![0; m];
    let mut combo = vec![0usize; m];
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    let mut total = 0usize;

    // Pattern product (line 7).
    loop {
        slices.clear();
        for i in 0..m {
            let (pat, paths) = runs[i][combo[i]];
            key[i] = pat.0;
            slices.push(paths);
        }
        let group = dict.entry(key.as_slice().into()).or_default();
        // Path product (line 9).
        total += for_each_path_tuple(&slices, &mut scratch, |tuple| {
            if cfg.strict_trees {
                node_scratch.clear();
                for (i, p) in tuple.iter().enumerate() {
                    node_scratch.push(ctx.words[i].nodes_of(p));
                }
                if !node_slices_form_tree(r, &node_scratch) {
                    return;
                }
            }
            let score = cfg.scoring.tree_score_of(tuple);
            group.acc.push(score);
            if group.trees.len() < cfg.max_rows {
                group
                    .trees
                    .push(materialize_tree(&ctx.words, r, tuple, score));
            }
        });
        if group.acc.count == 0 && group.trees.is_empty() {
            // Strict mode may have rejected every tuple; drop empty groups.
            dict.remove(key.as_slice());
        }

        // Odometer over pattern combos.
        let mut pos = m;
        loop {
            if pos == 0 {
                return total;
            }
            pos -= 1;
            combo[pos] += 1;
            if combo[pos] < runs[pos].len() {
                break;
            }
            combo[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 5, 8];
        let c = [3u32, 5, 9];
        assert_eq!(intersect_sorted(&[&a, &b, &c]), vec![3, 5]);
    }

    #[test]
    fn intersect_empty_cases() {
        let a = [1u32, 2];
        let empty: [u32; 0] = [];
        assert!(intersect_sorted(&[&a, &empty]).is_empty());
        assert!(intersect_sorted(&[]).is_empty());
        assert_eq!(intersect_sorted(&[&a]), vec![1, 2]);
    }

    #[test]
    fn tuple_product_counts() {
        let p = |pat: u32| Posting {
            pattern: PatternId(pat),
            root: NodeId(0),
            nodes_start: 0,
            nodes_len: 1,
            edge_terminal: false,
            pagerank: 1.0,
            sim: 1.0,
        };
        let a = [p(1), p(2)];
        let b = [p(3), p(4), p(5)];
        let mut seen = Vec::new();
        let mut scratch = Vec::new();
        let n = for_each_path_tuple(&[&a, &b], &mut scratch, |t| {
            seen.push((t[0].pattern.0, t[1].pattern.0));
        });
        assert_eq!(n, 6);
        assert_eq!(seen.len(), 6);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "all tuples distinct");
    }

    #[test]
    fn tuple_product_empty_slice() {
        let a: [Posting; 0] = [];
        let mut scratch = Vec::new();
        let n = for_each_path_tuple(&[&a], &mut scratch, |_| panic!("no tuples"));
        assert_eq!(n, 0);
    }

    #[test]
    fn pattern_group_merge_caps_rows() {
        let tree = |root: u32| ValidSubtree {
            root: NodeId(root),
            paths: vec![],
            score: 1.0,
        };
        let mut a = PatternGroup::default();
        a.acc.push(1.0);
        a.trees.push(tree(0));
        let mut b = PatternGroup::default();
        b.acc.push(2.0);
        b.trees.push(tree(5));
        b.trees.push(tree(6));
        a.merge(b, 2);
        assert_eq!(a.acc.count, 2);
        assert_eq!(a.trees.len(), 2);
        assert_eq!(a.trees[1].root, NodeId(5), "shard order preserved");
    }

    #[test]
    fn merge_shard_dicts_combines_groups() {
        let key: Box<[u32]> = vec![1u32, 2].into();
        let mut d1 = TreeDict::default();
        let mut g1 = PatternGroup::default();
        g1.acc.push(1.5);
        d1.insert(key.clone(), g1);
        let mut d2 = TreeDict::default();
        let mut g2 = PatternGroup::default();
        g2.acc.push(2.5);
        d2.insert(key.clone(), g2);
        let other: Box<[u32]> = vec![9u32].into();
        let mut g3 = PatternGroup::default();
        g3.acc.push(0.5);
        d2.insert(other.clone(), g3);

        let merged = merge_shard_dicts(vec![d1, d2], 64);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[&key].acc.count, 2);
        assert_eq!(merged[&key].acc.sum(), 4.0);
        assert_eq!(merged[&other].acc.count, 1);
    }
}
