//! Diversifying the top-k pattern list (maximal marginal relevance).
//!
//! Tree patterns are often near-duplicates of one another: the same set of
//! entities reached through a slightly longer path, or through a sibling
//! attribute, produces a separate pattern whose *table rows name the same
//! things*. A ranked list that spends its k slots on variants of one
//! interpretation hides the others — the very failure mode (answer
//! fragmentation) that motivated patterns over individual subtrees in the
//! first place.
//!
//! [`diversify`] re-ranks with the classic MMR objective: greedily pick
//! the pattern maximizing
//!
//! ```text
//! λ · rel(P)  −  (1 − λ) · max_{S ∈ selected} overlap(P, S)
//! ```
//!
//! where `rel` is the pattern score normalized into `[0, 1]` and `overlap`
//! is the Jaccard similarity of the patterns' **root-entity sets** (two
//! patterns whose rows are anchored at the same entities say roughly the
//! same thing). Root sets come from the materialized example subtrees, so
//! with `SearchConfig::max_rows` smaller than a pattern's row count the
//! overlap is a sample-based estimate — fine for de-duplication.
//!
//! `λ = 1` reproduces the input order; lower values trade headroom for
//! coverage. Selection is deterministic (score, then pattern-key ties).

use crate::result::RankedPattern;
use patternkb_graph::NodeId;

/// Knobs for [`diversify`].
#[derive(Clone, Copy, Debug)]
pub struct DiversifyConfig {
    /// Relevance–diversity trade-off `λ ∈ [0, 1]`; 1 = pure relevance.
    pub lambda: f64,
    /// Number of patterns to select.
    pub k: usize,
}

impl Default for DiversifyConfig {
    fn default() -> Self {
        DiversifyConfig { lambda: 0.7, k: 10 }
    }
}

/// Sorted, deduplicated root entities of a pattern's materialized rows.
fn root_set(p: &RankedPattern) -> Vec<NodeId> {
    let mut roots: Vec<NodeId> = p.trees.iter().map(|t| t.root).collect();
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// Jaccard similarity of two sorted id sets.
fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Greedy MMR selection over `patterns` (assumed best-first, as returned
/// by any search algorithm). Returns at most `cfg.k` patterns, cloned, in
/// selection order.
pub fn diversify(patterns: &[RankedPattern], cfg: &DiversifyConfig) -> Vec<RankedPattern> {
    let k = cfg.k.min(patterns.len());
    if k == 0 {
        return Vec::new();
    }
    let lambda = cfg.lambda.clamp(0.0, 1.0);
    let max_score = patterns
        .iter()
        .map(|p| p.score)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(f64::MIN_POSITIVE);

    let root_sets: Vec<Vec<NodeId>> = patterns.iter().map(root_set).collect();
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();

    while selected.len() < k {
        let mut best: Option<(f64, usize, usize)> = None; // (mmr, slot in remaining, idx)
        for (slot, &i) in remaining.iter().enumerate() {
            let rel = patterns[i].score / max_score;
            let max_overlap = selected
                .iter()
                .map(|&s| jaccard(&root_sets[i], &root_sets[s]))
                .fold(0.0f64, f64::max);
            let mmr = lambda * rel - (1.0 - lambda) * max_overlap;
            let better = match best {
                None => true,
                // Deterministic: strict improvement, or tie broken by the
                // input (score) order, i.e. keep the earliest.
                Some((b, _, _)) => mmr > b + 1e-15,
            };
            if better {
                best = Some((mmr, slot, i));
            }
        }
        let (_, slot, i) = best.expect("remaining is non-empty");
        remaining.swap_remove(slot);
        // swap_remove disturbs `remaining`'s order; restore input order so
        // the tie-break stays deterministic.
        remaining.sort_unstable();
        selected.push(i);
    }

    selected.into_iter().map(|i| patterns[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtree::ValidSubtree;

    /// A pattern with the given score whose rows are rooted at `roots`.
    fn pat(score: f64, roots: &[u32]) -> RankedPattern {
        RankedPattern {
            pattern: vec![],
            score,
            num_trees: roots.len(),
            trees: roots
                .iter()
                .map(|&r| ValidSubtree {
                    root: NodeId(r),
                    paths: vec![],
                    score,
                })
                .collect(),
        }
    }

    #[test]
    fn lambda_one_keeps_input_order() {
        let input = vec![pat(9.0, &[1, 2]), pat(5.0, &[1, 2]), pat(1.0, &[3])];
        let out = diversify(&input, &DiversifyConfig { lambda: 1.0, k: 3 });
        let scores: Vec<f64> = out.iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![9.0, 5.0, 1.0]);
    }

    #[test]
    fn duplicates_are_demoted() {
        // #2 is a root-identical clone of #1; #3 covers different entities.
        let input = vec![
            pat(10.0, &[1, 2, 3]),
            pat(9.0, &[1, 2, 3]),
            pat(5.0, &[7, 8]),
        ];
        let out = diversify(&input, &DiversifyConfig { lambda: 0.5, k: 2 });
        assert_eq!(out[0].score, 10.0);
        assert_eq!(out[1].score, 5.0, "the disjoint pattern beats the clone");
    }

    #[test]
    fn partial_overlap_ranks_between() {
        let input = vec![
            pat(10.0, &[1, 2, 3, 4]),
            pat(9.0, &[1, 2, 3, 4]), // clone of #0
            pat(8.5, &[3, 4, 5, 6]), // half overlap
            pat(8.0, &[9, 10]),      // disjoint
        ];
        let out = diversify(&input, &DiversifyConfig { lambda: 0.5, k: 4 });
        let scores: Vec<f64> = out.iter().map(|p| p.score).collect();
        assert_eq!(scores[0], 10.0);
        assert_eq!(scores[1], 8.0, "disjoint first");
        assert_eq!(scores[2], 8.5, "half-overlap second");
        assert_eq!(scores[3], 9.0, "clone last");
    }

    #[test]
    fn k_bounds_and_empty_input() {
        assert!(diversify(&[], &DiversifyConfig::default()).is_empty());
        let input = vec![pat(1.0, &[1])];
        let out = diversify(&input, &DiversifyConfig { lambda: 0.3, k: 10 });
        assert_eq!(out.len(), 1);
        let none = diversify(&input, &DiversifyConfig { lambda: 0.3, k: 0 });
        assert!(none.is_empty());
    }

    #[test]
    fn lambda_zero_still_leads_with_best() {
        // The first pick has no selected set to overlap with, so even pure
        // diversity starts from the top-scoring pattern.
        let input = vec![pat(10.0, &[1]), pat(1.0, &[2])];
        let out = diversify(&input, &DiversifyConfig { lambda: 0.0, k: 1 });
        assert_eq!(out[0].score, 10.0);
    }

    #[test]
    fn jaccard_math() {
        let a = [NodeId(1), NodeId(2), NodeId(3)];
        let b = [NodeId(2), NodeId(3), NodeId(4)];
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &[]), 0.0);
        assert_eq!(jaccard(&[], &[]), 0.0);
    }

    #[test]
    fn end_to_end_on_figure1() {
        use crate::{AlgorithmChoice, EngineBuilder, SearchRequest};
        use patternkb_datagen::figure1;
        let (g, _) = figure1();
        let e = EngineBuilder::new().graph(g).threads(1).build().unwrap();
        let r = e
            .respond(
                &SearchRequest::text("database software company revenue")
                    .k(9)
                    .algorithm(AlgorithmChoice::PatternEnum),
            )
            .unwrap();
        let out = diversify(&r.patterns, &DiversifyConfig { lambda: 0.5, k: 5 });
        assert_eq!(out.len(), 5);
        // Top answer is stable; selected scores are a subset of the input.
        assert_eq!(out[0].key(), r.patterns[0].key());
        for p in &out {
            assert!(r.patterns.iter().any(|x| x.key() == p.key()));
        }
    }
}
