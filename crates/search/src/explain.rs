//! Human-readable explanations of answers: valid subtrees rendered as
//! indented trees, with the matched keyword annotated on each path.
//!
//! Table answers (Figure 3) are the primary output, but debugging a
//! ranking — "why is this pattern #1?" — needs the subtree structure and
//! the per-factor score breakdown, which this module renders.

use crate::result::RankedPattern;
use crate::subtree::ValidSubtree;
use patternkb_graph::{FxHashMap, KnowledgeGraph, NodeId};

/// Render one subtree as an indented tree rooted at its root node.
///
/// ```text
/// SQL Server [Software]
/// ├─ Genre → Relational database [Model]   ⟵ database
/// └─ Developer → Microsoft [Company]        ⟵ company
///    └─ Revenue → US$ 77 billion            ⟵ revenue
/// ```
pub fn explain_tree(g: &KnowledgeGraph, tree: &ValidSubtree, keywords: &[&str]) -> String {
    // Reassemble the union tree: parent → ordered children with the edge
    // position along each contributing path, and per-node keyword marks.
    let mut children: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    let mut marks: FxHashMap<NodeId, Vec<usize>> = FxHashMap::default();
    for (i, path) in tree.paths.iter().enumerate() {
        for w in path.nodes.windows(2) {
            let kids = children.entry(w[0]).or_default();
            if !kids.contains(&w[1]) {
                kids.push(w[1]);
            }
        }
        let matched = *path.nodes.last().expect("non-empty path");
        marks.entry(matched).or_default().push(i);
    }

    let mut out = String::new();
    out.push_str(&node_label(g, tree.root));
    if let Some(is) = marks.get(&tree.root) {
        annotate(&mut out, is, keywords);
    }
    out.push('\n');
    render_children(
        g,
        &children,
        &marks,
        keywords,
        tree.root,
        String::new(),
        &mut out,
    );
    out
}

fn render_children(
    g: &KnowledgeGraph,
    children: &FxHashMap<NodeId, Vec<NodeId>>,
    marks: &FxHashMap<NodeId, Vec<usize>>,
    keywords: &[&str],
    node: NodeId,
    prefix: String,
    out: &mut String,
) {
    let Some(kids) = children.get(&node) else {
        return;
    };
    for (i, &kid) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        out.push_str(&prefix);
        out.push_str(if last { "└─ " } else { "├─ " });
        // Edge label: find the attribute of (node, kid) in the graph.
        if let Some((attr, _)) = g.out_edges(node).find(|&(_, t)| t == kid) {
            out.push_str(g.attr_text(attr));
            out.push_str(" → ");
        }
        out.push_str(&node_label(g, kid));
        if let Some(is) = marks.get(&kid) {
            annotate(out, is, keywords);
        }
        out.push('\n');
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        render_children(g, children, marks, keywords, kid, child_prefix, out);
    }
}

fn node_label(g: &KnowledgeGraph, v: NodeId) -> String {
    let t = g.node_type(v);
    if t == KnowledgeGraph::TEXT_TYPE {
        format!("{:?}", g.node_text(v))
    } else {
        format!("{} [{}]", g.node_text(v), g.type_text(t))
    }
}

fn annotate(out: &mut String, keyword_indices: &[usize], keywords: &[&str]) {
    out.push_str("   ⟵ ");
    let names: Vec<&str> = keyword_indices
        .iter()
        .map(|&i| keywords.get(i).copied().unwrap_or("?"))
        .collect();
    out.push_str(&names.join(", "));
}

/// Per-factor score breakdown of a pattern's aggregation (Eq. (2)/(3)).
pub fn explain_score(p: &RankedPattern) -> String {
    let mut out = format!(
        "pattern score {:.6} over {} subtree(s)\n",
        p.score, p.num_trees
    );
    for (i, t) in p.trees.iter().enumerate() {
        out.push_str(&format!(
            "  row {:>3}: score(T) = {:.6} (root node {})\n",
            i + 1,
            t.score,
            t.root
        ));
    }
    if p.trees.len() < p.num_trees {
        out.push_str(&format!(
            "  … {} more subtree(s) not materialized\n",
            p.num_trees - p.trees.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::QueryContext;
    use crate::linear_enum::linear_enum;
    use crate::{Query, SearchConfig};
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn top_tree() -> (patternkb_graph::KnowledgeGraph, RankedPattern) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(10));
        (g, r.patterns[0].clone())
    }

    #[test]
    fn tree_rendering_contains_structure() {
        let (g, p) = top_tree();
        let kw = ["database", "software", "company", "revenue"];
        let shown = explain_tree(&g, &p.trees[0], &kw);
        assert!(shown.contains("SQL Server [Software]"), "{shown}");
        assert!(shown.contains("Genre → Relational database"), "{shown}");
        assert!(shown.contains("Developer → Microsoft"), "{shown}");
        assert!(shown.contains("US$ 77 billion"), "{shown}");
        // Keyword annotations present.
        assert!(shown.contains("⟵"), "{shown}");
        assert!(shown.contains("database"), "{shown}");
    }

    #[test]
    fn score_breakdown() {
        let (_, p) = top_tree();
        let shown = explain_score(&p);
        assert!(shown.contains("2 subtree(s)"));
        assert!(shown.contains("row   1"));
        assert!(shown.contains("row   2"));
    }

    #[test]
    fn breakdown_reports_unmaterialized_rows() {
        let (_, mut p) = top_tree();
        p.trees.truncate(1);
        let shown = explain_score(&p);
        assert!(shown.contains("1 more subtree"));
    }
}
