//! Unified ranking of tree patterns *and* individual subtrees.
//!
//! §5.3 of the paper leaves open "how to mix individual valid subtrees
//! with tree patterns to provide a universal ranking". This module
//! implements the natural first candidate the section's own analysis
//! suggests:
//!
//! * a tree pattern competes with its aggregate score `score(P, q)`;
//! * an individual subtree competes with `blend · score(T, q)` — the blend
//!   factor trades off list answers against singular answers;
//! * an individual subtree whose pattern already appears as a pattern
//!   answer is **absorbed** into it (it would be row duplication), exactly
//!   the "coverage" overlap measured in Figure 13.
//!
//! With `blend → 0` the ranking degenerates to pure pattern answers; with
//! `blend → ∞` the top of the list is pure individual-subtree ranking with
//! pattern answers below — the two extremes the paper compares.

use crate::common::QueryContext;
use crate::individual::{top_individual, ScoredTree};
use crate::linear_enum::linear_enum;
use crate::result::RankedPattern;
use crate::subtree::ValidSubtree;
use crate::SearchConfig;

/// One entry of the unified list.
#[derive(Clone, Debug)]
pub enum UnifiedAnswer {
    /// A table answer (aggregation of subtrees).
    Pattern(RankedPattern),
    /// A singular subtree whose pattern did not make the pattern top-k.
    Tree {
        /// The subtree.
        tree: ValidSubtree,
        /// Its blended competition score.
        blended_score: f64,
    },
}

impl UnifiedAnswer {
    /// The score this answer competed with.
    pub fn score(&self) -> f64 {
        match self {
            UnifiedAnswer::Pattern(p) => p.score,
            UnifiedAnswer::Tree { blended_score, .. } => *blended_score,
        }
    }

    /// Whether this is a table (pattern) answer.
    pub fn is_pattern(&self) -> bool {
        matches!(self, UnifiedAnswer::Pattern(_))
    }
}

/// Parameters of the unified ranking.
#[derive(Clone, Copy, Debug)]
pub struct UnifiedConfig {
    /// Multiplier applied to individual subtree scores before they compete
    /// with pattern scores. 1.0 treats a singular subtree like a 1-row
    /// pattern (the neutral choice under `Sum` aggregation).
    pub blend: f64,
    /// Answers to return.
    pub k: usize,
}

impl Default for UnifiedConfig {
    fn default() -> Self {
        UnifiedConfig { blend: 1.0, k: 10 }
    }
}

/// Produce the unified top-k.
pub fn unified_ranking(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    ucfg: &UnifiedConfig,
) -> Vec<UnifiedAnswer> {
    // Candidate patterns and candidate individual subtrees, both k-deep.
    let patterns = linear_enum(
        ctx,
        &SearchConfig {
            k: ucfg.k,
            ..cfg.clone()
        },
    );
    let trees: Vec<ScoredTree> = top_individual(ctx, cfg, ucfg.k);

    // Pattern keys present among the pattern answers (for absorption).
    let pattern_keys: Vec<Vec<u32>> = patterns
        .patterns
        .iter()
        .filter_map(|p| crate::individual::pattern_key_of(ctx, p))
        .collect();

    let mut out: Vec<UnifiedAnswer> = patterns
        .patterns
        .into_iter()
        .map(UnifiedAnswer::Pattern)
        .collect();
    for t in trees {
        if pattern_keys.contains(&t.pattern_key) {
            continue; // absorbed into its pattern's table
        }
        out.push(UnifiedAnswer::Tree {
            blended_score: ucfg.blend * t.tree.score,
            tree: t.tree,
        });
    }
    out.sort_by(|a, b| {
        b.score()
            .partial_cmp(&a.score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.is_pattern().cmp(&b.is_pattern()).reverse())
    });
    out.truncate(ucfg.k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn unified_is_sorted_and_bounded() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let answers = unified_ranking(
            &ctx,
            &SearchConfig::default(),
            &UnifiedConfig { blend: 1.0, k: 5 },
        );
        assert!(answers.len() <= 5);
        for w in answers.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
    }

    #[test]
    fn absorbed_trees_do_not_duplicate_patterns() {
        // With k large enough to include every pattern, every individual
        // subtree's pattern is present, so no Tree entries survive.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let answers = unified_ranking(
            &ctx,
            &SearchConfig::default(),
            &UnifiedConfig { blend: 1.0, k: 100 },
        );
        assert!(answers.iter().all(UnifiedAnswer::is_pattern));
    }

    #[test]
    fn small_k_surfaces_singular_trees() {
        // "database company", k = 1: the top pattern is the 2-subtree
        // Genre/Model interpretation (score 1.5), but the single best
        // *individual* subtree is the Book root (score ≈ 0.78) whose
        // pattern did NOT make the pattern top-1 — with a generous blend it
        // enters the unified list as a Tree answer.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database company").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let answers = unified_ranking(
            &ctx,
            &SearchConfig::default(),
            &UnifiedConfig { blend: 100.0, k: 1 },
        );
        assert_eq!(answers.len(), 1);
        assert!(
            !answers[0].is_pattern(),
            "the blended singular subtree should win at k = 1"
        );
    }

    #[test]
    fn blend_zero_is_pure_patterns() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database company").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let answers = unified_ranking(
            &ctx,
            &SearchConfig::default(),
            &UnifiedConfig { blend: 0.0, k: 4 },
        );
        // Tree entries score 0 and sort below every positive pattern.
        let first_tree = answers.iter().position(|a| !a.is_pattern());
        let last_pattern = answers.iter().rposition(UnifiedAnswer::is_pattern);
        if let (Some(ft), Some(lp)) = (first_tree, last_pattern) {
            assert!(lp < ft, "patterns first under blend 0");
        }
    }
}
