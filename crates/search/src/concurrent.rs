//! The concurrent serving handle: snapshot-swap around the immutable
//! [`SearchEngine`], with the version-aware result cache built in.
//!
//! The engine itself is immutable after build, so any number of threads
//! can query one instance. Mutation, however, replaces the whole state
//! (graph + text index + path indexes). [`SharedEngine`] reconciles the
//! two with the classic read-copy-update shape:
//!
//! * **readers** call [`SharedEngine::respond`], which takes a cheap
//!   [`Arc`] snapshot and serves the request through the built-in
//!   [`QueryCache`] — entries record the engine version they were computed
//!   at, so a swap invalidates them exactly (no time-based expiry);
//! * **writers** compute the post-delta engine *outside* any lock
//!   ([`SearchEngine::with_delta`] — the expensive incremental refresh),
//!   then swap the shared pointer under a short critical section. A writer
//!   mutex serializes ingests so two concurrent deltas (both derived from
//!   the same base) cannot silently lose one another's writes.
//!
//! Readers never block writers and writers never block readers; the only
//! contention is the pointer swap. Old snapshots are freed when their last
//! reader drops them. [`SharedEngine::snapshot`] remains available for
//! callers that need many queries against one consistent state.
//!
//! Two serving-lifecycle operations round this out:
//!
//! * [`SharedEngine::replace`] — **hot snapshot swap**: atomically swap in
//!   a rebuilt/refreshed engine (bumping the *epoch*) while in-flight
//!   queries finish on the old state;
//! * [`SharedEngine::close`] — graceful shutdown: stop admitting new
//!   responds (typed [`Error::Closed`]), then drain the in-flight ones.
//!   Idempotent.

use crate::cache::{CacheStats, QueryCache};
use crate::durability::Durability;
use crate::engine::SearchEngine;
use crate::error::Error;
use crate::request::{SearchRequest, SearchResponse};
use parking_lot::{Mutex, RwLock};
use patternkb_graph::mutate::{DeltaError, GraphDelta, PagerankMode};
use patternkb_index::RefreshStats;
use std::sync::Arc;

/// What one [`SharedEngine::ingest_with`] call changed.
#[derive(Clone, Copy, Debug)]
pub struct IngestOutcome {
    /// The incremental refresh's work counters (affected roots, postings
    /// kept/dropped/added, patterns interned).
    pub stats: RefreshStats,
    /// The data version now serving (strictly greater than before).
    pub version: u64,
}

/// Why an [`SharedEngine::ingest_with`] call failed. `E` is the caller's
/// delta-builder error (wire parse/resolution failures in the serving
/// layer); the other variants are the engine's own refusals.
#[derive(Debug)]
pub enum IngestError<E> {
    /// The handle was closed ([`SharedEngine::close`]); no new writes are
    /// admitted. Maps to 503 on the serving surface.
    Closed,
    /// The caller's builder rejected the batch (nothing was mutated).
    Build(E),
    /// The built delta failed validation against its own base snapshot
    /// (duplicate edge, removal of a missing edge, …). Never
    /// [`DeltaError::BaseMismatch`]: the delta is built under the writer
    /// lock, so the base cannot move between build and apply.
    Delta(DeltaError),
    /// The write-ahead log could not make the delta durable (append or
    /// fsync failure). The delta is **not** visible to readers — a write
    /// that was never durable must not be served. Only raised on handles
    /// built with [`crate::EngineBuilder::data_dir`]; maps to 503 on the
    /// serving surface.
    Durability(std::io::Error),
}

impl<E: std::fmt::Display> std::fmt::Display for IngestError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Closed => write!(f, "engine is shutting down; ingest refused"),
            IngestError::Build(e) => write!(f, "delta build failed: {e}"),
            IngestError::Delta(e) => write!(f, "delta rejected: {e}"),
            IngestError::Durability(e) => write!(f, "ingest not made durable: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for IngestError<E> {}

/// A queryable, mutable-by-swap handle shared across threads. Built by
/// [`crate::EngineBuilder::build_shared`].
pub struct SharedEngine {
    current: RwLock<Arc<SearchEngine>>,
    /// Serializes writers; held across the (long) delta computation so a
    /// second ingest starts from the first one's result.
    writer: Mutex<()>,
    /// Version-aware result cache consulted by [`Self::respond`].
    cache: QueryCache,
    /// Admission gate: counts in-flight responds and flips closed on
    /// [`Self::close`]. std primitives (not parking_lot) so the condvar
    /// wait in `close` composes with the guard's `Drop` on panic unwinds.
    gate: Gate,
    /// Hot-swap epoch: +1 per [`Self::replace`] (whole-engine snapshot
    /// swap), independent of the per-delta data version.
    epoch: std::sync::atomic::AtomicU64,
    /// The newest *built* engine state, possibly not yet published: with
    /// durability attached, an ingest builds on this tail (under the
    /// writer lock), appends to the log, then publishes to `current` only
    /// once durable. Letting the next ingest start from the unpublished
    /// tail is what makes group commit actually batch — without it every
    /// writer would hold the writer lock across its fsync wait.
    pending: Mutex<Option<Arc<SearchEngine>>>,
    /// The write-ahead log + checkpointer, when booted with
    /// [`crate::EngineBuilder::data_dir`].
    durability: Option<Arc<Durability>>,
}

/// Admission state: how many responds are in flight, and whether new ones
/// are still admitted.
struct Gate {
    state: std::sync::Mutex<GateState>,
    drained: std::sync::Condvar,
}

struct GateState {
    closed: bool,
    in_flight: usize,
}

/// RAII in-flight token: decrements the gate count (and wakes a pending
/// [`SharedEngine::close`]) when the respond call ends, even by panic.
struct InFlight<'a>(&'a Gate);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap();
        st.in_flight -= 1;
        if st.in_flight == 0 {
            self.0.drained.notify_all();
        }
    }
}

impl SharedEngine {
    /// Default capacity of the built-in result cache.
    pub const DEFAULT_CACHE_CAPACITY: usize = 256;

    /// Wrap a freshly built engine with the default cache capacity.
    pub fn new(engine: SearchEngine) -> Self {
        Self::with_cache_capacity(engine, Self::DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap a freshly built engine with an explicit result-cache capacity
    /// (entries; ≥ 1).
    pub fn with_cache_capacity(engine: SearchEngine, capacity: usize) -> Self {
        Self::assemble(engine, capacity, None)
    }

    /// Wrap an engine with a durability handle attached (the
    /// [`crate::EngineBuilder::data_dir`] route).
    pub(crate) fn assemble(
        engine: SearchEngine,
        capacity: usize,
        durability: Option<Arc<Durability>>,
    ) -> Self {
        SharedEngine {
            current: RwLock::new(Arc::new(engine)),
            writer: Mutex::new(()),
            cache: QueryCache::new(capacity),
            gate: Gate {
                state: std::sync::Mutex::new(GateState {
                    closed: false,
                    in_flight: 0,
                }),
                drained: std::sync::Condvar::new(),
            },
            epoch: std::sync::atomic::AtomicU64::new(0),
            pending: Mutex::new(None),
            durability,
        }
    }

    /// The durability handle, when this engine was booted with
    /// [`crate::EngineBuilder::data_dir`]. `None` means ingests are
    /// memory-only (lost on restart).
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// Register one in-flight respond, or refuse if the handle is closed.
    fn enter(&self) -> Result<InFlight<'_>, Error> {
        let mut st = self.gate.state.lock().unwrap();
        if st.closed {
            return Err(Error::Closed);
        }
        st.in_flight += 1;
        Ok(InFlight(&self.gate))
    }

    /// Serve one request against the current state, through the built-in
    /// cache. [`SearchResponse::cache`] reports whether the search step
    /// was a hit; post-processing (tables, presentation, explain) is
    /// computed fresh per call.
    ///
    /// Concurrent [`Self::apply_delta`] calls are safe: the request runs
    /// against the snapshot current at its start, and cached entries from
    /// older versions are rejected, never served.
    pub fn respond(&self, request: &SearchRequest) -> Result<SearchResponse, Error> {
        let _token = self.enter()?;
        let snapshot = self.snapshot();
        snapshot.respond_with_cache(request, Some(&self.cache))
    }

    /// [`Self::respond`] against a snapshot the caller already holds —
    /// the micro-batching route: a serving worker takes one
    /// [`Self::snapshot`] per admitted batch and answers every request of
    /// the batch through it (and through the shared cache), paying the
    /// swap-pointer read once instead of per request.
    ///
    /// The snapshot may be older than the current state (e.g. a
    /// [`Self::replace`] landed mid-batch); answers stay internally
    /// consistent with that snapshot, and cache entries are version-keyed
    /// so the two epochs never mix.
    pub fn respond_on(
        &self,
        snapshot: &SearchEngine,
        request: &SearchRequest,
    ) -> Result<SearchResponse, Error> {
        let _token = self.enter()?;
        snapshot.respond_with_cache(request, Some(&self.cache))
    }

    /// An immutable snapshot of the current state. Queries, parsing, table
    /// composition — everything on [`SearchEngine`] — runs against it;
    /// it stays valid (and consistent) across later ingests.
    pub fn snapshot(&self) -> Arc<SearchEngine> {
        Arc::clone(&self.current.read())
    }

    /// The current data version (see [`SearchEngine::version`]).
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// The hot-swap epoch: 0 at construction, +1 per [`Self::replace`].
    /// Per-delta ingests ([`Self::apply_delta`]) bump [`Self::version`]
    /// but not the epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.gate.state.lock().unwrap().closed
    }

    /// Shut the handle down: stop admitting new [`Self::respond`] /
    /// [`Self::respond_on`] calls (they return [`Error::Closed`] from now
    /// on), then block until every in-flight respond has finished.
    /// Idempotent — later calls return immediately once drained.
    /// Snapshots already handed out stay valid; `close` only gates the
    /// shared respond route.
    pub fn close(&self) {
        let mut st = self.gate.state.lock().unwrap();
        st.closed = true;
        while st.in_flight > 0 {
            st = self.gate.drained.wait(st).unwrap();
        }
    }

    /// Hot snapshot swap: atomically replace the whole engine with a
    /// rebuilt/refreshed one while in-flight queries finish on the old
    /// state. Returns the new epoch.
    ///
    /// The incoming engine's data version is rebased strictly above the
    /// outgoing one, and the result cache is cleared, so entries computed
    /// on the old state can never be served against the new one — even
    /// when a concurrent respond races the swap and inserts afterwards
    /// (its entry keeps the old version key, which no longer matches).
    pub fn replace(&self, next: SearchEngine) -> u64 {
        let _writing = self.writer.lock();
        let mut next = next;
        // The rebase floor includes the unpublished ingest tail (durable
        // handles), so a swapped-in engine can never collide with a
        // version already written to the log.
        let mut floor = self.current.read().version();
        if let Some(tail) = self.pending.lock().take() {
            floor = floor.max(tail.version());
        }
        next.rebase_version(floor);
        *self.current.write() = Arc::new(next);
        self.cache.clear();
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1
    }

    /// Cumulative hit/miss/eviction counters of the built-in cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Ingest a pre-built delta. Equivalent to [`Self::ingest_with`] with
    /// a builder that just clones `delta` — so the delta must have been
    /// built against the latest state. If another ingest landed in
    /// between, the graphs no longer line up and the delta is rejected by
    /// validation ([`DeltaError::BaseMismatch`], surfaced as
    /// [`Error::Delta`]) — the caller must rebuild and retry.
    /// [`Self::ingest_with`] removes that race entirely by building the
    /// delta under the writer lock; prefer it for any concurrent write
    /// path.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        mode: PagerankMode,
    ) -> Result<RefreshStats, Error> {
        match self.ingest_with(mode, |_| Ok::<_, std::convert::Infallible>(delta.clone())) {
            Ok(outcome) => Ok(outcome.stats),
            Err(IngestError::Build(never)) => match never {},
            Err(IngestError::Delta(e)) => Err(Error::Delta(e)),
            Err(IngestError::Closed) => Err(Error::Closed),
            Err(IngestError::Durability(e)) => Err(Error::Durability(e)),
        }
    }

    /// The online write path: build a delta **against the latest state,
    /// under the writer lock**, apply it through the incremental index
    /// refresh, and swap the result in — while readers keep serving the
    /// old snapshot (the only read-side cost is the pointer swap).
    ///
    /// Because `build` runs with the writer mutex held, the state it sees
    /// *is* the apply base, so two racing ingests serialize — the second
    /// one's `build` sees the first one's result — instead of one of them
    /// failing [`DeltaError::BaseMismatch`] validation. `build` should
    /// therefore be quick (resolve names, assemble the [`GraphDelta`]);
    /// the expensive part — the incremental refresh — also runs under the
    /// writer lock but off the snapshot `RwLock`, so reads never stall
    /// behind it. Returning `Err` from `build` abandons the ingest with
    /// no state change.
    ///
    /// With durability attached ([`crate::EngineBuilder::data_dir`]) the
    /// ordering is *log → durable → publish*: the compiled delta is
    /// appended to the write-ahead log before any pointer moves, the call
    /// acks only after the record is durable under the configured
    /// [`patternkb_wal::FsyncPolicy`], and the state is published to
    /// readers only then. The durability wait happens *outside* the
    /// writer lock — the next ingest builds on the not-yet-published tail
    /// meanwhile, so one shared fsync acks a whole batch (group commit).
    /// On an append/fsync failure the log poisons itself and the
    /// unpublished tail is abandoned: a delta that never became durable
    /// is never visible.
    ///
    /// ```
    /// use patternkb_graph::mutate::{DeltaError, GraphDelta, PagerankMode};
    /// use patternkb_search::EngineBuilder;
    ///
    /// let (graph, _) = patternkb_datagen::figure1();
    /// let shared = EngineBuilder::new()
    ///     .graph(graph)
    ///     .height(2)
    ///     .threads(1)
    ///     .build_shared()
    ///     .unwrap();
    /// let before = shared.version();
    /// let outcome = shared
    ///     .ingest_with(PagerankMode::Frozen, |snap| {
    ///         // `snap` is the pinned base: resolve against it, then
    ///         // assemble the delta.
    ///         let mut d = GraphDelta::new(snap.graph());
    ///         let company = d.add_type("Company");
    ///         d.add_node(company, "Initech")?;
    ///         Ok::<_, DeltaError>(d)
    ///     })
    ///     .unwrap();
    /// assert_eq!(outcome.version, before + 1);
    /// assert_eq!(shared.version(), outcome.version);
    /// ```
    pub fn ingest_with<E>(
        &self,
        mode: PagerankMode,
        build: impl FnOnce(&SearchEngine) -> Result<GraphDelta, E>,
    ) -> Result<IngestOutcome, IngestError<E>> {
        let (next, stats, ticket) = {
            let _writing = self.writer.lock();
            if self.is_closed() {
                return Err(IngestError::Closed);
            }
            // The base is pinned: no other writer can move it while we
            // hold `writer`. It is the newest *built* state — under
            // durability possibly still waiting on its fsync — so the
            // delta `build` produces is applied to exactly the graph it
            // was built against.
            let base = self
                .pending
                .lock()
                .clone()
                .unwrap_or_else(|| self.snapshot());
            let delta = build(&base).map_err(IngestError::Build)?;
            let (next, stats) = base.with_delta(&delta, mode).map_err(IngestError::Delta)?;
            let next = Arc::new(next);
            let ticket = match &self.durability {
                Some(d) => Some(
                    d.append(next.version(), mode, &delta)
                        .map_err(IngestError::Durability)?,
                ),
                None => None,
            };
            *self.pending.lock() = Some(Arc::clone(&next));
            (next, stats, ticket)
        };
        if let Some(ticket) = ticket {
            let d = self.durability.as_ref().expect("ticket implies durability");
            d.sync(ticket).map_err(IngestError::Durability)?;
        }
        let version = next.version();
        self.publish_if_newer(next);
        if let Some(d) = &self.durability {
            d.maybe_checkpoint(&self.snapshot());
        }
        Ok(IngestOutcome { stats, version })
    }

    /// Publish `next` unless something newer (a later ingest whose fsync
    /// completed first, or a hot swap) already landed.
    fn publish_if_newer(&self, next: Arc<SearchEngine>) {
        let mut cur = self.current.write();
        if next.version() > cur.version() {
            *cur = next;
        }
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedEngine {{ version: {} }}", self.version())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::CacheOutcome;
    use crate::EngineBuilder;
    use patternkb_datagen::figure1;

    fn shared() -> SharedEngine {
        let (g, _) = figure1();
        EngineBuilder::new()
            .graph(g)
            .threads(1)
            .build_shared()
            .unwrap()
    }

    fn ingest_vendor(s: &SharedEngine, step: usize) {
        let snap = s.snapshot();
        let g = snap.graph();
        let comp = g.type_by_text("Company").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(g);
        let v = d.add_node(comp, &format!("shared vendor {step}")).unwrap();
        d.add_text_edge(v, rev, &format!("US$ {step} million"))
            .unwrap();
        s.apply_delta(&d, PagerankMode::Frozen).unwrap();
    }

    #[test]
    fn respond_caches_and_invalidates() {
        let s = shared();
        let req = SearchRequest::text("company revenue").k(10);
        let first = s.respond(&req).unwrap();
        assert_eq!(first.cache, CacheOutcome::Miss);
        let second = s.respond(&req).unwrap();
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(first.patterns.len(), second.patterns.len());

        ingest_vendor(&s, 1);
        // The engine moved on: the cached entry is stale, never served.
        let third = s.respond(&req).unwrap();
        assert_eq!(third.cache, CacheOutcome::Miss);
        let stats = s.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.stale_rejections, 1);
    }

    #[test]
    fn auto_requests_cache_and_report_planner_choice() {
        // Auto requests are keyed by choice + planner thresholds, so a
        // hit skips planning but still reports the resolved algorithm.
        let s = shared();
        let req = SearchRequest::text("database company").k(10);
        let first = s.respond(&req).unwrap();
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert!(first.planned);
        let second = s.respond(&req).unwrap();
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert!(second.planned);
        assert_eq!(
            format!("{:?}", first.algorithm),
            format!("{:?}", second.algorithm),
            "cached response reports the same resolved algorithm"
        );
        // A different planner override is a different entry.
        let strict = crate::PlannerConfig {
            max_combos: 0,
            ..Default::default()
        };
        let third = s.respond(&req.clone().planner(strict)).unwrap();
        assert_eq!(third.cache, CacheOutcome::Miss);
        assert!(!matches!(
            third.algorithm,
            crate::Algorithm::PatternEnumPruned
        ));
    }

    #[test]
    fn respond_errors_are_typed_not_cached() {
        let s = shared();
        assert!(matches!(
            s.respond(&SearchRequest::text("")),
            Err(Error::EmptyQuery)
        ));
        assert!(matches!(
            s.respond(&SearchRequest::text("qqqqzzzz")),
            Err(Error::UnknownWords(_))
        ));
        let stats = s.cache_stats();
        assert_eq!(
            stats.hits + stats.misses,
            0,
            "errors must not touch the cache"
        );
    }

    #[test]
    fn snapshots_stay_consistent_across_ingest() {
        let s = shared();
        let before = s.snapshot();
        let req = SearchRequest::text("company revenue").k(100);
        let r_before = before.respond(&req).unwrap();

        ingest_vendor(&s, 1);
        assert_eq!(s.version(), 1);

        // The old snapshot still answers exactly as before.
        let r_again = before.respond(&req).unwrap();
        assert_eq!(r_before.patterns.len(), r_again.patterns.len());

        // A fresh respond sees the new vendor.
        let r_after = s
            .respond(&SearchRequest::text("vendor revenue").k(100))
            .unwrap();
        assert_eq!(r_after.top().unwrap().num_trees, 1);
    }

    #[test]
    fn stale_delta_is_rejected_not_lost() {
        let s = shared();
        // Build a delta against version 0 …
        let old_snap = s.snapshot();
        let g = old_snap.graph();
        let comp = g.type_by_text("Company").unwrap();
        let mut stale = GraphDelta::new(g);
        stale.add_node(comp, "stale corp").unwrap();
        // … then let another ingest land first.
        ingest_vendor(&s, 7);
        // The stale delta's node-count bookkeeping no longer matches:
        // a typed error, never a silent lost-update.
        let err = s.apply_delta(&stale, PagerankMode::Frozen).unwrap_err();
        assert!(matches!(err, Error::Delta(DeltaError::BaseMismatch { .. })));
        assert_eq!(s.version(), 1, "stale delta left the state untouched");
    }

    #[test]
    fn concurrent_responders_and_writer() {
        let s = shared();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Readers hammer respond (cached and uncached) while the
            // writer ingests.
            for _ in 0..3 {
                scope.spawn(|| {
                    let req = SearchRequest::text("company revenue").k(10);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // Every consistent state answers this query.
                        let r = s.respond(&req).unwrap();
                        assert!(!r.patterns.is_empty());
                    }
                });
            }
            scope.spawn(|| {
                for step in 0..5 {
                    ingest_vendor(&s, step);
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(s.version(), 5);
        let r = s.respond(&SearchRequest::text("vendor").k(100)).unwrap();
        assert_eq!(r.top().unwrap().num_trees, 5);
    }

    #[test]
    fn close_stops_admitting_and_is_idempotent() {
        let s = shared();
        let req = SearchRequest::text("company revenue").k(10);
        assert!(s.respond(&req).is_ok());
        assert!(!s.is_closed());
        s.close();
        assert!(s.is_closed());
        assert!(matches!(s.respond(&req), Err(Error::Closed)));
        assert!(matches!(
            s.respond_on(&s.snapshot(), &req),
            Err(Error::Closed)
        ));
        // Second close returns immediately (idempotent, no deadlock).
        s.close();
        // Snapshots already handed out keep answering.
        assert!(s.snapshot().respond(&req).is_ok());
    }

    #[test]
    fn close_drains_in_flight_responders() {
        let s = shared();
        let served = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let req = SearchRequest::text("company revenue").k(10);
                    loop {
                        match s.respond(&req) {
                            Ok(_) => {
                                served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(Error::Closed) => break,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                });
            }
            // Let the responders get going, then close under fire.
            while served.load(std::sync::atomic::Ordering::Relaxed) < 8 {
                std::thread::yield_now();
            }
            s.close();
            // close() returned: nothing is in flight any more.
            assert_eq!(s.gate.state.lock().unwrap().in_flight, 0);
        });
        assert!(served.load(std::sync::atomic::Ordering::Relaxed) >= 8);
    }

    #[test]
    fn replace_bumps_epoch_and_invalidates_cache() {
        let s = shared();
        let req = SearchRequest::text("company revenue").k(10);
        assert_eq!(s.respond(&req).unwrap().cache, CacheOutcome::Miss);
        assert_eq!(s.respond(&req).unwrap().cache, CacheOutcome::Hit);
        assert_eq!(s.epoch(), 0);

        // Swap in a freshly rebuilt engine (same dataset, version 0 again).
        let (g, _) = figure1();
        let rebuilt = EngineBuilder::new().graph(g).threads(1).build().unwrap();
        assert_eq!(rebuilt.version(), 0);
        assert_eq!(s.replace(rebuilt), 1);
        assert_eq!(s.epoch(), 1);
        // The version was rebased past the old state's, so the pre-swap
        // cache entry can never be served on the new epoch.
        assert!(s.version() > 0);
        let post = s.respond(&req).unwrap();
        assert_eq!(post.cache, CacheOutcome::Miss);
        assert!(!post.patterns.is_empty());
    }

    #[test]
    fn replace_during_concurrent_responds_is_consistent() {
        let s = shared();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let req = SearchRequest::text("company revenue").k(10);
                    let mut seen = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let r = s.respond(&req).unwrap();
                        seen.push(r.patterns.len());
                    }
                    // Both epochs hold the same dataset: every answer is
                    // from exactly one consistent state, never a blend.
                    assert!(seen.iter().all(|&n| n == seen[0]));
                });
            }
            scope.spawn(|| {
                for _ in 0..3 {
                    let (g, _) = figure1();
                    let next = EngineBuilder::new().graph(g).threads(1).build().unwrap();
                    s.replace(next);
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(s.epoch(), 3);
    }

    #[test]
    fn respond_on_shares_the_cache() {
        let s = shared();
        let req = SearchRequest::text("company revenue").k(10);
        let snap = s.snapshot();
        assert_eq!(s.respond_on(&snap, &req).unwrap().cache, CacheOutcome::Miss);
        // The entry is visible to both routes.
        assert_eq!(s.respond_on(&snap, &req).unwrap().cache, CacheOutcome::Hit);
        assert_eq!(s.respond(&req).unwrap().cache, CacheOutcome::Hit);
    }

    #[test]
    fn ingest_with_builds_under_the_writer_lock() {
        // Two threads ingest through `ingest_with` with NO retry loop:
        // the delta is built against the locked base, so BaseMismatch is
        // impossible and both land (serialized).
        let s = shared();
        std::thread::scope(|scope| {
            for t in 0..2 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..3 {
                        let outcome = s
                            .ingest_with(PagerankMode::Frozen, |snap| {
                                let g = snap.graph();
                                let comp = g.type_by_text("Company").unwrap();
                                let mut d = GraphDelta::new(g);
                                d.add_node(comp, &format!("racer {t} entity {i}"))?;
                                Ok::<_, DeltaError>(d)
                            })
                            .expect("serialized ingest cannot conflict");
                        assert!(outcome.version >= 1);
                    }
                });
            }
        });
        assert_eq!(s.version(), 6);
        let r = s
            .respond(&SearchRequest::text("racer entity").k(100))
            .unwrap();
        assert_eq!(r.top().unwrap().num_trees, 6);
    }

    #[test]
    fn ingest_with_surfaces_build_and_delta_errors() {
        let s = shared();
        // Builder refusal: nothing changes.
        let err = s
            .ingest_with(PagerankMode::Frozen, |_| Err::<GraphDelta, _>("nope"))
            .unwrap_err();
        assert!(matches!(err, IngestError::Build("nope")));
        assert_eq!(s.version(), 0);
        // Delta validation failure (remove of a missing edge): typed,
        // state untouched.
        let err = s
            .ingest_with(PagerankMode::Frozen, |snap| {
                let g = snap.graph();
                let dev = g.attr_by_text("Developer").unwrap();
                let mut d = GraphDelta::new(g);
                // Reversed direction: not present in Figure 1.
                d.remove_edge(patternkb_graph::NodeId(1), dev, patternkb_graph::NodeId(0))?;
                Ok::<_, DeltaError>(d)
            })
            .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Delta(DeltaError::EdgeNotFound { .. })
        ));
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn ingest_with_refused_after_close() {
        let s = shared();
        s.close();
        let err = s
            .ingest_with(PagerankMode::Frozen, |snap| {
                Ok::<_, DeltaError>(GraphDelta::new(snap.graph()))
            })
            .unwrap_err();
        assert!(matches!(err, IngestError::Closed));
    }

    #[test]
    fn ingest_with_reports_refresh_stats_and_version() {
        let s = shared();
        let outcome = s
            .ingest_with(PagerankMode::Frozen, |snap| {
                let g = snap.graph();
                let comp = g.type_by_text("Company").unwrap();
                let rev = g.attr_by_text("Revenue").unwrap();
                let mut d = GraphDelta::new(g);
                let v = d.add_node(comp, "ingest vendor")?;
                d.add_text_edge(v, rev, "US$ 1 million")?;
                Ok::<_, DeltaError>(d)
            })
            .unwrap();
        assert_eq!(outcome.version, 1);
        assert_eq!(s.version(), 1);
        assert!(outcome.stats.affected_roots > 0);
        assert!(outcome.stats.postings_added > 0);
        let r = s
            .respond(&SearchRequest::text("vendor revenue").k(10))
            .unwrap();
        assert_eq!(r.top().unwrap().num_trees, 1);
    }

    #[test]
    fn writers_serialize() {
        // Two threads each ingest 3 entities; all 6 must land.
        let s = shared();
        std::thread::scope(|scope| {
            for t in 0..2 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..3 {
                        // Retry on conflict: the delta is rebuilt from the
                        // latest snapshot each attempt.
                        loop {
                            let snap = s.snapshot();
                            let g = snap.graph();
                            let comp = g.type_by_text("Company").unwrap();
                            let mut d = GraphDelta::new(g);
                            d.add_node(comp, &format!("writer {t} entity {i}")).unwrap();
                            match s.apply_delta(&d, PagerankMode::Frozen) {
                                Ok(_) => break,
                                Err(Error::Delta(DeltaError::BaseMismatch { .. })) => continue,
                                Err(e) => panic!("unexpected delta error {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(s.version(), 6);
        let r = s
            .respond(&SearchRequest::text("writer entity").k(100))
            .unwrap();
        assert_eq!(r.top().unwrap().num_trees, 6);
    }
}
