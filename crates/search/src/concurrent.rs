//! Serving queries concurrently with mutation: snapshot-swap around the
//! immutable [`SearchEngine`].
//!
//! The engine itself is immutable after build, so any number of threads
//! can query one instance. Mutation, however, replaces the whole state
//! (graph + text index + path indexes). [`SharedEngine`] reconciles the
//! two with the classic read-copy-update shape:
//!
//! * **readers** take a cheap [`Arc`] snapshot ([`SharedEngine::snapshot`])
//!   and run any number of queries against it — a snapshot is internally
//!   consistent forever, even across concurrent ingests;
//! * **writers** compute the post-delta engine *outside* any lock
//!   ([`SearchEngine::with_delta`] — the expensive incremental refresh),
//!   then swap the shared pointer under a short critical section. A writer
//!   mutex serializes ingests so two concurrent deltas (both derived from
//!   the same base) cannot silently lose one another's writes.
//!
//! Readers never block writers and writers never block readers; the only
//! contention is the pointer swap. Old snapshots are freed when their last
//! reader drops them.

use crate::engine::SearchEngine;
use parking_lot::{Mutex, RwLock};
use patternkb_graph::mutate::{DeltaError, GraphDelta, PagerankMode};
use patternkb_index::RefreshStats;
use std::sync::Arc;

/// A queryable, mutable-by-swap handle shared across threads.
pub struct SharedEngine {
    current: RwLock<Arc<SearchEngine>>,
    /// Serializes writers; held across the (long) delta computation so a
    /// second ingest starts from the first one's result.
    writer: Mutex<()>,
}

impl SharedEngine {
    /// Wrap a freshly built engine.
    pub fn new(engine: SearchEngine) -> Self {
        SharedEngine {
            current: RwLock::new(Arc::new(engine)),
            writer: Mutex::new(()),
        }
    }

    /// An immutable snapshot of the current state. Queries, parsing, table
    /// composition — everything on [`SearchEngine`] — runs against it;
    /// it stays valid (and consistent) across later ingests.
    pub fn snapshot(&self) -> Arc<SearchEngine> {
        Arc::clone(&self.current.read())
    }

    /// The current data version (see [`SearchEngine::version`]).
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// Ingest a delta: compute the post-delta engine off-lock, then swap.
    ///
    /// The delta must be built against [`Self::snapshot`]'s graph. If
    /// another ingest landed in between, the graphs no longer line up and
    /// the delta is rejected by validation, so build deltas under your own
    /// coordination or immediately before calling this.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        mode: PagerankMode,
    ) -> Result<RefreshStats, DeltaError> {
        let _writing = self.writer.lock();
        // Base state: the latest snapshot (stable while `writer` is held).
        let base = self.snapshot();
        let (next, stats) = base.with_delta(delta, mode)?; // expensive, off the read lock
        *self.current.write() = Arc::new(next); // the only blocking moment
        Ok(stats)
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedEngine {{ version: {} }}", self.version())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchConfig;
    use patternkb_datagen::figure1;
    use patternkb_index::BuildConfig;
    use patternkb_text::SynonymTable;

    fn shared() -> SharedEngine {
        let (g, _) = figure1();
        SharedEngine::new(SearchEngine::build(
            g,
            SynonymTable::new(),
            &BuildConfig { d: 3, threads: 1 },
        ))
    }

    fn ingest_vendor(s: &SharedEngine, step: usize) {
        let snap = s.snapshot();
        let g = snap.graph();
        let comp = g.type_by_text("Company").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(g);
        let v = d.add_node(comp, &format!("shared vendor {step}")).unwrap();
        d.add_text_edge(v, rev, &format!("US$ {step} million")).unwrap();
        s.apply_delta(&d, PagerankMode::Frozen).unwrap();
    }

    #[test]
    fn snapshots_stay_consistent_across_ingest() {
        let s = shared();
        let before = s.snapshot();
        let q_before = before.parse("company revenue").unwrap();
        let r_before = before.search(&q_before, &SearchConfig::top(100));

        ingest_vendor(&s, 1);
        assert_eq!(s.version(), 1);

        // The old snapshot still answers exactly as before.
        let r_again = before.search(&q_before, &SearchConfig::top(100));
        assert_eq!(r_before.patterns.len(), r_again.patterns.len());

        // A fresh snapshot sees the new vendor.
        let after = s.snapshot();
        let q_after = after.parse("vendor revenue").unwrap();
        let r_after = after.search(&q_after, &SearchConfig::top(100));
        assert_eq!(r_after.top().unwrap().num_trees, 1);
    }

    #[test]
    fn stale_delta_is_rejected_not_lost() {
        let s = shared();
        // Build a delta against version 0 …
        let old_snap = s.snapshot();
        let g = old_snap.graph();
        let comp = g.type_by_text("Company").unwrap();
        let mut stale = GraphDelta::new(g);
        stale.add_node(comp, "stale corp").unwrap();
        // … then let another ingest land first.
        ingest_vendor(&s, 7);
        // The stale delta's node-count bookkeeping no longer matches:
        // a typed error, never a silent lost-update.
        let err = s.apply_delta(&stale, PagerankMode::Frozen).unwrap_err();
        assert!(matches!(err, DeltaError::BaseMismatch { .. }));
        assert_eq!(s.version(), 1, "stale delta left the state untouched");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let s = shared();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Readers hammer snapshots while the writer ingests.
            for _ in 0..3 {
                scope.spawn(|| {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = s.snapshot();
                        let q = snap.parse("company revenue").unwrap();
                        let r = snap.search(&q, &SearchConfig::top(10));
                        // Every consistent state answers this query.
                        assert!(!r.patterns.is_empty());
                    }
                });
            }
            scope.spawn(|| {
                for step in 0..5 {
                    ingest_vendor(&s, step);
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(s.version(), 5);
        let snap = s.snapshot();
        let q = snap.parse("vendor").unwrap();
        let r = snap.search(&q, &SearchConfig::top(100));
        assert_eq!(r.top().unwrap().num_trees, 5);
    }

    #[test]
    fn writers_serialize() {
        // Two threads each ingest 3 entities; all 6 must land.
        let s = shared();
        std::thread::scope(|scope| {
            for t in 0..2 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..3 {
                        // Retry on conflict: the delta is rebuilt from the
                        // latest snapshot each attempt.
                        loop {
                            let snap = s.snapshot();
                            let g = snap.graph();
                            let comp = g.type_by_text("Company").unwrap();
                            let mut d = GraphDelta::new(g);
                            d.add_node(comp, &format!("writer {t} entity {i}")).unwrap();
                            match s.apply_delta(&d, PagerankMode::Frozen) {
                                Ok(_) => break,
                                Err(DeltaError::BaseMismatch { .. }) => continue,
                                Err(e) => panic!("unexpected delta error {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(s.version(), 6);
        let snap = s.snapshot();
        let q = snap.parse("writer entity").unwrap();
        let r = snap.search(&q, &SearchConfig::top(100));
        assert_eq!(r.top().unwrap().num_trees, 6);
    }
}
