//! User-facing table presentation: friendly column names, column
//! ordering, and portable renderings (Markdown, CSV).
//!
//! The paper punts on this ("How to name and order columns in the table
//! answers in a more user-friendly way is also an important issue, but it
//! is out of scope of this paper"). This module implements the obvious
//! heuristics a production system needs:
//!
//! * **Naming.** The raw column name for an entity column is
//!   `"attr (Type)"`. When the attribute text already names the type
//!   ("publisher" → type `Publisher`), the duplicate is collapsed; names
//!   are title-cased; duplicate display names get a positional suffix so
//!   the header row is unambiguous.
//! * **Ordering.** Three policies: the paper's discovery order, a
//!   root-then-shallow order (compact interpretations read left to right),
//!   and entities-before-values (all join columns first, then the plain-
//!   text value cells, like a SQL projection).
//! * **Rendering.** GitHub-flavored Markdown (pipes escaped) and RFC-4180
//!   CSV (quotes doubled, cells with separators quoted).
//!
//! Presentation never alters the underlying [`TableAnswer`]; it produces a
//! new [`PresentedTable`] with a column permutation applied consistently to
//! headers and rows.

use crate::table::{ColumnMeta, TableAnswer};
use patternkb_graph::KnowledgeGraph;

/// Column ordering policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ColumnOrder {
    /// Keep the order columns were discovered in (the paper's implicit
    /// choice: keyword order, then depth).
    Discovery,
    /// Root first, then ascending depth, ties by first keyword — reads as
    /// "entity, its attributes, their attributes, …".
    #[default]
    RootThenDepth,
    /// All entity (join) columns by depth first, then the value columns —
    /// mirrors how a SQL projection lists keys before measures.
    EntitiesFirst,
}

/// Presentation knobs.
#[derive(Clone, Debug)]
pub struct PresentationConfig {
    /// Column ordering policy.
    pub order: ColumnOrder,
    /// Title-case headers ("annual revenue" → "Annual Revenue").
    pub title_case: bool,
    /// Truncate cells beyond this many characters with an ellipsis
    /// (`None` = never).
    pub max_cell_width: Option<usize>,
}

impl Default for PresentationConfig {
    fn default() -> Self {
        PresentationConfig {
            order: ColumnOrder::RootThenDepth,
            title_case: true,
            max_cell_width: None,
        }
    }
}

/// A presentation-ready table: renamed, reordered, render-to-anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PresentedTable {
    /// Display headers after renaming/dedup, in presentation order.
    pub columns: Vec<String>,
    /// Rows with the same column permutation applied.
    pub rows: Vec<Vec<String>>,
}

/// Build the presentation of `table` under `cfg`.
pub fn present(
    g: &KnowledgeGraph,
    table: &TableAnswer,
    cfg: &PresentationConfig,
) -> PresentedTable {
    let n = table.columns.len();
    debug_assert_eq!(table.meta.len(), n);

    // --- column permutation ---
    let mut perm: Vec<usize> = (0..n).collect();
    match cfg.order {
        ColumnOrder::Discovery => {}
        ColumnOrder::RootThenDepth => {
            perm.sort_by_key(|&i| {
                let m = &table.meta[i];
                (m.depth, m.first_keyword, i)
            });
        }
        ColumnOrder::EntitiesFirst => {
            perm.sort_by_key(|&i| {
                let m = &table.meta[i];
                (m.is_value, m.depth, m.first_keyword, i)
            });
        }
    }

    // --- friendly names ---
    let mut columns: Vec<String> = perm
        .iter()
        .map(|&i| friendly_name(g, &table.meta[i], cfg.title_case))
        .collect();
    dedupe_names(&mut columns);

    // --- rows ---
    let clip = |cell: &str| -> String {
        match cfg.max_cell_width {
            Some(w) if cell.chars().count() > w.max(1) => {
                let mut s: String = cell.chars().take(w.max(1).saturating_sub(1)).collect();
                s.push('…');
                s
            }
            _ => cell.to_string(),
        }
    };
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| perm.iter().map(|&i| clip(&row[i])).collect())
        .collect();

    PresentedTable { columns, rows }
}

/// The display name of one column from its provenance.
fn friendly_name(g: &KnowledgeGraph, m: &ColumnMeta, title: bool) -> String {
    let name = match (m.attr, m.node_type) {
        // Root column: the entity type ("Software"), or a generic header
        // for text-typed roots.
        (None, Some(t)) => {
            if t == KnowledgeGraph::TEXT_TYPE {
                "Value".to_string()
            } else {
                g.type_text(t).to_string()
            }
        }
        // Entity column: attribute + type, collapsed when redundant.
        (Some(a), Some(t)) => {
            let attr = g.attr_text(a);
            if t == KnowledgeGraph::TEXT_TYPE {
                attr.to_string()
            } else {
                let ty = g.type_text(t);
                if attr.eq_ignore_ascii_case(ty)
                    || attr
                        .to_ascii_lowercase()
                        .ends_with(&ty.to_ascii_lowercase())
                {
                    ty.to_string()
                } else {
                    format!("{attr} ({ty})")
                }
            }
        }
        // Value column of an edge match: the attribute alone (Figure 3's
        // "Revenue").
        (Some(a), None) => g.attr_text(a).to_string(),
        (None, None) => "Value".to_string(),
    };
    if title {
        title_case(&name)
    } else {
        name
    }
}

/// Title-case words outside parentheses content that is already cased.
fn title_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut start_of_word = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if start_of_word {
                out.extend(ch.to_uppercase());
            } else {
                out.push(ch);
            }
            start_of_word = false;
        } else {
            out.push(ch);
            start_of_word = true;
        }
    }
    out
}

/// Suffix repeated display names with their occurrence index.
fn dedupe_names(names: &mut [String]) {
    for i in 0..names.len() {
        let mut count = 1;
        for j in (i + 1)..names.len() {
            if names[j] == names[i] {
                count += 1;
                names[j] = format!("{} ({})", names[j], count);
            }
        }
        if count > 1 {
            // Suffix the first occurrence too, for symmetry.
            names[i] = format!("{} (1)", names[i]);
        }
    }
}

impl PresentedTable {
    /// GitHub-flavored Markdown, pipes escaped.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        out.push('|');
        for c in &self.columns {
            out.push(' ');
            out.push_str(&esc(c));
            out.push_str(" |");
        }
        out.push('\n');
        out.push('|');
        for _ in &self.columns {
            out.push_str(" --- |");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for c in 0..self.columns.len() {
                out.push(' ');
                out.push_str(&esc(row.get(c).map(String::as_str).unwrap_or("")));
                out.push_str(" |");
            }
            out.push('\n');
        }
        out
    }

    /// RFC-4180 CSV: cells containing commas, quotes or newlines are
    /// quoted; quotes are doubled.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            let line = (0..self.columns.len())
                .map(|c| field(row.get(c).map(String::as_str).unwrap_or("")))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::QueryContext;
    use crate::linear_enum::linear_enum;
    use crate::{Query, SearchConfig};
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn figure3_table() -> (TableAnswer, patternkb_graph::KnowledgeGraph) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(10));
        let table = TableAnswer::from_pattern(&g, r.top().unwrap());
        (table, g)
    }

    #[test]
    fn root_leads_in_depth_order() {
        let (table, g) = figure3_table();
        let p = present(&g, &table, &PresentationConfig::default());
        assert_eq!(p.columns[0], "Software");
        // Depths must be non-decreasing under RootThenDepth.
        let depth_of = |name: &str| {
            table
                .meta
                .iter()
                .zip(&table.columns)
                .find(|(_, c)| title_case(c).starts_with(name.split(" (").next().unwrap()))
                .map(|(m, _)| m.depth)
        };
        let _ = depth_of; // depths checked structurally below
        let depths: Vec<usize> = {
            let mut perm: Vec<usize> = (0..table.columns.len()).collect();
            perm.sort_by_key(|&i| (table.meta[i].depth, table.meta[i].first_keyword, i));
            perm.iter().map(|&i| table.meta[i].depth).collect()
        };
        assert!(depths.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn entities_first_puts_value_columns_last() {
        let (table, g) = figure3_table();
        let cfg = PresentationConfig {
            order: ColumnOrder::EntitiesFirst,
            ..PresentationConfig::default()
        };
        let p = present(&g, &table, &cfg);
        // "Revenue" is the only value column; it must be last.
        assert_eq!(p.columns.last().unwrap(), "Revenue");
    }

    #[test]
    fn discovery_order_preserves_raw_layout() {
        let (table, g) = figure3_table();
        let cfg = PresentationConfig {
            order: ColumnOrder::Discovery,
            title_case: false,
            max_cell_width: None,
        };
        let p = present(&g, &table, &cfg);
        assert_eq!(p.rows, table.rows);
    }

    #[test]
    fn rows_follow_column_permutation() {
        let (table, g) = figure3_table();
        let p = present(&g, &table, &PresentationConfig::default());
        // Every original row multiset survives the permutation.
        for (orig, shown) in table.rows.iter().zip(&p.rows) {
            let mut a = orig.clone();
            let mut b = shown.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        // And the SQL Server row keeps its revenue.
        let sql_row = p
            .rows
            .iter()
            .find(|r| r.iter().any(|c| c == "SQL Server"))
            .unwrap();
        assert!(sql_row.iter().any(|c| c == "US$ 77 billion"));
    }

    #[test]
    fn redundant_attr_type_collapses() {
        // attr "publisher" into type "Publisher" → single word.
        let mut b = patternkb_graph::GraphBuilder::new();
        let book = b.add_type("Book");
        let publisher = b.add_type("Publisher");
        let pub_attr = b.add_attr("publisher");
        let bk = b.add_node(book, "Systems and databases");
        let sp = b.add_node(publisher, "Springer");
        b.add_edge(bk, pub_attr, sp);
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "springer databases").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(10));
        let table = TableAnswer::from_pattern(&g, r.top().unwrap());
        let p = present(&g, &table, &PresentationConfig::default());
        assert!(
            p.columns.iter().any(|c| c == "Publisher"),
            "collapsed header expected, got {:?}",
            p.columns
        );
        assert!(!p
            .columns
            .iter()
            .any(|c| c.contains("publisher (Publisher)")));
    }

    #[test]
    fn duplicate_headers_are_suffixed() {
        let mut names = vec![
            "Company".to_string(),
            "Revenue".to_string(),
            "Company".to_string(),
            "Company".to_string(),
        ];
        dedupe_names(&mut names);
        assert_eq!(
            names,
            ["Company (1)", "Revenue", "Company (2)", "Company (3)"]
        );
    }

    #[test]
    fn title_casing() {
        assert_eq!(title_case("annual revenue"), "Annual Revenue");
        assert_eq!(title_case("written in"), "Written In");
        assert_eq!(title_case("US$ 77"), "US$ 77");
        assert_eq!(title_case(""), "");
    }

    #[test]
    fn markdown_escapes_pipes() {
        let p = PresentedTable {
            columns: vec!["A|B".into(), "C".into()],
            rows: vec![vec!["x|y".into(), "z".into()]],
        };
        let md = p.to_markdown();
        assert!(md.contains("A\\|B"));
        assert!(md.contains("x\\|y"));
        assert_eq!(md.lines().count(), 3);
        assert!(md.lines().nth(1).unwrap().contains("---"));
    }

    #[test]
    fn csv_quotes_correctly() {
        let p = PresentedTable {
            columns: vec!["name".into(), "note".into()],
            rows: vec![
                vec!["plain".into(), "a,b".into()],
                vec!["with \"quote\"".into(), "line\nbreak".into()],
            ],
        };
        let csv = p.to_csv();
        let lines: Vec<&str> = csv.split('\n').collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert!(lines[2].starts_with("\"with \"\"quote\"\"\""));
    }

    #[test]
    fn cell_clipping() {
        let (table, g) = figure3_table();
        let cfg = PresentationConfig {
            max_cell_width: Some(6),
            ..PresentationConfig::default()
        };
        let p = present(&g, &table, &cfg);
        for row in &p.rows {
            for cell in row {
                assert!(cell.chars().count() <= 6, "clipped cell {cell:?}");
            }
        }
        assert!(p.rows.iter().flatten().any(|c| c.ends_with('…')));
    }

    #[test]
    fn markdown_of_figure3_has_all_rows() {
        let (table, g) = figure3_table();
        let p = present(&g, &table, &PresentationConfig::default());
        let md = p.to_markdown();
        assert!(md.contains("SQL Server"));
        assert!(md.contains("Oracle DB"));
        assert_eq!(md.lines().count(), 2 + table.rows.len());
    }
}
