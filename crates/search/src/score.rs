//! The scoring-function class of §2.2.3 (Eqs. (2)–(6)).
//!
//! A valid subtree's score multiplies three decomposable factors:
//!
//! ```text
//! score(T, q) = score1(T,q)^z1 · score2(T,q)^z2 · score3(T,q)^z3
//!   score1 = Σ_w |T(w)|        (path sizes; z1 = −1 prefers compact trees)
//!   score2 = Σ_w PR(f(w))      (PageRank of matched nodes)
//!   score3 = Σ_w sim(w, f(w))  (Jaccard similarity of keyword matches)
//! ```
//!
//! and a tree pattern aggregates subtree scores — `Sum` by default, with
//! `Avg`, `Max` and `Count` as the alternatives the paper names.
//!
//! Every factor is a sum over per-keyword paths, so the per-path terms
//! `(len, pagerank, sim)` precomputed in the path index are all a search
//! algorithm ever reads.

use patternkb_index::Posting;

/// How subtree scores aggregate into a pattern score (Eq. (2) and the
/// surrounding discussion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// `score(P) = Σ_T score(T)` — favors patterns with many subtrees
    /// (the paper's running choice).
    Sum,
    /// Mean subtree score — favors individually strong subtrees.
    Avg,
    /// Best subtree score.
    Max,
    /// Plain subtree count.
    Count,
}

/// Scoring parameters; defaults are the paper's (`z1 = −1, z2 = z3 = 1`,
/// `Sum` aggregation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoringConfig {
    /// Exponent on `score1` (tree size).
    pub z1: f64,
    /// Exponent on `score2` (PageRank mass).
    pub z2: f64,
    /// Exponent on `score3` (keyword similarity).
    pub z3: f64,
    /// Pattern-level aggregation.
    pub aggregation: Aggregation,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig {
            z1: -1.0,
            z2: 1.0,
            z3: 1.0,
            aggregation: Aggregation::Sum,
        }
    }
}

impl ScoringConfig {
    /// Score one valid subtree from the per-keyword factor sums
    /// (`Σ|T(w)|`, `ΣPR`, `Σsim`).
    #[inline]
    pub fn tree_score(&self, len_sum: f64, pr_sum: f64, sim_sum: f64) -> f64 {
        powz(len_sum, self.z1) * powz(pr_sum, self.z2) * powz(sim_sum, self.z3)
    }

    /// Score a subtree given its chosen per-keyword postings.
    #[inline]
    pub fn tree_score_of(&self, postings: &[&Posting]) -> f64 {
        let mut len = 0.0;
        let mut pr = 0.0;
        let mut sim = 0.0;
        for p in postings {
            len += p.score_len() as f64;
            pr += p.pagerank;
            sim += p.sim;
        }
        self.tree_score(len, pr, sim)
    }
}

/// `x^z` with the convention `0^0 = 1` and `x ≤ 0 → 0` for fractional `z`
/// (factor sums are non-negative by construction; a zero similarity sum
/// yields a zero score under the default `z3 = 1`). Public because the
/// admissible bounds in [`crate::bound`] must use the *same* exponentiation
/// convention as the scores they bound.
#[inline]
pub fn powz(x: f64, z: f64) -> f64 {
    if z == 0.0 {
        1.0
    } else if z == 1.0 {
        x
    } else if z == -1.0 {
        if x == 0.0 {
            0.0
        } else {
            1.0 / x
        }
    } else {
        x.powf(z)
    }
}

/// Maximum non-overlapping partials an exact f64 sum can need: the finite
/// double exponent range (including subnormals) spans ~2098 bits, i.e. at
/// most ⌈2098 / 53⌉ + slack non-overlapping mantissas.
const MAX_PARTIALS: usize = 44;

/// Exactly-rounded, **order-independent** summation of `f64`s — Shewchuk's
/// non-overlapping-partials algorithm (the one behind Python's
/// `math.fsum`), with a fixed-capacity partial array so the accumulator
/// stays `Copy`.
///
/// Why exactness matters here: the shard layer splits every pattern's
/// subtree set across root-range shards and merges partial accumulators at
/// the top-k heap. Naive `+=` folds associate differently under different
/// shard counts, so scores would drift by ULPs and "sharded == unsharded"
/// could only hold approximately. With an exact sum the value is the
/// correctly-rounded real sum no matter how the pushes were grouped, which
/// is what makes sharded execution **bit-identical** to single-shard (and
/// is proptest-enforced in `tests/shard_equivalence.rs`).
#[derive(Clone, Copy, Debug)]
pub struct ExactSum {
    /// Non-overlapping partials, increasing magnitude; `partials[..len]`.
    partials: [f64; MAX_PARTIALS],
    len: usize,
    /// Non-finite inputs accumulate separately (inf/NaN would corrupt the
    /// two-sum identities); added back in [`Self::value`].
    nonfinite: f64,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum {
            partials: [0.0; MAX_PARTIALS],
            len: 0,
            nonfinite: 0.0,
        }
    }
}

impl ExactSum {
    /// Add one value.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.nonfinite += x;
            return;
        }
        let mut x = x;
        let mut i = 0;
        for j in 0..self.len {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        debug_assert!(i < MAX_PARTIALS, "exact sum partials overflow");
        self.partials[i] = x;
        self.len = i + 1;
    }

    /// Fold another exact sum in; the result is the exact sum of all inputs
    /// to both, so merging is associative and commutative.
    pub fn merge(&mut self, other: &ExactSum) {
        for j in 0..other.len {
            self.push(other.partials[j]);
        }
        self.nonfinite += other.nonfinite;
    }

    /// The correctly-rounded total (Python `fsum`'s rounding, including the
    /// round-half-even correction).
    pub fn value(&self) -> f64 {
        if self.nonfinite != 0.0 || self.nonfinite.is_nan() {
            return self.nonfinite;
        }
        let p = &self.partials[..self.len];
        if p.is_empty() {
            return 0.0;
        }
        let mut n = p.len();
        let mut hi = p[n - 1];
        let mut lo = 0.0;
        while n > 1 {
            n -= 1;
            let x = hi;
            let y = p[n - 1];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Round half to even: if the remainder and the next partial agree
        // in sign, `hi` may need a one-ulp nudge.
        if n > 1 && ((lo < 0.0 && p[n - 2] < 0.0) || (lo > 0.0 && p[n - 2] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// Streaming aggregation of subtree scores into a pattern score.
///
/// The sum is kept **exactly** (see [`ExactSum`]), so accumulators for
/// disjoint subtree subsets — e.g. one per index shard — merge into the
/// same final score bits as a single sequential fold.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScoreAcc {
    /// Exact sum of subtree scores.
    sum: ExactSum,
    /// Maximum subtree score.
    pub max: f64,
    /// Number of subtrees.
    pub count: u64,
}

impl ScoreAcc {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one subtree score in.
    #[inline]
    pub fn push(&mut self, tree_score: f64) {
        self.sum.push(tree_score);
        self.max = self.max.max(tree_score);
        self.count += 1;
    }

    /// Merge another accumulator (used when a pattern's subtrees are found
    /// under several roots/partitions/shards). Exact: the merged sum equals
    /// the sum over the union, bit for bit, regardless of how the pushes
    /// were split.
    pub fn merge(&mut self, other: &ScoreAcc) {
        self.sum.merge(&other.sum);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// The correctly-rounded sum of pushed scores.
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// The pattern score under `agg`.
    pub fn finish(&self, agg: Aggregation) -> f64 {
        match agg {
            Aggregation::Sum => self.sum(),
            Aggregation::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum() / self.count as f64
                }
            }
            Aggregation::Max => self.max,
            Aggregation::Count => self.count as f64,
        }
    }

    /// The sampling-corrected pattern score: with root-sampling rate
    /// `rate`, `Sum` and `Count` are Horvitz–Thompson scaled by `1/rate`
    /// (unbiased, Theorem 5); `Avg` and `Max` are returned unscaled (the
    /// sample mean/max are the natural estimators).
    pub fn finish_estimated(&self, agg: Aggregation, rate: f64) -> f64 {
        match agg {
            Aggregation::Sum => self.sum() / rate,
            Aggregation::Count => self.count as f64 / rate,
            Aggregation::Avg | Aggregation::Max => self.finish(agg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let s = ScoringConfig::default();
        assert_eq!(s.z1, -1.0);
        assert_eq!(s.z2, 1.0);
        assert_eq!(s.z3, 1.0);
        assert_eq!(s.aggregation, Aggregation::Sum);
    }

    #[test]
    fn example_24_arithmetic() {
        // T1: score1 = 8, score2 = 4, score3 = 3.5  → 4·3.5/8 = 1.75
        // T3: score1 = 7, score2 = 4, score3 = 7/3  → 4·(7/3)/7 = 4/3
        let s = ScoringConfig::default();
        let t1 = s.tree_score(8.0, 4.0, 3.5);
        assert!((t1 - 1.75).abs() < 1e-12);
        let t3 = s.tree_score(7.0, 4.0, 0.5 / 3.0 + 0.5 / 3.0 + 1.0 + 1.0);
        assert!((t3 - 4.0 / 3.0).abs() < 1e-12);
        // P1 = {T1, T2} with score(T2) = score(T1) → score(P1) = 3.5
        // P2 = {T3} → 4/3. So score(P1) > score(P2) (Example 2.4).
        let p1 = t1 + t1;
        assert!(p1 > t3);
    }

    #[test]
    fn aggregations() {
        let mut acc = ScoreAcc::new();
        acc.push(1.0);
        acc.push(3.0);
        acc.push(2.0);
        assert_eq!(acc.finish(Aggregation::Sum), 6.0);
        assert_eq!(acc.finish(Aggregation::Avg), 2.0);
        assert_eq!(acc.finish(Aggregation::Max), 3.0);
        assert_eq!(acc.finish(Aggregation::Count), 3.0);
    }

    #[test]
    fn empty_accumulator() {
        let acc = ScoreAcc::new();
        assert_eq!(acc.finish(Aggregation::Sum), 0.0);
        assert_eq!(acc.finish(Aggregation::Avg), 0.0);
        assert_eq!(acc.finish(Aggregation::Count), 0.0);
    }

    #[test]
    fn merge() {
        let mut a = ScoreAcc::new();
        a.push(1.0);
        let mut b = ScoreAcc::new();
        b.push(5.0);
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum(), 8.0);
        assert_eq!(a.max, 5.0);
    }

    #[test]
    fn exact_sum_is_order_and_partition_independent() {
        // Values chosen so naive folds disagree across associations.
        let values: Vec<f64> = (0..200)
            .map(|i| {
                let x = (i as f64 + 1.0) * 0.1;
                x.sin().abs() * 10f64.powi((i % 13) - 6)
            })
            .collect();
        let mut whole = ExactSum::default();
        for &v in &values {
            whole.push(v);
        }
        // Any 2-way split merged must give the same bits.
        for cut in [1usize, 7, 50, 199] {
            let (lo, hi) = values.split_at(cut);
            let mut a = ExactSum::default();
            for &v in lo {
                a.push(v);
            }
            let mut b = ExactSum::default();
            for &v in hi {
                b.push(v);
            }
            a.merge(&b);
            assert_eq!(a.value().to_bits(), whole.value().to_bits(), "cut {cut}");
        }
        // Reversed insertion order too.
        let mut rev = ExactSum::default();
        for &v in values.iter().rev() {
            rev.push(v);
        }
        assert_eq!(rev.value().to_bits(), whole.value().to_bits());
    }

    #[test]
    fn exact_sum_is_correctly_rounded() {
        // 1 + 2^-60 repeated: naive summation loses the tail entirely.
        let mut s = ExactSum::default();
        s.push(1.0);
        for _ in 0..1u32 << 10 {
            s.push(2f64.powi(-60));
        }
        let expected = 1.0 + 2f64.powi(-50);
        assert_eq!(s.value().to_bits(), expected.to_bits());
    }

    #[test]
    fn exact_sum_nonfinite_inputs_degrade_like_naive() {
        let mut s = ExactSum::default();
        s.push(1.0);
        s.push(f64::INFINITY);
        assert_eq!(s.value(), f64::INFINITY);
    }

    #[test]
    fn estimation_scaling() {
        let mut acc = ScoreAcc::new();
        acc.push(2.0);
        acc.push(4.0);
        assert_eq!(acc.finish_estimated(Aggregation::Sum, 0.5), 12.0);
        assert_eq!(acc.finish_estimated(Aggregation::Count, 0.1), 20.0);
        assert_eq!(acc.finish_estimated(Aggregation::Max, 0.1), 4.0);
        assert_eq!(acc.finish_estimated(Aggregation::Avg, 0.1), 3.0);
    }

    #[test]
    fn zero_factor_behaviour() {
        let s = ScoringConfig::default();
        // Zero size sum can't occur, but must not produce inf/NaN.
        assert_eq!(s.tree_score(0.0, 1.0, 1.0), 0.0);
        assert!(s.tree_score(4.0, 0.0, 1.0) == 0.0);
    }

    #[test]
    fn custom_exponents() {
        let s = ScoringConfig {
            z1: -2.0,
            z2: 0.5,
            z3: 0.0,
            aggregation: Aggregation::Sum,
        };
        let v = s.tree_score(2.0, 4.0, 123.0);
        assert!((v - (2.0f64.powf(-2.0) * 2.0)).abs() < 1e-12);
    }
}
