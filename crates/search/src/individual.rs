//! Individual-subtree ranking (§5.3).
//!
//! The paper contrasts top-k *individual* valid subtrees (ranked by
//! Eq. (3)) against top-k *tree patterns*: around half the top individual
//! subtrees have "singular" patterns and vanish from the pattern answers,
//! while up to 70% of the top patterns are invisible among the top
//! individual subtrees (Figure 13). This module computes both sides of
//! that comparison.

use crate::common::{for_each_path_tuple, run_sharded, QueryContext, ShardContext};
use crate::result::RankedPattern;
use crate::subtree::ValidSubtree;
use crate::SearchConfig;
use patternkb_index::Posting;

/// One top individual subtree plus its tree-pattern key (for membership
/// tests against pattern answers).
#[derive(Clone, Debug)]
pub struct ScoredTree {
    /// The subtree.
    pub tree: ValidSubtree,
    /// Flattened per-keyword pattern-id key (same space as
    /// [`crate::common::TreeDict`] keys).
    pub pattern_key: Vec<u32>,
}

/// Enumerate all valid subtrees and keep the `k` best by Eq. (3), ties
/// broken by (root, pattern key) for determinism. Shard-parallel: each
/// shard keeps its local top-k, and the per-shard lists merge under the
/// same total order — the selection is order-free, so the result matches
/// a single-shard pass exactly.
pub fn top_individual(ctx: &QueryContext<'_>, cfg: &SearchConfig, k: usize) -> Vec<ScoredTree> {
    let locals = run_sharded(&ctx.shards, |shard| top_individual_shard(shard, cfg, k));
    let mut best: Vec<ScoredTree> = locals.into_iter().flatten().collect();
    sort_trees(&mut best);
    best.truncate(k);
    best
}

/// One shard's top-k individual subtrees.
fn top_individual_shard(ctx: &ShardContext<'_>, cfg: &SearchConfig, k: usize) -> Vec<ScoredTree> {
    let m = ctx.m();
    let mut best: Vec<ScoredTree> = Vec::new();
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    for &r in ctx.candidate_roots() {
        let runs: Vec<Vec<_>> = ctx.words.iter().map(|w| w.root_runs(r).collect()).collect();
        if runs.iter().any(Vec::is_empty) {
            continue;
        }
        let mut combo = vec![0usize; m];
        loop {
            let slices: Vec<&[Posting]> = (0..m).map(|i| runs[i][combo[i]].1).collect();
            let key: Vec<u32> = (0..m).map(|i| (runs[i][combo[i]].0).0).collect();
            for_each_path_tuple(&slices, &mut scratch, |tuple| {
                let score = cfg.scoring.tree_score_of(tuple);
                // Cheap reject against the current kth best.
                if best.len() >= k {
                    if let Some(worst) = best.last() {
                        if score <= worst.tree.score {
                            return;
                        }
                    }
                }
                let tree = crate::common::materialize_tree(&ctx.words, r, tuple, score);
                best.push(ScoredTree {
                    tree,
                    pattern_key: key.clone(),
                });
                sort_trees(&mut best);
                best.truncate(k);
            });
            // Odometer over pattern combos.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                combo[pos] += 1;
                if combo[pos] < runs[pos].len() {
                    break;
                }
                combo[pos] = 0;
            }
            if done {
                break;
            }
        }
    }
    best
}

fn sort_trees(trees: &mut [ScoredTree]) {
    trees.sort_by(|a, b| {
        b.tree
            .score
            .partial_cmp(&a.tree.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.tree.root.cmp(&b.tree.root))
            .then_with(|| a.pattern_key.cmp(&b.pattern_key))
    });
}

/// The Figure-13 metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageMetrics {
    /// Fraction of the top-k individual subtrees whose pattern appears
    /// among the top-k tree patterns ("coverage", left plot).
    pub coverage: f64,
    /// Fraction of the top-k tree patterns containing **no** top-k
    /// individual subtree ("new tree patterns", right plot).
    pub new_patterns: f64,
}

/// Compare top individual subtrees against top patterns.
///
/// `pattern_keys` are the flattened keys of the top-k patterns (e.g. from
/// [`pattern_key_of`]).
pub fn coverage(trees: &[ScoredTree], pattern_keys: &[Vec<u32>]) -> CoverageMetrics {
    if trees.is_empty() || pattern_keys.is_empty() {
        return CoverageMetrics {
            coverage: 0.0,
            new_patterns: if pattern_keys.is_empty() { 0.0 } else { 1.0 },
        };
    }
    let covered = trees
        .iter()
        .filter(|t| pattern_keys.iter().any(|k| k == &t.pattern_key))
        .count();
    let new = pattern_keys
        .iter()
        .filter(|k| trees.iter().all(|t| &t.pattern_key != *k))
        .count();
    CoverageMetrics {
        coverage: covered as f64 / trees.len() as f64,
        new_patterns: new as f64 / pattern_keys.len() as f64,
    }
}

/// The flattened pattern key of a ranked pattern (encode each per-keyword
/// path pattern through the context's interner).
pub fn pattern_key_of(ctx: &QueryContext<'_>, p: &RankedPattern) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(p.pattern.len());
    for pat in &p.pattern {
        key.push(ctx.idx.patterns().get_key(&pat.encode())?.0);
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn top_trees_are_sorted_and_bounded() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let trees = top_individual(&ctx, &SearchConfig::default(), 3);
        assert_eq!(trees.len(), 3); // 10 subtrees exist in total
        for w in trees.windows(2) {
            assert!(w[0].tree.score >= w[1].tree.score);
        }
    }

    #[test]
    fn all_trees_when_k_large() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let trees = top_individual(&ctx, &SearchConfig::default(), 100);
        assert_eq!(trees.len(), 10);
    }

    #[test]
    fn best_individual_matches_best_pattern_score_scale() {
        // The best individual subtree is T1 or T2 (score 1.75 each).
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let trees = top_individual(&ctx, &SearchConfig::default(), 1);
        assert!((trees[0].tree.score - 1.75).abs() < 1e-9);
    }

    #[test]
    fn coverage_metrics() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(2);
        let patterns = linear_enum(&ctx, &cfg);
        let keys: Vec<Vec<u32>> = patterns
            .patterns
            .iter()
            .filter_map(|p| pattern_key_of(&ctx, p))
            .collect();
        assert_eq!(keys.len(), patterns.patterns.len());
        let trees = top_individual(&ctx, &cfg, 2);
        let m = coverage(&trees, &keys);
        assert!((0.0..=1.0).contains(&m.coverage));
        assert!((0.0..=1.0).contains(&m.new_patterns));
        // Top-2 individual trees are T1/T2, both of pattern P1, which is the
        // top pattern → full coverage.
        assert_eq!(m.coverage, 1.0);
    }

    #[test]
    fn empty_inputs() {
        let m = coverage(&[], &[]);
        assert_eq!(m.coverage, 0.0);
        assert_eq!(m.new_patterns, 0.0);
    }
}
