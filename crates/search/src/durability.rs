//! The durable-ingest handle: the write-ahead log plus background
//! checkpointing, attached to a [`crate::SharedEngine`] by
//! [`crate::EngineBuilder::data_dir`].
//!
//! Layout of a data directory:
//!
//! ```text
//! <dir>/wal.log                      the delta log (patternkb_wal::log)
//! <dir>/checkpoint-<version>.pkbc    graph+index snapshots (newest 2 kept)
//! ```
//!
//! The contract the serving layer builds on: **an ingest is acknowledged
//! only after its delta record is durable under the configured
//! [`FsyncPolicy`], and a delta that never became durable is never
//! visible to readers.** The write path appends the serialized delta
//! *before* the engine pointer swap; the swap happens only after
//! [`Wal::sync`] returns. On an fsync failure the log poisons itself, so
//! the not-yet-published engine states are abandoned rather than served.
//!
//! Checkpointing runs on a background thread: once the log passes the
//! size or record-count threshold, the current engine is frozen into a
//! `checkpoint-<version>.pkbc` file and the log is atomically truncated
//! to the records past that version ([`Wal::rotate`]) — keeping boot cost
//! `O(checkpoint + tail)` instead of `O(history)`.

use crate::engine::SearchEngine;
use patternkb_graph::mutate::{GraphDelta, PagerankMode};
use patternkb_graph::snapshot::SnapshotError;
use patternkb_wal::checkpoint::{self, Checkpoint};
use patternkb_wal::{FsyncPolicy, FsyncStats, Ticket, Wal};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// File name of the delta log inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// How many checkpoint files [`Durability`] keeps (the newest N); an
/// older one is the fallback if the newest is damaged on disk.
pub const CHECKPOINTS_KEPT: usize = 2;

/// Tuning for [`crate::EngineBuilder::data_dir`] boots.
#[derive(Clone, Debug)]
pub struct DurabilityOptions {
    /// When an ingest is acknowledged as durable (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Checkpoint once the log exceeds this many bytes.
    pub checkpoint_bytes: u64,
    /// Checkpoint once the log holds this many records.
    pub checkpoint_records: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Group(std::time::Duration::from_millis(5)),
            checkpoint_bytes: 64 << 20,
            checkpoint_records: 4096,
        }
    }
}

/// Serialize one ingest for the log: a [`PagerankMode`] byte followed by
/// the [`GraphDelta`] codec bytes.
pub fn encode_payload(mode: PagerankMode, delta: &GraphDelta) -> Vec<u8> {
    let mode = match mode {
        PagerankMode::Frozen => 0u8,
        PagerankMode::Recompute => 1u8,
    };
    let mut buf = Vec::with_capacity(1 + 64);
    buf.push(mode);
    buf.extend_from_slice(&delta.encode());
    buf
}

/// Inverse of [`encode_payload`].
pub fn decode_payload(payload: &[u8]) -> Result<(PagerankMode, GraphDelta), SnapshotError> {
    let (&mode, rest) = payload
        .split_first()
        .ok_or(SnapshotError::Truncated { offset: 0 })?;
    let mode = match mode {
        0 => PagerankMode::Frozen,
        1 => PagerankMode::Recompute,
        _ => return Err(SnapshotError::BadReference { offset: 0 }),
    };
    Ok((mode, GraphDelta::decode(rest)?))
}

/// One consistent reading of the durability counters, for `/metrics`.
#[derive(Clone, Debug)]
pub struct DurabilityMetrics {
    /// Records appended to the log over this process's lifetime.
    pub appended_total: u64,
    /// Current log size in bytes (shrinks when a checkpoint rotates it).
    pub log_bytes: u64,
    /// Records currently in the log.
    pub log_records: u64,
    /// Fsync latency histogram.
    pub fsync: FsyncStats,
    /// Checkpoints completed since boot.
    pub checkpoints_total: u64,
    /// Checkpoint attempts that failed since boot.
    pub checkpoint_failures: u64,
    /// Time since the last completed checkpoint, if any.
    pub last_checkpoint_age: Option<std::time::Duration>,
    /// The configured fsync policy (exposed as a metric label).
    pub fsync_policy: FsyncPolicy,
}

struct CheckpointQueue {
    /// Engine state waiting to be checkpointed (latest wins).
    pending: Option<Arc<SearchEngine>>,
    shutdown: bool,
}

/// The durability handle owned by a [`crate::SharedEngine`] booted with
/// [`crate::EngineBuilder::data_dir`]: the open [`Wal`] plus the
/// background checkpointer.
pub struct Durability {
    wal: Arc<Wal>,
    dir: PathBuf,
    options: DurabilityOptions,
    queue: Arc<(Mutex<CheckpointQueue>, Condvar)>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    checkpoints_total: Arc<AtomicU64>,
    checkpoint_failures: Arc<AtomicU64>,
    last_checkpoint: Arc<Mutex<Option<Instant>>>,
}

impl Durability {
    /// Wrap an opened log. `dir` is where checkpoints are written.
    pub fn new(wal: Wal, dir: PathBuf, options: DurabilityOptions) -> Self {
        let wal = Arc::new(wal);
        let queue = Arc::new((
            Mutex::new(CheckpointQueue {
                pending: None,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let checkpoints_total = Arc::new(AtomicU64::new(0));
        let checkpoint_failures = Arc::new(AtomicU64::new(0));
        let last_checkpoint = Arc::new(Mutex::new(None));

        let worker = {
            let wal = Arc::clone(&wal);
            let dir = dir.clone();
            let queue = Arc::clone(&queue);
            let totals = Arc::clone(&checkpoints_total);
            let failures = Arc::clone(&checkpoint_failures);
            let last = Arc::clone(&last_checkpoint);
            std::thread::Builder::new()
                .name("wal-checkpointer".into())
                .spawn(move || loop {
                    let engine = {
                        let (lock, cv) = &*queue;
                        let mut q = lock.lock().expect("checkpoint queue lock");
                        loop {
                            if let Some(e) = q.pending.take() {
                                break e;
                            }
                            if q.shutdown {
                                return;
                            }
                            q = cv.wait(q).expect("checkpoint queue lock poisoned");
                        }
                    };
                    match write_checkpoint(&wal, &dir, &engine) {
                        Ok(_) => {
                            totals.fetch_add(1, Ordering::Relaxed);
                            *last.lock().expect("last checkpoint lock") = Some(Instant::now());
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .expect("spawn wal-checkpointer")
        };

        Durability {
            wal,
            dir,
            options,
            queue,
            worker: Mutex::new(Some(worker)),
            checkpoints_total,
            checkpoint_failures,
            last_checkpoint,
        }
    }

    /// The data directory this handle persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying log (tests use [`Wal::poison`] through this to
    /// inject durability failures).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Append one compiled ingest to the log (not yet durable).
    pub fn append(
        &self,
        version: u64,
        mode: PagerankMode,
        delta: &GraphDelta,
    ) -> std::io::Result<Ticket> {
        self.wal.append(version, &encode_payload(mode, delta))
    }

    /// Block until the record behind `ticket` is durable per policy.
    pub fn sync(&self, ticket: Ticket) -> std::io::Result<()> {
        self.wal.sync(ticket)
    }

    /// Hand `engine` to the background checkpointer if the log has grown
    /// past either threshold. Non-blocking; a later, newer state replaces
    /// a queued one that has not started yet.
    pub fn maybe_checkpoint(&self, engine: &Arc<SearchEngine>) {
        if self.wal.log_bytes() < self.options.checkpoint_bytes
            && self.wal.log_records() < self.options.checkpoint_records
        {
            return;
        }
        let (lock, cv) = &*self.queue;
        let mut q = lock.lock().expect("checkpoint queue lock");
        q.pending = Some(Arc::clone(engine));
        cv.notify_one();
    }

    /// Checkpoint `engine` right now, synchronously (the
    /// `POST /admin/checkpoint` route). Returns the checkpoint file path.
    pub fn checkpoint_now(&self, engine: &SearchEngine) -> std::io::Result<PathBuf> {
        let path = write_checkpoint(&self.wal, &self.dir, engine)?;
        self.checkpoints_total.fetch_add(1, Ordering::Relaxed);
        *self.last_checkpoint.lock().expect("last checkpoint lock") = Some(Instant::now());
        Ok(path)
    }

    /// Snapshot of every counter the serving layer exports.
    pub fn metrics(&self) -> DurabilityMetrics {
        DurabilityMetrics {
            appended_total: self.wal.appended_total(),
            log_bytes: self.wal.log_bytes(),
            log_records: self.wal.log_records(),
            fsync: self.wal.fsync_stats(),
            checkpoints_total: self.checkpoints_total.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            last_checkpoint_age: self
                .last_checkpoint
                .lock()
                .expect("last checkpoint lock")
                .map(|t| t.elapsed()),
            fsync_policy: self.wal.policy(),
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        {
            let (lock, cv) = &*self.queue;
            let mut q = lock.lock().expect("checkpoint queue lock");
            q.shutdown = true;
            cv.notify_all();
        }
        if let Some(h) = self.worker.lock().expect("worker lock").take() {
            h.join().ok();
        }
    }
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Durability {{ dir: {:?}, policy: {} }}",
            self.dir,
            self.wal.policy()
        )
    }
}

/// Replay log records onto `engine` in order, skipping ones already
/// covered by its version and stopping at the first record that does not
/// follow — a version gap, an undecodable payload, or a delta the engine
/// rejects. Returns the byte offset such a record starts at (the caller
/// truncates the log there); `None` when everything replayed.
pub(crate) fn replay_records(
    engine: &mut SearchEngine,
    records: &[patternkb_wal::Record],
) -> Option<u64> {
    for rec in records {
        if rec.version <= engine.version() {
            continue;
        }
        if rec.version != engine.version() + 1 {
            return Some(rec.offset);
        }
        let Ok((mode, delta)) = decode_payload(&rec.payload) else {
            return Some(rec.offset);
        };
        if engine.apply_delta(&delta, mode).is_err() {
            return Some(rec.offset);
        }
    }
    None
}

/// Freeze `engine` into a checkpoint file, rotate the log past it, and
/// prune old checkpoints.
fn write_checkpoint(wal: &Wal, dir: &Path, engine: &SearchEngine) -> std::io::Result<PathBuf> {
    let cp = Checkpoint {
        version: engine.version(),
        graph: patternkb_graph::snapshot::encode(engine.graph()),
        // The index blob is a v5 container: a mapped-tier boot *opens*
        // it (lexicon parse only) instead of decoding it, and a heap
        // boot still decodes it via `snapshot::decode`'s magic dispatch.
        // Checkpoints written before v5 (PKBI blobs) stay readable.
        index: patternkb_index::storage::encode_v5(engine.index()),
    };
    let path = checkpoint::write(dir, &cp)?;
    wal.rotate(cp.version)?;
    checkpoint::prune(dir, CHECKPOINTS_KEPT)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_codec_roundtrips_both_modes() {
        let (g, _) = patternkb_datagen::figure1();
        let comp = g.type_by_text("Company").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(&g);
        let v = d.add_node(comp, "payload vendor").unwrap();
        d.add_text_edge(v, rev, "US$ 3 million").unwrap();
        for mode in [PagerankMode::Frozen, PagerankMode::Recompute] {
            let bytes = encode_payload(mode, &d);
            let (mode2, d2) = decode_payload(&bytes).unwrap();
            assert_eq!(mode, mode2);
            assert_eq!(d.encode(), d2.encode());
        }
        assert!(decode_payload(&[]).is_err());
        assert!(decode_payload(&[7, 1, 2, 3]).is_err(), "unknown mode byte");
    }
}
