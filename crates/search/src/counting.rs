//! Exact counting of tree patterns and valid subtrees.
//!
//! `COUNTPAT` — counting the d-height tree patterns of a query — is
//! #P-complete (Theorem 1), so no polynomial algorithm exists; these
//! functions do the honest exponential-in-output work and exist to
//!
//! * power the Theorem-1 reduction tests (`#patterns = (#s-t paths)²`), and
//! * bucket queries by answer counts for the §5 experiments (Figures 7–9
//!   group queries by #patterns / #subtrees).

use crate::common::{run_sharded, QueryContext};
use crate::intern::KeyInterner;

/// Exact number of d-height tree patterns for the query (distinct
/// per-keyword pattern-id tuples over all candidate roots). Shard-parallel
/// with a cross-shard union of the per-shard key sets (pattern ids are
/// global, so keys from different shards compare directly). Keys intern
/// into bump arenas — no per-combination boxing.
pub fn count_patterns(ctx: &QueryContext<'_>) -> u64 {
    let m = ctx.m();
    let mut locals: Vec<KeyInterner> = run_sharded(&ctx.shards, |shard| {
        let mut seen = KeyInterner::new(m);
        let mut key: Vec<u32> = vec![0; m];
        for &r in shard.candidate_roots() {
            let runs: Vec<&[u32]> = shard.words.iter().map(|w| w.patterns_of_root(r)).collect();
            debug_assert!(runs.iter().all(|r| !r.is_empty()));
            let mut combo = vec![0usize; m];
            loop {
                for i in 0..m {
                    key[i] = runs[i][combo[i]];
                }
                seen.intern(&key);
                let mut pos = m;
                let mut done = false;
                loop {
                    if pos == 0 {
                        done = true;
                        break;
                    }
                    pos -= 1;
                    combo[pos] += 1;
                    if combo[pos] < runs[pos].len() {
                        break;
                    }
                    combo[pos] = 0;
                }
                if done {
                    break;
                }
            }
        }
        seen
    });
    if locals.is_empty() {
        return 0;
    }
    // Union: re-intern each later shard's distinct keys into the first.
    let mut union = locals.remove(0);
    for local in locals {
        for (_, key) in local.iter() {
            union.intern(key);
        }
    }
    union.len() as u64
}

/// Exact number of valid subtrees `N = Σ_r Πᵢ |Paths(wᵢ, r)|`, computed
/// without enumeration (the quantity of Algorithm 4 line 4 and the x-axis
/// of Figure 9).
pub fn count_subtrees(ctx: &QueryContext<'_>) -> u64 {
    let mut total: u64 = 0;
    for shard in &ctx.shards {
        for &r in shard.candidate_roots() {
            let mut prod: u64 = 1;
            for w in &shard.words {
                prod = prod.saturating_mul(w.num_paths_of_root(r) as u64);
            }
            total = total.saturating_add(prod);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::{Query, SearchConfig};
    use patternkb_datagen::{figure1, theorem1};
    use patternkb_graph::traversal::count_simple_paths;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    #[test]
    fn figure1_counts() {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        assert_eq!(count_patterns(&ctx), 9);
        assert_eq!(count_subtrees(&ctx), 10);
        // Consistency with full enumeration.
        let le = linear_enum(&ctx, &SearchConfig::top(1000));
        assert_eq!(le.patterns.len() as u64, count_patterns(&ctx));
        assert_eq!(le.stats.subtrees as u64, count_subtrees(&ctx));
    }

    /// The Theorem-1 identity on the diamond graph: 2 s-t paths → 4 tree
    /// patterns.
    #[test]
    fn theorem1_diamond() {
        let edges = [(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        check_reduction(4, &edges, 0, 3);
    }

    /// Reduction identity on a graph with more path diversity.
    #[test]
    fn theorem1_three_paths() {
        // 0→3 directly, 0→1→3, 0→1→2→3 : 3 simple paths → 9 patterns.
        let edges = [(0usize, 3usize), (0, 1), (1, 3), (1, 2), (2, 3)];
        check_reduction(4, &edges, 0, 3);
    }

    /// Random digraphs: #patterns == (#simple s-t paths)².
    #[test]
    fn theorem1_random_graphs() {
        for seed in 0..12u64 {
            let n = 4 + (seed % 3) as usize; // 4..6 nodes → d ≤ 7 ≤ MAX_D
            let edges = theorem1::random_digraph(n, 0.4, seed);
            check_reduction(n, &edges, 0, n - 1);
        }
    }

    fn check_reduction(n: usize, edges: &[(usize, usize)], s: usize, t: usize) {
        let red = theorem1::reduce(n, edges, s, t);
        let g = &red.graph;
        let text = TextIndex::build(g, SynonymTable::new());
        let idx = build_indexes(
            g,
            &text,
            &BuildConfig {
                d: red.d,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&text, &format!("{} {}", red.query[0], red.query[1]));
        // Brute-force simple path count in one copy.
        let target = g
            .nodes()
            .find(|&v| g.node_text(v) == red.query[0])
            .expect("target copy exists");
        let expected_paths = count_simple_paths(g, red.root, target);
        match q {
            Ok(q) => {
                let ctx = QueryContext::new(g, &idx, &q).expect("context");
                assert_eq!(
                    count_patterns(&ctx),
                    expected_paths * expected_paths,
                    "reduction identity failed for n={n}, edges={edges:?}"
                );
            }
            Err(_) => {
                // The target word is unreachable (no s-t path): 0 patterns,
                // and indeed 0 paths. Parse fails only if the word is absent
                // from the KB entirely — it isn't (it's a node text), so
                // reaching here means the word exists; context must too.
                assert_eq!(expected_paths, 0);
            }
        }
    }
}
