//! The batteries-included facade: build once, query many times.

use crate::baseline::baseline;
use crate::common::QueryContext;
use crate::counting::{count_patterns, count_subtrees};
use crate::individual::{top_individual, ScoredTree};
use crate::linear_enum::linear_enum;
use crate::pattern_enum::pattern_enum;
use crate::result::SearchResult;
use crate::table::TableAnswer;
use crate::topk::{linear_enum_topk, SamplingConfig};
use crate::{ParseError, Query, SearchConfig};
use patternkb_graph::KnowledgeGraph;
use patternkb_index::{build_indexes, BuildConfig, PathIndexes};
use patternkb_text::{SynonymTable, TextIndex};

/// Which query algorithm to run (§5's Baseline / PETopK / LETopK).
#[derive(Clone, Copy, Debug, Default)]
pub enum Algorithm {
    /// Enumeration–aggregation over the raw graph (§2.3).
    Baseline,
    /// `PATTERNENUM` over the pattern-first index (Algorithm 2).
    #[default]
    PatternEnum,
    /// `PATTERNENUM` with admissible upper-bound pruning
    /// ([`crate::bound`]) — identical answers, fewer intersections.
    PatternEnumPruned,
    /// `LINEARENUM` over the root-first index (Algorithm 3), global dict.
    LinearEnum,
    /// `LINEARENUM-TOPK` with type partitioning and optional sampling
    /// (Algorithm 4).
    LinearEnumTopK(SamplingConfig),
}

/// A knowledge graph plus its text index and path indexes, ready to answer
/// keyword queries with table answers.
pub struct SearchEngine {
    g: KnowledgeGraph,
    text: TextIndex,
    idx: PathIndexes,
    /// Monotone data version; bumped by [`Self::apply_delta`]. Lets result
    /// caches ([`crate::cache`]) detect staleness.
    version: u64,
}

impl SearchEngine {
    /// Build the engine: text index, then both path indexes with height
    /// threshold `build_cfg.d`.
    pub fn build(g: KnowledgeGraph, synonyms: SynonymTable, build_cfg: &BuildConfig) -> Self {
        Self::build_with_stemmer(g, synonyms, patternkb_text::Stemmer::Lite, build_cfg)
    }

    /// Build with an explicit stemmer (see [`patternkb_text::Stemmer`] for
    /// the Lite/Porter/None trade-offs). The same stemmer is reused when
    /// the text index is rebuilt after [`Self::apply_delta`].
    pub fn build_with_stemmer(
        g: KnowledgeGraph,
        synonyms: SynonymTable,
        stemmer: patternkb_text::Stemmer,
        build_cfg: &BuildConfig,
    ) -> Self {
        let text = TextIndex::build_with(&g, synonyms, stemmer);
        let idx = build_indexes(&g, &text, build_cfg);
        SearchEngine {
            g,
            text,
            idx,
            version: 0,
        }
    }

    /// Build from pre-constructed parts (used by the bench harness to time
    /// index construction separately).
    pub fn from_parts(g: KnowledgeGraph, text: TextIndex, idx: PathIndexes) -> Self {
        SearchEngine {
            g,
            text,
            idx,
            version: 0,
        }
    }

    /// The current data version: 0 after build, +1 per applied delta.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Mutate the knowledge graph and incrementally refresh the indexes.
    ///
    /// The graph is replaced by `delta.apply(..)`, the text index is
    /// rebuilt (linear in the text), and the path indexes are refreshed by
    /// re-enumerating only roots within reverse distance `d − 1` of the
    /// delta's dirty nodes ([`patternkb_index::incremental`]). All existing
    /// node ids keep their meaning; the engine version is bumped so caches
    /// invalidate.
    ///
    /// Queries parsed *before* the mutation hold word ids from the old
    /// vocabulary and must be re-parsed.
    pub fn apply_delta(
        &mut self,
        delta: &patternkb_graph::mutate::GraphDelta,
        mode: patternkb_graph::mutate::PagerankMode,
    ) -> Result<patternkb_index::RefreshStats, patternkb_graph::mutate::DeltaError> {
        let (next, stats) = self.with_delta(delta, mode)?;
        *self = next;
        Ok(stats)
    }

    /// Non-mutating form of [`Self::apply_delta`]: computes the post-delta
    /// engine as a *new value* (version bumped), leaving `self` untouched.
    /// This is what lets [`crate::concurrent::SharedEngine`] keep serving
    /// queries from the old state while the refresh runs.
    pub fn with_delta(
        &self,
        delta: &patternkb_graph::mutate::GraphDelta,
        mode: patternkb_graph::mutate::PagerankMode,
    ) -> Result<(SearchEngine, patternkb_index::RefreshStats), patternkb_graph::mutate::DeltaError>
    {
        use patternkb_graph::mutate::PagerankMode as Pm;
        let new_g = delta.apply(&self.g, mode)?;
        let synonyms = self.text.vocab().synonyms().clone();
        let stemmer = self.text.vocab().stemmer();
        let new_text = TextIndex::build_with(&new_g, synonyms, stemmer);
        let (new_idx, stats) = patternkb_index::refresh_indexes(
            &self.idx,
            &self.g,
            &new_g,
            &self.text,
            &new_text,
            &delta.dirty_nodes(),
            mode == Pm::Recompute,
        );
        Ok((
            SearchEngine {
                g: new_g,
                text: new_text,
                idx: new_idx,
                version: self.version + 1,
            },
            stats,
        ))
    }

    /// The underlying knowledge graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.g
    }

    /// The text/keyword-match index.
    pub fn text(&self) -> &TextIndex {
        &self.text
    }

    /// The path indexes.
    pub fn index(&self) -> &PathIndexes {
        &self.idx
    }

    /// The height threshold `d` the engine was built for.
    pub fn d(&self) -> usize {
        self.idx.d()
    }

    /// Parse raw query text.
    pub fn parse(&self, input: &str) -> Result<Query, ParseError> {
        Query::parse(&self.text, input)
    }

    /// Run the default algorithm (`PATTERNENUM`, the paper's fastest in
    /// practice).
    pub fn search(&self, query: &Query, cfg: &SearchConfig) -> SearchResult {
        self.search_with(query, cfg, Algorithm::PatternEnum)
    }

    /// Run a specific algorithm.
    pub fn search_with(&self, query: &Query, cfg: &SearchConfig, algo: Algorithm) -> SearchResult {
        match algo {
            Algorithm::Baseline => baseline(&self.g, &self.text, query, cfg, self.idx.d()),
            _ => {
                let Some(ctx) = QueryContext::new(&self.g, &self.idx, query) else {
                    return SearchResult::default();
                };
                match algo {
                    Algorithm::PatternEnum => pattern_enum(&ctx, cfg),
                    Algorithm::PatternEnumPruned => crate::bound::pattern_enum_pruned(&ctx, cfg),
                    Algorithm::LinearEnum => linear_enum(&ctx, cfg),
                    Algorithm::LinearEnumTopK(samp) => linear_enum_topk(&ctx, cfg, &samp),
                    Algorithm::Baseline => unreachable!(),
                }
            }
        }
    }

    /// Estimate the query's cost drivers and run the algorithm the planner
    /// picks ([`crate::plan`]); returns the decision next to the result so
    /// callers can log or override it.
    pub fn search_auto(&self, query: &Query, cfg: &SearchConfig) -> (SearchResult, Algorithm) {
        self.search_auto_with(query, cfg, &crate::plan::PlannerConfig::default())
    }

    /// [`Self::search_auto`] with explicit planner thresholds.
    pub fn search_auto_with(
        &self,
        query: &Query,
        cfg: &SearchConfig,
        planner: &crate::plan::PlannerConfig,
    ) -> (SearchResult, Algorithm) {
        let algo = match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => crate::plan::choose(&crate::plan::estimate(&ctx), planner),
            None => Algorithm::PatternEnumPruned, // provably empty; any algorithm is O(1)
        };
        (self.search_with(query, cfg, algo), algo)
    }

    /// Run a whole query workload in parallel over `threads` OS threads
    /// (0 = available parallelism). The engine is immutable after build, so
    /// queries share it freely; results come back in input order.
    pub fn search_batch(
        &self,
        queries: &[Query],
        cfg: &SearchConfig,
        algo: Algorithm,
        threads: usize,
    ) -> Vec<SearchResult> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            return queries
                .iter()
                .map(|q| self.search_with(q, cfg, algo))
                .collect();
        }
        let mut results: Vec<Option<SearchResult>> = (0..queries.len()).map(|_| None).collect();
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (qs, out) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (q, slot) in qs.iter().zip(out.iter_mut()) {
                        *slot = Some(self.search_with(q, cfg, algo));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker filled every slot"))
            .collect()
    }

    /// Persist the built path indexes; reload with [`Self::load_index`] to
    /// skip the expensive Algorithm-1 construction (cf. Figure 6).
    pub fn save_index(&self, path: &std::path::Path) -> std::io::Result<()> {
        patternkb_index::snapshot::save(&self.idx, path)
    }

    /// Rebuild an engine from a graph plus a previously saved index
    /// snapshot. The synonym table must match the one used at build time
    /// (word ids are derived from it).
    pub fn load_index(
        g: KnowledgeGraph,
        synonyms: SynonymTable,
        path: &std::path::Path,
    ) -> std::io::Result<Self> {
        let text = TextIndex::build(&g, synonyms);
        let idx = patternkb_index::snapshot::load(path)?;
        Ok(SearchEngine {
            g,
            text,
            idx,
            version: 0,
        })
    }

    /// Top-k *individual* valid subtrees (§5.3).
    pub fn top_individual(&self, query: &Query, cfg: &SearchConfig, k: usize) -> Vec<ScoredTree> {
        match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => top_individual(&ctx, cfg, k),
            None => Vec::new(),
        }
    }

    /// Unified ranking mixing table answers with singular subtrees
    /// (§5.3 future work; see [`crate::unified`]).
    pub fn unified(
        &self,
        query: &Query,
        cfg: &SearchConfig,
        ucfg: &crate::unified::UnifiedConfig,
    ) -> Vec<crate::unified::UnifiedAnswer> {
        match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => crate::unified::unified_ranking(&ctx, cfg, ucfg),
            None => Vec::new(),
        }
    }

    /// Maximal answerable sub-queries of an unanswerable query
    /// ([`crate::relax`]). Empty when the query already has answers.
    pub fn relax(&self, query: &Query) -> Vec<crate::relax::Relaxation> {
        match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => crate::relax::relax(&ctx, query),
            None => Vec::new(),
        }
    }

    /// Exact number of d-height tree patterns for the query.
    pub fn count_patterns(&self, query: &Query) -> u64 {
        QueryContext::new(&self.g, &self.idx, query)
            .map(|ctx| count_patterns(&ctx))
            .unwrap_or(0)
    }

    /// Exact number of valid subtrees for the query.
    pub fn count_subtrees(&self, query: &Query) -> u64 {
        QueryContext::new(&self.g, &self.idx, query)
            .map(|ctx| count_subtrees(&ctx))
            .unwrap_or(0)
    }

    /// Compose the table answer for one ranked pattern.
    pub fn table(&self, pattern: &crate::result::RankedPattern) -> TableAnswer {
        TableAnswer::from_pattern(&self.g, pattern)
    }
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SearchEngine {{ graph: {:?}, index: {:?} }}",
            self.g, self.idx
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_datagen::figure1;
    use patternkb_graph::NodeId;

    fn engine() -> SearchEngine {
        let (g, _) = figure1();
        SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 1 })
    }

    #[test]
    fn end_to_end_figure1() {
        let e = engine();
        let q = e.parse("database software company revenue").unwrap();
        let r = e.search(&q, &SearchConfig::top(10));
        assert_eq!(r.patterns.len(), 9);
        let table = e.table(r.top().unwrap());
        assert_eq!(table.rows.len(), 2);
    }

    #[test]
    fn all_algorithms_agree() {
        let e = engine();
        let q = e.parse("database company").unwrap();
        let cfg = SearchConfig::top(100);
        let results: Vec<SearchResult> = [
            Algorithm::Baseline,
            Algorithm::PatternEnum,
            Algorithm::LinearEnum,
            Algorithm::LinearEnumTopK(SamplingConfig::exact()),
        ]
        .into_iter()
        .map(|a| e.search_with(&q, &cfg, a))
        .collect();
        for r in &results[1..] {
            assert_eq!(r.patterns.len(), results[0].patterns.len());
            for (a, b) in results[0].patterns.iter().zip(&r.patterns) {
                assert_eq!(a.key(), b.key());
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn counts_exposed() {
        let e = engine();
        let q = e.parse("database software company revenue").unwrap();
        assert_eq!(e.count_patterns(&q), 9);
        assert_eq!(e.count_subtrees(&q), 10);
    }

    #[test]
    fn individual_exposed() {
        let e = engine();
        let q = e.parse("database software company revenue").unwrap();
        let trees = e.top_individual(&q, &SearchConfig::default(), 3);
        assert_eq!(trees.len(), 3);
    }

    #[test]
    fn batch_matches_sequential() {
        let e = engine();
        let queries: Vec<Query> = ["database company", "revenue", "bill gates", "software"]
            .iter()
            .map(|s| e.parse(s).unwrap())
            .collect();
        let cfg = SearchConfig::top(10);
        let seq: Vec<SearchResult> = queries
            .iter()
            .map(|q| e.search_with(q, &cfg, Algorithm::PatternEnum))
            .collect();
        let par = e.search_batch(&queries, &cfg, Algorithm::PatternEnum, 3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.patterns.len(), b.patterns.len());
            for (x, y) in a.patterns.iter().zip(&b.patterns) {
                assert_eq!(x.key(), y.key());
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn index_snapshot_roundtrip_through_engine() {
        let e = engine();
        let dir = std::env::temp_dir().join("patternkb_engine_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.pkbi");
        e.save_index(&path).unwrap();
        let (g, _) = figure1();
        let reloaded = SearchEngine::load_index(g, SynonymTable::new(), &path).unwrap();
        std::fs::remove_file(&path).ok();
        let q = reloaded.parse("database software company revenue").unwrap();
        let r = reloaded.search(&q, &SearchConfig::top(10));
        assert_eq!(r.patterns.len(), 9);
        assert!((r.patterns[0].score - 3.5).abs() < 1e-9);
    }

    #[test]
    fn relax_and_unified_exposed() {
        let e = engine();
        // Unanswerable: no root reaches both oracle and gates.
        let q = e.parse("oracle gates").unwrap();
        let r = e.search(&q, &SearchConfig::top(10));
        assert!(r.patterns.is_empty());
        let relaxations = e.relax(&q);
        assert_eq!(relaxations.len(), 2);
        // Unified ranking on an answerable query.
        let q = e.parse("database company").unwrap();
        let unified = e.unified(
            &q,
            &SearchConfig::default(),
            &crate::unified::UnifiedConfig { blend: 1.0, k: 5 },
        );
        assert!(!unified.is_empty());
    }

    #[test]
    fn parse_errors_surface() {
        let e = engine();
        assert!(e.parse("qqqqzzzz").is_err());
        assert!(e.parse("").is_err());
    }

    #[test]
    fn porter_stemmer_engine_answers() {
        let (g, _) = figure1();
        let e = SearchEngine::build_with_stemmer(
            g,
            SynonymTable::new(),
            patternkb_text::Stemmer::Porter,
            &BuildConfig { d: 3, threads: 1 },
        );
        // Porter collapses "companies"/"company" and "databases"/"database".
        let q = e.parse("databases companies").unwrap();
        let r = e.search(&q, &SearchConfig::top(10));
        assert!(!r.patterns.is_empty());
        let q2 = e.parse("database company").unwrap();
        let r2 = e.search(&q2, &SearchConfig::top(10));
        assert_eq!(r.patterns.len(), r2.patterns.len());
    }

    #[test]
    fn apply_delta_updates_answers() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let q = e.parse("database software company revenue").unwrap();
        let before = e.search(&q, &SearchConfig::top(10));
        assert_eq!(before.patterns.len(), 9);
        assert_eq!(e.version(), 0);

        // Add a third database company: IBM with DB2.
        let g = e.graph();
        let soft = g.type_by_text("Software").unwrap();
        let comp = g.type_by_text("Company").unwrap();
        let model = g.type_by_text("Model").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let genre = g.attr_by_text("Genre").unwrap();
        let mut d = GraphDelta::new(g);
        let db2 = d.add_node(soft, "DB2").unwrap();
        let ibm = d.add_node(comp, "IBM").unwrap();
        let rdb = d.add_node(model, "Relational database").unwrap();
        d.add_edge(db2, dev, ibm).unwrap();
        d.add_edge(db2, genre, rdb).unwrap();
        d.add_text_edge(ibm, rev, "US$ 57 billion").unwrap();
        let stats = e.apply_delta(&d, PagerankMode::Recompute).unwrap();
        assert!(stats.postings_added > 0);
        assert_eq!(e.version(), 1);

        // The top pattern's table gains a row for DB2/IBM.
        let q = e.parse("database software company revenue").unwrap();
        let after = e.search(&q, &SearchConfig::top(10));
        let table = e.table(after.top().unwrap());
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn apply_delta_matches_fresh_engine() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let g = e.graph();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(g);
        let v = d.add_node(comp, "Sybase").unwrap();
        d.add_edge(NodeId(0), dev, v).unwrap();
        let mutated_graph = d.apply(g, PagerankMode::Recompute).unwrap();
        e.apply_delta(&d, PagerankMode::Recompute).unwrap();

        let fresh = SearchEngine::build(
            mutated_graph,
            SynonymTable::new(),
            &BuildConfig { d: 3, threads: 1 },
        );
        for text in ["database software company revenue", "company", "database"] {
            let q1 = e.parse(text).unwrap();
            let q2 = fresh.parse(text).unwrap();
            let r1 = e.search(&q1, &SearchConfig::top(50));
            let r2 = fresh.search(&q2, &SearchConfig::top(50));
            assert_eq!(r1.patterns.len(), r2.patterns.len(), "query {text:?}");
            for (a, b) in r1.patterns.iter().zip(&r2.patterns) {
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn apply_delta_error_leaves_engine_untouched() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let g = e.graph();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(g);
        // Removing a non-existent edge fails at apply time.
        d.remove_edge(NodeId(1), dev, NodeId(0)).unwrap();
        assert!(e.apply_delta(&d, PagerankMode::Frozen).is_err());
        assert_eq!(e.version(), 0);
        let q = e.parse("database software company revenue").unwrap();
        assert_eq!(e.search(&q, &SearchConfig::top(10)).patterns.len(), 9);
    }
}
