//! The engine: build once (via [`crate::EngineBuilder`]), answer
//! [`crate::SearchRequest`]s many times.
//!
//! [`SearchEngine::respond`] is the one entry point of the query route:
//! parse → plan → enumerate → rank → compose tables, with every failure
//! surfaced as a typed [`Error`]. Query execution is shard-parallel: the
//! index partitions by root range ([`patternkb_index::PathIndexes`]), each
//! algorithm runs one worker per shard, and the per-shard heaps merge at
//! the top-k ([`crate::common`]). The pre-0.2 `search_*`/`build*` facade
//! shims were removed in 0.3 — see the migration pointer in the crate
//! docs.

use crate::baseline::baseline;
use crate::common::QueryContext;
use crate::counting::{count_patterns, count_subtrees};
use crate::diversify::{diversify, DiversifyConfig};
use crate::error::Error;
use crate::individual::{top_individual, ScoredTree};
use crate::linear_enum::linear_enum;
use crate::pattern_enum::pattern_enum;
use crate::request::{AlgorithmChoice, CacheOutcome, QueryInput, SearchRequest, SearchResponse};
use crate::result::SearchResult;
use crate::table::TableAnswer;
use crate::topk::{linear_enum_topk, SamplingConfig};
use crate::{ParseError, PlannerConfig, Query, SearchConfig};
use patternkb_graph::KnowledgeGraph;
use patternkb_index::PathIndexes;
use patternkb_text::TextIndex;

/// Which query algorithm to run (§5's Baseline / PETopK / LETopK).
#[derive(Clone, Copy, Debug, Default)]
pub enum Algorithm {
    /// Enumeration–aggregation over the raw graph (§2.3).
    Baseline,
    /// `PATTERNENUM` over the pattern-first index (Algorithm 2).
    #[default]
    PatternEnum,
    /// `PATTERNENUM` with admissible upper-bound pruning
    /// ([`crate::bound`]) — identical answers, fewer intersections.
    PatternEnumPruned,
    /// `LINEARENUM` over the root-first index (Algorithm 3), global dict.
    LinearEnum,
    /// `LINEARENUM-TOPK` with type partitioning and optional sampling
    /// (Algorithm 4).
    LinearEnumTopK(SamplingConfig),
}

/// A knowledge graph plus its text index and path indexes, ready to answer
/// keyword queries with table answers.
pub struct SearchEngine {
    g: KnowledgeGraph,
    text: TextIndex,
    idx: PathIndexes,
    /// Monotone data version; bumped by [`Self::apply_delta`]. Lets result
    /// caches ([`crate::cache`]) detect staleness.
    version: u64,
    /// Default planner thresholds for [`AlgorithmChoice::Auto`] routing;
    /// set by [`crate::EngineBuilder::planner`], overridable per request.
    planner: PlannerConfig,
    /// How long loading/opening the index snapshot took at build time
    /// (`None` when the index was built from the graph instead). Carried
    /// across deltas so `/metrics` keeps reporting the boot cost.
    snapshot_load: Option<std::time::Duration>,
}

impl SearchEngine {
    /// Build from pre-constructed parts (used by [`crate::EngineBuilder`]
    /// and by the bench harness to time index construction separately).
    pub fn from_parts(g: KnowledgeGraph, text: TextIndex, idx: PathIndexes) -> Self {
        SearchEngine {
            g,
            text,
            idx,
            version: 0,
            planner: PlannerConfig::default(),
            snapshot_load: None,
        }
    }

    /// Replace the default planner thresholds (builder plumbing).
    pub(crate) fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Record how long the index snapshot took to load/open (builder
    /// plumbing; feeds boot observability).
    pub(crate) fn with_snapshot_load(mut self, took: std::time::Duration) -> Self {
        self.snapshot_load = Some(took);
        self
    }

    /// Which storage tier backs the path indexes right now. Ingest
    /// materializes, so an engine booted on the mapped tier reports
    /// [`patternkb_index::StorageBackend::Heap`] after its first applied
    /// delta — the metric tracks reality, not the boot flag.
    pub fn storage_backend(&self) -> patternkb_index::StorageBackend {
        self.idx.storage_backend()
    }

    /// How long loading/opening the index snapshot took at build time;
    /// `None` when the index was built from the graph.
    pub fn snapshot_load_time(&self) -> Option<std::time::Duration> {
        self.snapshot_load
    }

    /// The current data version: 0 after build, +1 per applied delta.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebase this engine's data version to be strictly newer than
    /// `floor`. Used by [`crate::SharedEngine::replace`] so a freshly
    /// rebuilt engine (version 0 again) can never collide with cache
    /// entries computed on the state it replaces.
    pub(crate) fn rebase_version(&mut self, floor: u64) {
        if self.version <= floor {
            self.version = floor + 1;
        }
    }

    /// Mutate the knowledge graph and incrementally refresh the indexes.
    ///
    /// The graph is replaced by `delta.apply(..)`, the text index is
    /// rebuilt (linear in the text), and the path indexes are refreshed by
    /// re-enumerating only roots within reverse distance `d − 1` of the
    /// delta's dirty nodes ([`patternkb_index::incremental`]). All existing
    /// node ids keep their meaning; the engine version is bumped so caches
    /// invalidate.
    ///
    /// Queries parsed *before* the mutation hold word ids from the old
    /// vocabulary and must be re-parsed.
    pub fn apply_delta(
        &mut self,
        delta: &patternkb_graph::mutate::GraphDelta,
        mode: patternkb_graph::mutate::PagerankMode,
    ) -> Result<patternkb_index::RefreshStats, patternkb_graph::mutate::DeltaError> {
        let (next, stats) = self.with_delta(delta, mode)?;
        *self = next;
        Ok(stats)
    }

    /// Non-mutating form of [`Self::apply_delta`]: computes the post-delta
    /// engine as a *new value* (version bumped), leaving `self` untouched.
    /// This is what lets [`crate::concurrent::SharedEngine`] keep serving
    /// queries from the old state while the refresh runs.
    pub fn with_delta(
        &self,
        delta: &patternkb_graph::mutate::GraphDelta,
        mode: patternkb_graph::mutate::PagerankMode,
    ) -> Result<(SearchEngine, patternkb_index::RefreshStats), patternkb_graph::mutate::DeltaError>
    {
        use patternkb_graph::mutate::PagerankMode as Pm;
        let new_g = delta.apply(&self.g, mode)?;
        let synonyms = self.text.vocab().synonyms().clone();
        let stemmer = self.text.vocab().stemmer();
        let new_text = TextIndex::build_with(&new_g, synonyms, stemmer);
        let (new_idx, stats) = patternkb_index::refresh_indexes(
            &self.idx,
            &self.g,
            &new_g,
            &self.text,
            &new_text,
            &delta.dirty_nodes(),
            mode == Pm::Recompute,
        );
        Ok((
            SearchEngine {
                g: new_g,
                text: new_text,
                idx: new_idx,
                version: self.version + 1,
                planner: self.planner.clone(),
                snapshot_load: self.snapshot_load,
            },
            stats,
        ))
    }

    /// The underlying knowledge graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.g
    }

    /// The text/keyword-match index.
    pub fn text(&self) -> &TextIndex {
        &self.text
    }

    /// The path indexes.
    pub fn index(&self) -> &PathIndexes {
        &self.idx
    }

    /// The height threshold `d` the engine was built for.
    pub fn d(&self) -> usize {
        self.idx.d()
    }

    /// Number of root-range index shards queries fan out over (set by
    /// [`crate::EngineBuilder::shards`]).
    pub fn num_shards(&self) -> usize {
        self.idx.num_shards()
    }

    /// Parse raw query text.
    pub fn parse(&self, input: &str) -> Result<Query, ParseError> {
        Query::parse(&self.text, input)
    }

    // ------------------------------------------------------------------
    // The unified query route.
    // ------------------------------------------------------------------

    /// Serve one request end to end: parse (or adopt) the query, resolve
    /// the algorithm (planner under [`AlgorithmChoice::Auto`]), run the
    /// search, then apply the requested post-processing — diversification,
    /// table composition, presentation, relaxation, explain traces.
    ///
    /// Never panics on user input; every failure is a typed [`Error`].
    pub fn respond(&self, request: &SearchRequest) -> Result<SearchResponse, Error> {
        self.respond_with_cache(request, None)
    }

    /// [`Self::respond`] with an optional result cache in front of the
    /// search step ([`crate::concurrent::SharedEngine`]'s route).
    pub(crate) fn respond_with_cache(
        &self,
        request: &SearchRequest,
        cache: Option<&crate::cache::QueryCache>,
    ) -> Result<SearchResponse, Error> {
        let t0 = std::time::Instant::now();
        Self::validate_request(request)?;
        let planner_cfg = request.planner.as_ref().unwrap_or(&self.planner);
        let planner_rho = planner_cfg.sampling.rho;
        // NaN-rejecting form: `rho <= 0.0 || rho > 1.0` would let NaN
        // through and silently sample zero roots.
        if !(planner_rho > 0.0 && planner_rho <= 1.0) {
            return Err(Error::Planner(format!(
                "sampling rho must be in (0, 1], got {planner_rho}"
            )));
        }

        let query = match &request.input {
            QueryInput::Text(text) => self.parse(text)?,
            QueryInput::Parsed(q) if q.is_empty() => return Err(Error::EmptyQuery),
            QueryInput::Parsed(q) => q.clone(),
        };

        // On the mapped tier the per-word decode is deferred to first
        // touch; force it here so a damaged stream surfaces as a typed
        // error instead of the word silently contributing no postings.
        self.idx
            .prepare_words(&query.keywords)
            .map_err(Error::Snapshot)?;

        let cfg = SearchConfig {
            k: request.k,
            scoring: request.scoring,
            strict_trees: request.strict_trees,
            max_rows: request.max_rows,
            block_skipping: request.block_skipping,
        };

        let planned = request.algorithm == AlgorithmChoice::Auto;
        let (mut patterns, stats, algorithm, cache_outcome) = match cache {
            Some(cache) => {
                // Keyed by the request's *choice* (plus planner thresholds
                // under Auto — the decision is deterministic per engine
                // version), so cache hits skip planning entirely.
                let (result, algorithm, hit) = cache.lookup_for_request(
                    self,
                    &query,
                    &cfg,
                    request.algorithm,
                    &request.sampling,
                    planner_cfg,
                    || {
                        self.plan_and_run(
                            &query,
                            &cfg,
                            request.algorithm,
                            &request.sampling,
                            planner_cfg,
                        )
                    },
                );
                let outcome = if hit {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                };
                (
                    result.patterns.clone(),
                    result.stats.clone(),
                    algorithm,
                    outcome,
                )
            }
            None => {
                let (result, algorithm) = self.plan_and_run(
                    &query,
                    &cfg,
                    request.algorithm,
                    &request.sampling,
                    planner_cfg,
                );
                (
                    result.patterns,
                    result.stats,
                    algorithm,
                    CacheOutcome::Uncached,
                )
            }
        };

        if let Some(lambda) = request.diversify {
            patterns = diversify(
                &patterns,
                &DiversifyConfig {
                    lambda,
                    k: request.k,
                },
            );
        }

        // Presentation implies tables even when composition is opted out.
        let tables: Vec<TableAnswer> = if request.compose_tables || request.presentation.is_some() {
            patterns
                .iter()
                .map(|p| TableAnswer::from_pattern(&self.g, p))
                .collect()
        } else {
            Vec::new()
        };
        let presented = request.presentation.as_ref().map(|pc| {
            tables
                .iter()
                .map(|t| crate::presentation::present(&self.g, t, pc))
                .collect()
        });

        let relaxations = if request.relax && patterns.is_empty() {
            self.relax(&query)
        } else {
            Vec::new()
        };

        let explain = request.explain.then(|| {
            // Pre-parsed queries may carry word ids foreign to this
            // engine's vocabulary (e.g. held across a mutation); resolve
            // defensively instead of indexing out of bounds.
            let vocab = self.text.vocab();
            let keywords: Vec<&str> = query
                .keywords
                .iter()
                .map(|&w| {
                    if (w.0 as usize) < vocab.len() {
                        vocab.resolve(w)
                    } else {
                        "<unknown>"
                    }
                })
                .collect();
            patterns
                .iter()
                .map(|p| {
                    let mut out = crate::explain::explain_score(p);
                    if let Some(tree) = p.trees.first() {
                        out.push('\n');
                        out.push_str(&crate::explain::explain_tree(&self.g, tree, &keywords));
                    }
                    out
                })
                .collect()
        });

        Ok(SearchResponse {
            query,
            patterns,
            tables,
            presented,
            algorithm,
            planned,
            stats,
            relaxations,
            explain,
            cache: cache_outcome,
            elapsed: t0.elapsed(),
        })
    }

    fn validate_request(request: &SearchRequest) -> Result<(), Error> {
        if request.k == 0 {
            return Err(Error::InvalidRequest("k must be >= 1".into()));
        }
        let rho = request.sampling.rho;
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(Error::InvalidRequest(format!(
                "sampling rho must be in (0, 1], got {rho}"
            )));
        }
        if let Some(lambda) = request.diversify {
            if !(0.0..=1.0).contains(&lambda) {
                return Err(Error::InvalidRequest(format!(
                    "diversify lambda must be in [0, 1], got {lambda}"
                )));
            }
        }
        Ok(())
    }

    /// Serve a whole request batch in parallel over `threads` OS threads
    /// (0 = available parallelism). The engine is immutable, so requests
    /// share it freely; responses come back in input order.
    pub fn respond_batch(
        &self,
        requests: &[SearchRequest],
        threads: usize,
    ) -> Vec<Result<SearchResponse, Error>> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let threads = threads.clamp(1, requests.len().max(1));
        if threads == 1 {
            return requests.iter().map(|r| self.respond(r)).collect();
        }
        let mut out: Vec<Option<Result<SearchResponse, Error>>> =
            (0..requests.len()).map(|_| None).collect();
        let chunk = requests.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (reqs, slots) in requests.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (r, slot) in reqs.iter().zip(slots.iter_mut()) {
                        *slot = Some(self.respond(r));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("worker filled every slot"))
            .collect()
    }

    /// Resolve the request's algorithm choice and run it, sharing one
    /// [`QueryContext`] between the planner's estimate and the chosen
    /// algorithm so the candidate-root intersection is computed once.
    fn plan_and_run(
        &self,
        query: &Query,
        cfg: &SearchConfig,
        choice: AlgorithmChoice,
        sampling: &SamplingConfig,
        planner: &PlannerConfig,
    ) -> (SearchResult, Algorithm) {
        if choice == AlgorithmChoice::Baseline {
            return (
                baseline(
                    &self.g,
                    &self.text,
                    query,
                    cfg,
                    self.idx.d(),
                    self.idx.bounds(),
                ),
                Algorithm::Baseline,
            );
        }
        let ctx = QueryContext::new(&self.g, &self.idx, query);
        let algorithm = match choice {
            AlgorithmChoice::Auto => match &ctx {
                Some(ctx) => crate::plan::choose(&crate::plan::estimate(ctx), planner),
                // Provably empty; any algorithm exits in O(1).
                None => Algorithm::PatternEnumPruned,
            },
            AlgorithmChoice::PatternEnum => Algorithm::PatternEnum,
            AlgorithmChoice::PatternEnumPruned => Algorithm::PatternEnumPruned,
            AlgorithmChoice::LinearEnum => Algorithm::LinearEnum,
            AlgorithmChoice::LinearEnumTopK => Algorithm::LinearEnumTopK(*sampling),
            AlgorithmChoice::Baseline => unreachable!("handled above"),
        };
        let result = match &ctx {
            None => SearchResult::default(),
            Some(ctx) => match algorithm {
                Algorithm::PatternEnum => pattern_enum(ctx, cfg),
                Algorithm::PatternEnumPruned => crate::bound::pattern_enum_pruned(ctx, cfg),
                Algorithm::LinearEnum => linear_enum(ctx, cfg),
                Algorithm::LinearEnumTopK(samp) => linear_enum_topk(ctx, cfg, &samp),
                Algorithm::Baseline => unreachable!("handled above"),
            },
        };
        (result, algorithm)
    }

    /// Run one resolved algorithm. This is the execution core `respond`
    /// and the result cache sit on.
    pub(crate) fn execute(
        &self,
        query: &Query,
        cfg: &SearchConfig,
        algo: Algorithm,
    ) -> SearchResult {
        match algo {
            Algorithm::Baseline => baseline(
                &self.g,
                &self.text,
                query,
                cfg,
                self.idx.d(),
                self.idx.bounds(),
            ),
            _ => {
                let Some(ctx) = QueryContext::new(&self.g, &self.idx, query) else {
                    return SearchResult::default();
                };
                match algo {
                    Algorithm::PatternEnum => pattern_enum(&ctx, cfg),
                    Algorithm::PatternEnumPruned => crate::bound::pattern_enum_pruned(&ctx, cfg),
                    Algorithm::LinearEnum => linear_enum(&ctx, cfg),
                    Algorithm::LinearEnumTopK(samp) => linear_enum_topk(&ctx, cfg, &samp),
                    Algorithm::Baseline => unreachable!(),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Analysis utilities (not part of the unified query route).
    // ------------------------------------------------------------------

    /// Persist the built path indexes (segment-per-shard snapshot); reload
    /// through [`crate::EngineBuilder::index_snapshot`] to skip the
    /// expensive Algorithm-1 construction (cf. Figure 6).
    pub fn save_index(&self, path: &std::path::Path) -> std::io::Result<()> {
        patternkb_index::snapshot::save(&self.idx, path)
    }

    /// Top-k *individual* valid subtrees (§5.3).
    pub fn top_individual(&self, query: &Query, cfg: &SearchConfig, k: usize) -> Vec<ScoredTree> {
        match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => top_individual(&ctx, cfg, k),
            None => Vec::new(),
        }
    }

    /// Unified ranking mixing table answers with singular subtrees
    /// (§5.3 future work; see [`crate::unified`]).
    pub fn unified(
        &self,
        query: &Query,
        cfg: &SearchConfig,
        ucfg: &crate::unified::UnifiedConfig,
    ) -> Vec<crate::unified::UnifiedAnswer> {
        match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => crate::unified::unified_ranking(&ctx, cfg, ucfg),
            None => Vec::new(),
        }
    }

    /// Maximal answerable sub-queries of an unanswerable query
    /// ([`crate::relax`]). Empty when the query already has answers.
    pub fn relax(&self, query: &Query) -> Vec<crate::relax::Relaxation> {
        match QueryContext::new(&self.g, &self.idx, query) {
            Some(ctx) => crate::relax::relax(&ctx, query),
            None => Vec::new(),
        }
    }

    /// Exact number of d-height tree patterns for the query.
    pub fn count_patterns(&self, query: &Query) -> u64 {
        QueryContext::new(&self.g, &self.idx, query)
            .map(|ctx| count_patterns(&ctx))
            .unwrap_or(0)
    }

    /// Exact number of valid subtrees for the query.
    pub fn count_subtrees(&self, query: &Query) -> u64 {
        QueryContext::new(&self.g, &self.idx, query)
            .map(|ctx| count_subtrees(&ctx))
            .unwrap_or(0)
    }

    /// Compose the table answer for one ranked pattern.
    pub fn table(&self, pattern: &crate::result::RankedPattern) -> TableAnswer {
        TableAnswer::from_pattern(&self.g, pattern)
    }
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SearchEngine {{ graph: {:?}, index: {:?} }}",
            self.g, self.idx
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use patternkb_datagen::figure1;
    use patternkb_graph::NodeId;

    fn engine() -> SearchEngine {
        let (g, _) = figure1();
        EngineBuilder::new().graph(g).threads(1).build().unwrap()
    }

    fn respond(e: &SearchEngine, text: &str, k: usize) -> SearchResponse {
        e.respond(
            &SearchRequest::text(text)
                .k(k)
                .algorithm(AlgorithmChoice::PatternEnum),
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_figure1() {
        let e = engine();
        let r = respond(&e, "database software company revenue", 10);
        assert_eq!(r.patterns.len(), 9);
        assert_eq!(r.tables.len(), 9);
        assert_eq!(r.top_table().unwrap().rows.len(), 2);
        assert_eq!(r.cache, CacheOutcome::Uncached);
        assert!(!r.planned);
    }

    #[test]
    fn all_algorithms_agree() {
        let e = engine();
        let choices = [
            AlgorithmChoice::Baseline,
            AlgorithmChoice::PatternEnum,
            AlgorithmChoice::PatternEnumPruned,
            AlgorithmChoice::LinearEnum,
            AlgorithmChoice::LinearEnumTopK,
        ];
        let results: Vec<SearchResponse> = choices
            .into_iter()
            .map(|a| {
                e.respond(&SearchRequest::text("database company").k(100).algorithm(a))
                    .unwrap()
            })
            .collect();
        for r in &results[1..] {
            assert_eq!(r.patterns.len(), results[0].patterns.len());
            for (a, b) in results[0].patterns.iter().zip(&r.patterns) {
                assert_eq!(a.key(), b.key());
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn auto_reports_planner_choice() {
        let e = engine();
        let r = e
            .respond(&SearchRequest::text("database company").k(10))
            .unwrap();
        assert!(r.planned);
        assert!(matches!(r.algorithm, Algorithm::PatternEnumPruned));
        // Same answers as forcing the chosen algorithm.
        let forced = e
            .respond(
                &SearchRequest::text("database company")
                    .k(10)
                    .algorithm(AlgorithmChoice::PatternEnumPruned),
            )
            .unwrap();
        assert_eq!(r.patterns.len(), forced.patterns.len());
    }

    #[test]
    fn error_paths_are_typed() {
        let e = engine();
        assert!(matches!(
            e.respond(&SearchRequest::text("")),
            Err(Error::EmptyQuery)
        ));
        match e.respond(&SearchRequest::text("database qqqqzzzz")) {
            Err(Error::UnknownWords(ws)) => assert_eq!(ws, vec!["qqqqzzzz".to_string()]),
            other => panic!("expected UnknownWords, got {other:?}"),
        }
        assert!(matches!(
            e.respond(&SearchRequest::text("database").k(0)),
            Err(Error::InvalidRequest(_))
        ));
        assert!(matches!(
            e.respond(&SearchRequest::text("database").diversify(1.5)),
            Err(Error::InvalidRequest(_))
        ));
        let mut bad = SearchRequest::text("database");
        bad.sampling.rho = 0.0;
        assert!(matches!(e.respond(&bad), Err(Error::InvalidRequest(_))));
        let mut bad_planner = PlannerConfig::default();
        bad_planner.sampling.rho = 2.0;
        assert!(matches!(
            e.respond(&SearchRequest::text("database").planner(bad_planner)),
            Err(Error::Planner(_))
        ));
        // Pre-parsed empty queries are rejected, not panicked on.
        assert!(matches!(
            e.respond(&SearchRequest::query(Query { keywords: vec![] })),
            Err(Error::EmptyQuery)
        ));
    }

    #[test]
    fn explain_with_foreign_word_ids_does_not_panic() {
        // A pre-parsed query can carry ids outside this engine's
        // vocabulary (stale query across a mutation, or caller error);
        // explain must degrade, not index out of bounds.
        let e = engine();
        let q = Query::from_ids([patternkb_graph::WordId(u32::MAX)]);
        let r = e.respond(&SearchRequest::query(q).explain(true)).unwrap();
        assert!(r.patterns.is_empty());
        assert_eq!(r.explain.as_deref(), Some(&[][..]));
    }

    #[test]
    fn nan_knobs_are_rejected() {
        let e = engine();
        let mut bad = SearchRequest::text("database");
        bad.sampling.rho = f64::NAN;
        assert!(matches!(e.respond(&bad), Err(Error::InvalidRequest(_))));
        let mut bad_planner = PlannerConfig::default();
        bad_planner.sampling.rho = f64::NAN;
        assert!(matches!(
            e.respond(&SearchRequest::text("database").planner(bad_planner)),
            Err(Error::Planner(_))
        ));
        assert!(matches!(
            e.respond(&SearchRequest::text("database").diversify(f64::NAN)),
            Err(Error::InvalidRequest(_))
        ));
    }

    #[test]
    fn compose_tables_opt_out() {
        let e = engine();
        let r = e
            .respond(&SearchRequest::text("database company").compose_tables(false))
            .unwrap();
        assert!(!r.patterns.is_empty());
        assert!(r.tables.is_empty(), "opt-out skips composition");
        // Presentation overrides the opt-out (it needs the tables).
        let r = e
            .respond(
                &SearchRequest::text("database company")
                    .compose_tables(false)
                    .presentation(crate::presentation::PresentationConfig::default()),
            )
            .unwrap();
        assert_eq!(r.tables.len(), r.patterns.len());
        assert!(r.presented.is_some());
    }

    #[test]
    fn relax_and_explain_on_request() {
        let e = engine();
        // Unanswerable: no root reaches both oracle and gates.
        let r = e
            .respond(&SearchRequest::text("oracle gates").relax(true))
            .unwrap();
        assert!(r.is_empty());
        assert_eq!(r.relaxations.len(), 2);
        // Without the flag, no relaxation work is done.
        let r = e.respond(&SearchRequest::text("oracle gates")).unwrap();
        assert!(r.relaxations.is_empty());
        // Explain traces align with patterns.
        let r = e
            .respond(&SearchRequest::text("database company").explain(true))
            .unwrap();
        let traces = r.explain.as_ref().unwrap();
        assert_eq!(traces.len(), r.patterns.len());
        assert!(traces[0].contains("score"));
    }

    #[test]
    fn diversify_and_presentation_on_request() {
        let e = engine();
        let r = e
            .respond(
                &SearchRequest::text("database software company revenue")
                    .k(5)
                    .diversify(0.5)
                    .presentation(crate::presentation::PresentationConfig::default()),
            )
            .unwrap();
        assert!(r.patterns.len() <= 5);
        let presented = r.presented.as_ref().unwrap();
        assert_eq!(presented.len(), r.patterns.len());
        assert!(!presented[0].columns.is_empty());
    }

    #[test]
    fn respond_batch_matches_sequential() {
        let e = engine();
        let requests: Vec<SearchRequest> =
            ["database company", "revenue", "bill gates", "software"]
                .iter()
                .map(|s| {
                    SearchRequest::text(*s)
                        .k(10)
                        .algorithm(AlgorithmChoice::PatternEnum)
                })
                .collect();
        let seq: Vec<SearchResponse> = requests.iter().map(|r| e.respond(r).unwrap()).collect();
        let par = e.respond_batch(&requests, 3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let b = b.as_ref().unwrap();
            assert_eq!(a.patterns.len(), b.patterns.len());
            for (x, y) in a.patterns.iter().zip(&b.patterns) {
                assert_eq!(x.key(), y.key());
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sharded_engine_answers_bit_identically() {
        let choices = [
            AlgorithmChoice::Baseline,
            AlgorithmChoice::PatternEnum,
            AlgorithmChoice::PatternEnumPruned,
            AlgorithmChoice::LinearEnum,
            AlgorithmChoice::LinearEnumTopK,
        ];
        let single = engine();
        for shards in [2usize, 4] {
            let (g, _) = figure1();
            let e = EngineBuilder::new()
                .graph(g)
                .threads(1)
                .shards(shards)
                .build()
                .unwrap();
            assert_eq!(e.num_shards(), shards);
            for choice in choices {
                let req = |engine: &SearchEngine| {
                    engine
                        .respond(
                            &SearchRequest::text("database software company revenue")
                                .k(100)
                                .algorithm(choice),
                        )
                        .unwrap()
                };
                let a = req(&single);
                let b = req(&e);
                assert_eq!(a.patterns.len(), b.patterns.len(), "{choice:?}");
                for (x, y) in a.patterns.iter().zip(&b.patterns) {
                    assert_eq!(x.key(), y.key(), "{choice:?}");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "{choice:?}: scores must be bit-identical"
                    );
                    assert_eq!(x.num_trees, y.num_trees);
                }
                assert_eq!(a.stats.subtrees, b.stats.subtrees, "{choice:?}");
                assert!(!b.stats.per_shard.is_empty(), "{choice:?}");
            }
        }
    }

    #[test]
    fn counts_exposed() {
        let e = engine();
        let q = e.parse("database software company revenue").unwrap();
        assert_eq!(e.count_patterns(&q), 9);
        assert_eq!(e.count_subtrees(&q), 10);
    }

    #[test]
    fn individual_exposed() {
        let e = engine();
        let q = e.parse("database software company revenue").unwrap();
        let trees = e.top_individual(&q, &SearchConfig::default(), 3);
        assert_eq!(trees.len(), 3);
    }

    #[test]
    fn index_snapshot_roundtrip_through_engine() {
        let e = engine();
        let dir = std::env::temp_dir().join("patternkb_engine_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.pkbi");
        e.save_index(&path).unwrap();
        let (g, _) = figure1();
        let reloaded = EngineBuilder::new()
            .graph(g)
            .index_snapshot(&path)
            .build()
            .unwrap();
        std::fs::remove_file(&path).ok();
        let r = respond(&reloaded, "database software company revenue", 10);
        assert_eq!(r.patterns.len(), 9);
        assert!((r.patterns[0].score - 3.5).abs() < 1e-9);
    }

    #[test]
    fn relax_and_unified_exposed() {
        let e = engine();
        let q = e.parse("oracle gates").unwrap();
        let r = respond(&e, "oracle gates", 10);
        assert!(r.patterns.is_empty());
        let relaxations = e.relax(&q);
        assert_eq!(relaxations.len(), 2);
        let q = e.parse("database company").unwrap();
        let unified = e.unified(
            &q,
            &SearchConfig::default(),
            &crate::unified::UnifiedConfig { blend: 1.0, k: 5 },
        );
        assert!(!unified.is_empty());
    }

    #[test]
    fn parse_errors_surface() {
        let e = engine();
        assert!(e.parse("qqqqzzzz").is_err());
        assert!(e.parse("").is_err());
    }

    #[test]
    fn porter_stemmer_engine_answers() {
        let (g, _) = figure1();
        let e = EngineBuilder::new()
            .graph(g)
            .stemmer(patternkb_text::Stemmer::Porter)
            .threads(1)
            .build()
            .unwrap();
        // Porter collapses "companies"/"company" and "databases"/"database".
        let r = respond(&e, "databases companies", 10);
        assert!(!r.patterns.is_empty());
        let r2 = respond(&e, "database company", 10);
        assert_eq!(r.patterns.len(), r2.patterns.len());
    }

    #[test]
    fn apply_delta_updates_answers() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let before = respond(&e, "database software company revenue", 10);
        assert_eq!(before.patterns.len(), 9);
        assert_eq!(e.version(), 0);

        // Add a third database company: IBM with DB2.
        let g = e.graph();
        let soft = g.type_by_text("Software").unwrap();
        let comp = g.type_by_text("Company").unwrap();
        let model = g.type_by_text("Model").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let genre = g.attr_by_text("Genre").unwrap();
        let mut d = GraphDelta::new(g);
        let db2 = d.add_node(soft, "DB2").unwrap();
        let ibm = d.add_node(comp, "IBM").unwrap();
        let rdb = d.add_node(model, "Relational database").unwrap();
        d.add_edge(db2, dev, ibm).unwrap();
        d.add_edge(db2, genre, rdb).unwrap();
        d.add_text_edge(ibm, rev, "US$ 57 billion").unwrap();
        let stats = e.apply_delta(&d, PagerankMode::Recompute).unwrap();
        assert!(stats.postings_added > 0);
        assert_eq!(e.version(), 1);

        // The top pattern's table gains a row for DB2/IBM.
        let after = respond(&e, "database software company revenue", 10);
        assert_eq!(after.top_table().unwrap().rows.len(), 3);
    }

    #[test]
    fn apply_delta_matches_fresh_engine() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let g = e.graph();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(g);
        let v = d.add_node(comp, "Sybase").unwrap();
        d.add_edge(NodeId(0), dev, v).unwrap();
        let mutated_graph = d.apply(g, PagerankMode::Recompute).unwrap();
        e.apply_delta(&d, PagerankMode::Recompute).unwrap();

        let fresh = EngineBuilder::new()
            .graph(mutated_graph)
            .threads(1)
            .build()
            .unwrap();
        for text in ["database software company revenue", "company", "database"] {
            let r1 = respond(&e, text, 50);
            let r2 = respond(&fresh, text, 50);
            assert_eq!(r1.patterns.len(), r2.patterns.len(), "query {text:?}");
            for (a, b) in r1.patterns.iter().zip(&r2.patterns) {
                assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn apply_delta_error_leaves_engine_untouched() {
        use patternkb_graph::mutate::{GraphDelta, PagerankMode};
        let mut e = engine();
        let g = e.graph();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(g);
        // Removing a non-existent edge fails at apply time.
        d.remove_edge(NodeId(1), dev, NodeId(0)).unwrap();
        assert!(e.apply_delta(&d, PagerankMode::Frozen).is_err());
        assert_eq!(e.version(), 0);
        assert_eq!(
            respond(&e, "database software company revenue", 10)
                .patterns
                .len(),
            9
        );
    }
}
