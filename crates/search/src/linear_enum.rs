//! `LINEARENUM` — Algorithm 3, shard-parallel.
//!
//! Instead of enumerating tree patterns directly, find all candidate roots
//! (`R = ∩ Roots(wᵢ)` from the root-first index), then `EXPANDROOT` each:
//! the pattern product × path product under a root only ever visits
//! **nonempty** tree patterns, so the running time is linear in the index
//! size plus the output size (Theorem 3):
//! `O(N · d · m + Σᵢ Sᵢ)`.
//!
//! Candidate roots partition over the index's root-range shards, so each
//! shard expands its own roots into a private `TreeDict` (contention-free)
//! and the dictionaries merge at the end — bit-identical to a sequential
//! pass thanks to exact score accumulation.

use crate::common::{expand_root, merge_shard_dicts, run_sharded, QueryContext, TreeDict};
use crate::result::{QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::SearchConfig;
use std::time::Instant;

/// Run `LINEARENUM`, returning all tree patterns ranked and truncated to
/// `cfg.k`. (The type-partitioned, sampled top-k variant is
/// [`crate::topk::linear_enum_topk`].)
pub fn linear_enum(ctx: &QueryContext<'_>, cfg: &SearchConfig) -> SearchResult {
    let t0 = Instant::now();
    let locals = run_sharded(&ctx.shards, |shard| {
        let mut dict = TreeDict::new(shard.m());
        let mut subtrees = 0usize;
        for &r in shard.candidate_roots() {
            subtrees += expand_root(shard, cfg, r, &mut dict);
        }
        (dict, subtrees, shard.candidate_roots().len(), shard.shard)
    });

    let mut per_shard = Vec::with_capacity(locals.len());
    let mut dicts = Vec::with_capacity(locals.len());
    let mut subtrees = 0usize;
    let mut candidate_roots = 0usize;
    for (dict, local_subtrees, local_roots, shard) in locals {
        per_shard.push(ShardStats {
            shard,
            candidate_roots: local_roots,
            subtrees: local_subtrees,
            patterns: dict.len(),
        });
        subtrees += local_subtrees;
        candidate_roots += local_roots;
        dicts.push(dict);
    }
    let dict = merge_shard_dicts(dicts, ctx.m(), cfg.max_rows);

    let patterns_found = dict.len();
    let mut hot = ctx.hot_stats();
    hot.keys_interned = dict.keys_interned() as u64;
    hot.key_arena_bytes = dict.arena_bytes() as u64;
    let mut patterns: Vec<RankedPattern> = Vec::with_capacity(patterns_found);
    dict.drain_live(|key, group| {
        patterns.push(RankedPattern {
            pattern: ctx.decode_key(key),
            score: group.acc.finish(cfg.scoring.aggregation),
            num_trees: group.acc.count as usize,
            trees: group.trees,
        });
    });
    SearchResult {
        patterns,
        stats: QueryStats {
            candidate_roots,
            subtrees,
            patterns: patterns_found,
            combos_tried: patterns_found,
            combos_pruned: 0,
            per_shard,
            hot,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn figure1_query_finds_nine_patterns() {
        // "database software company revenue" on Figure 1(d) with d = 3:
        // root v1 contributes 8 pattern combos (database via Genre/Model or
        // Reference/Book × software via self or Reference/Book × company via
        // Developer or Reference/Publisher), v7 shares P1, v12 contributes
        // P2 → 9 distinct patterns, 10 subtrees.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(100));
        assert_eq!(r.stats.candidate_roots, 3); // v1, v7, v12
        assert_eq!(r.stats.subtrees, 10);
        assert_eq!(r.patterns.len(), 9);
        let total_trees: usize = r.patterns.iter().map(|p| p.num_trees).sum();
        assert_eq!(total_trees, 10);
    }

    #[test]
    fn figure1_top_pattern_is_p1() {
        // Example 2.4: P1 (the Genre/Model interpretation with 2 subtrees)
        // outscores P2 (the Book interpretation).
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(100));
        let top = r.top().unwrap();
        assert_eq!(top.num_trees, 2, "P1 aggregates T1 and T2");
        let shown = top.display(&g);
        assert!(shown.contains("(Software) (Genre) (Model)"), "{shown}");
        assert!(
            shown.contains("(Software) (Developer) (Company) (Revenue)"),
            "{shown}"
        );
        // Example 2.4 arithmetic: score(T1) = 4·3.5/8 = 1.75, so
        // score(P1) = 3.5 under Sum aggregation.
        assert!((top.score - 3.5).abs() < 1e-9, "score {}", top.score);
    }

    #[test]
    fn p2_score_matches_example() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(100));
        // P2: single subtree rooted at the Book.
        let p2 = r
            .patterns
            .iter()
            .find(|p| g.type_text(p.pattern[0].root_type()) == "Book")
            .expect("P2 present");
        assert_eq!(p2.num_trees, 1);
        // score(T3) = score2 · score3 / score1 = 4 · (1/6+1/6+1+1) / 7.
        let expected = 4.0 * (1.0 / 6.0 + 1.0 / 6.0 + 1.0 + 1.0) / 7.0;
        assert!((p2.score - expected).abs() < 1e-9, "score {}", p2.score);
    }

    #[test]
    fn single_keyword_query() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(100));
        // Revenue edges exist under Microsoft, Oracle Corp, Springer; roots
        // reaching them within d=3: each company itself, plus SQL Server /
        // Oracle DB (via Developer), plus the Book (via Publisher).
        assert_eq!(r.stats.candidate_roots, 6);
        assert!(r.patterns.iter().all(|p| p.height() <= 3));
        // Every pattern is edge-terminal in its only keyword path.
        for p in &r.patterns {
            assert!(p.pattern[0].edge_terminal);
        }
    }

    #[test]
    fn unanswerable_context_is_none() {
        let (g, t, idx) = setup();
        // "gates" exists; craft a query with a word that exists in vocab
        // but — actually unknown words fail at parse; a context is None only
        // for words absent from the index, which parse already rejects.
        let q = Query::parse(&t, "gates").unwrap();
        assert!(QueryContext::new(&g, &idx, &q).is_some());
    }

    #[test]
    fn k_truncation() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(2));
        assert_eq!(r.patterns.len(), 2);
        assert!(r.patterns[0].score >= r.patterns[1].score);
    }

    #[test]
    fn strict_trees_on_figure1_changes_nothing() {
        // Figure 1(d) path tuples never converge, so strict mode must agree.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let lax = linear_enum(&ctx, &SearchConfig::top(100));
        let strict = linear_enum(
            &ctx,
            &SearchConfig {
                strict_trees: true,
                ..SearchConfig::top(100)
            },
        );
        assert_eq!(lax.patterns.len(), strict.patterns.len());
        for (a, b) in lax.patterns.iter().zip(&strict.patterns) {
            assert_eq!(a.key(), b.key());
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}
