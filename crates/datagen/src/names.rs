//! Deterministic pseudo-English word generation.
//!
//! Synthetic entities need text that behaves like real labels under the
//! tokenizer and stemmer (multi-word, shared head words, distinct tails).
//! Words are built from syllables so `word(i)` is a stable bijection from
//! indices to pronounceable strings.

const SYLLABLES: [&str; 20] = [
    "ba", "ce", "di", "fo", "gu", "ka", "le", "mi", "no", "pu", "ra", "se", "ti", "vo", "zu",
    "lan", "mer", "nis", "tor", "vel",
];

/// The `i`-th pseudo-word: 2–4 syllables, deterministic, injective.
pub fn word(i: usize) -> String {
    // Base-20 digits of i, always at least two syllables.
    let mut digits = Vec::with_capacity(4);
    let mut v = i;
    loop {
        digits.push(v % SYLLABLES.len());
        v /= SYLLABLES.len();
        if v == 0 {
            break;
        }
    }
    let mut out = String::with_capacity(3 * digits.len() + 1);
    for &d in digits.iter().rev() {
        out.push_str(SYLLABLES[d]);
    }
    if digits.len() == 1 {
        // Disambiguate single-syllable words from multi-syllable ones: 'q'
        // never occurs in the syllable table, so this keeps `word` injective.
        out.push('q');
    }
    out
}

/// A multi-word phrase from explicit word indices.
pub fn phrase(indices: &[usize]) -> String {
    let mut out = String::new();
    for (k, &i) in indices.iter().enumerate() {
        if k > 0 {
            out.push(' ');
        }
        out.push_str(&word(i));
    }
    out
}

/// A capitalized variant for type names ("Kace Tor" style).
pub fn title(indices: &[usize]) -> String {
    let mut out = String::new();
    for (k, &i) in indices.iter().enumerate() {
        if k > 0 {
            out.push(' ');
        }
        let w = word(i);
        let mut chars = w.chars();
        if let Some(first) = chars.next() {
            out.push(first.to_ascii_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_distinct() {
        let mut seen = HashSet::new();
        for i in 0..5000 {
            assert!(seen.insert(word(i)), "collision at {i}");
        }
    }

    #[test]
    fn words_are_deterministic() {
        assert_eq!(word(42), word(42));
        assert_ne!(word(1), word(2));
    }

    #[test]
    fn words_survive_tokenization() {
        // A generated word must tokenize to itself (single lowercase token).
        for i in [0, 7, 123, 4567] {
            let w = word(i);
            let toks = patternkb_text::tokenize::tokens(&w);
            assert_eq!(toks, vec![w.clone()]);
        }
    }

    #[test]
    fn phrases_and_titles() {
        let p = phrase(&[1, 2, 3]);
        assert_eq!(p.split(' ').count(), 3);
        let t = title(&[1, 2]);
        assert!(t.chars().next().unwrap().is_ascii_uppercase());
        assert_eq!(
            patternkb_text::tokenize::tokens(&t),
            patternkb_text::tokenize::tokens(&phrase(&[1, 2]))
        );
    }
}
