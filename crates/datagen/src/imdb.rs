//! Synthetic IMDB-like knowledge base.
//!
//! The paper's IMDB dataset has "7 types of 6.58 million entities, with
//! 79.42 million directed edges" and the crucial structural property that
//! "the knowledge graph contains only paths of length at most three, so
//! `d = 3` suffices" (§5.1, Exp-I). This generator reproduces exactly that
//! shape at configurable scale:
//!
//! * 7 entity types: Movie, Person, Company, Genre, Country, Award, Series;
//! * sink types (Person, Genre, Country, Award) have no out-edges;
//! * sources are Company/Series (→ Movie) and Movie (→ sinks/text), so the
//!   longest directed node path is Company/Series → Movie → sink (3 nodes),
//!   and the longest edge-terminal path is Company → Movie → (attr) with an
//!   implied text leaf (height 3).

use crate::names;
use crate::zipf::Zipf;
use patternkb_graph::{GraphBuilder, KnowledgeGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PERSON_WORD_BASE: usize = 4_000_000;
const TITLE_WORD_BASE: usize = 5_000_000;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct ImdbConfig {
    /// Number of movies; the other type populations scale from this.
    pub movies: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            movies: 12_000,
            seed: 42,
        }
    }
}

impl ImdbConfig {
    /// A small config for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ImdbConfig { movies: 300, seed }
    }
}

/// Generate the IMDB-like knowledge graph.
pub fn imdb(cfg: &ImdbConfig) -> KnowledgeGraph {
    assert!(cfg.movies >= 10, "need at least 10 movies");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n_movies = cfg.movies;
    let n_persons = cfg.movies; // actors + directors share the pool
    let n_companies = (cfg.movies / 20).max(3);
    let n_series = (cfg.movies / 40).max(2);
    let n_genres = 25.min(cfg.movies);
    let n_countries = 40.min(cfg.movies);
    let n_awards = 30.min(cfg.movies);

    let mut b = GraphBuilder::with_capacity(
        n_movies + n_persons + n_companies + n_series + n_genres + n_countries + n_awards,
        n_movies * 8,
    );

    let movie_t = b.add_type("Movie");
    let person_t = b.add_type("Person");
    let company_t = b.add_type("Company");
    let genre_t = b.add_type("Genre");
    let country_t = b.add_type("Country");
    let award_t = b.add_type("Award");
    let series_t = b.add_type("Series");

    let starring = b.add_attr("Starring");
    let directed_by = b.add_attr("Directed by");
    let genre_a = b.add_attr("Genre");
    let country_a = b.add_attr("Country");
    let released = b.add_attr("Released");
    let runtime = b.add_attr("Runtime");
    let won = b.add_attr("Won");
    let produced = b.add_attr("Produced");
    let founded = b.add_attr("Founded");
    let contains = b.add_attr("Contains");

    // Sink entities.
    let title_zipf = Zipf::new(800.min(4 * cfg.movies), 0.9);
    let persons: Vec<_> = (0..n_persons)
        .map(|i| {
            b.add_node(
                person_t,
                &names::title(&[PERSON_WORD_BASE + 2 * i, PERSON_WORD_BASE + 2 * i + 1]),
            )
        })
        .collect();
    let genres: Vec<_> = (0..n_genres)
        .map(|i| b.add_node(genre_t, &names::title(&[TITLE_WORD_BASE + 900_000 + i])))
        .collect();
    let countries: Vec<_> = (0..n_countries)
        .map(|i| b.add_node(country_t, &names::title(&[TITLE_WORD_BASE + 910_000 + i])))
        .collect();
    let awards: Vec<_> = (0..n_awards)
        .map(|i| {
            b.add_node(
                award_t,
                &names::title(&[TITLE_WORD_BASE + 920_000 + i, TITLE_WORD_BASE + 920_100 + i]),
            )
        })
        .collect();

    // Movies with 1–3 word titles from a Zipf-shared pool.
    let movies: Vec<_> = (0..n_movies)
        .map(|_| {
            let nwords = 1 + rng.gen_range(0..3);
            let words: Vec<usize> = (0..nwords)
                .map(|_| TITLE_WORD_BASE + title_zipf.sample(&mut rng))
                .collect();
            b.add_node(movie_t, &names::title(&words))
        })
        .collect();

    let person_zipf = Zipf::new(n_persons, 0.8); // star actors are hubs
    let genre_zipf = Zipf::new(n_genres, 0.9);
    let country_zipf = Zipf::new(n_countries, 1.0);
    let award_zipf = Zipf::new(n_awards, 0.8);
    let movie_zipf = Zipf::new(n_movies, 0.5);

    for (i, &m) in movies.iter().enumerate() {
        for _ in 0..rng.gen_range(2..5) {
            b.add_edge(m, starring, persons[person_zipf.sample(&mut rng)]);
        }
        b.add_edge(m, directed_by, persons[person_zipf.sample(&mut rng)]);
        for _ in 0..rng.gen_range(1..3) {
            b.add_edge(m, genre_a, genres[genre_zipf.sample(&mut rng)]);
        }
        b.add_edge(m, country_a, countries[country_zipf.sample(&mut rng)]);
        b.add_text_edge(
            m,
            released,
            &format!("{}", 1950 + (i * 7 + rng.gen_range(0..5usize)) % 75),
        );
        b.add_text_edge(
            m,
            runtime,
            &format!("{} minutes", 70 + rng.gen_range(0..90)),
        );
        if rng.gen::<f64>() < 0.15 {
            b.add_edge(m, won, awards[award_zipf.sample(&mut rng)]);
        }
    }

    for c in 0..n_companies {
        let node = b.add_node(
            company_t,
            &names::title(&[TITLE_WORD_BASE + 930_000 + c, TITLE_WORD_BASE + 930_500 + c]),
        );
        for _ in 0..rng.gen_range(5..30) {
            b.add_edge(node, produced, movies[movie_zipf.sample(&mut rng)]);
        }
        b.add_text_edge(node, founded, &format!("{}", 1900 + (c * 13) % 110));
    }

    for s in 0..n_series {
        let node = b.add_node(series_t, &names::title(&[TITLE_WORD_BASE + 940_000 + s]));
        for _ in 0..rng.gen_range(2..8) {
            b.add_edge(node, contains, movies[movie_zipf.sample(&mut rng)]);
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::ids::Id;

    #[test]
    fn seven_types() {
        let g = imdb(&ImdbConfig::tiny(1));
        // 7 entity types + the reserved text type.
        assert_eq!(g.num_types(), 8);
    }

    #[test]
    fn longest_directed_node_path_is_three() {
        let g = imdb(&ImdbConfig::tiny(3));
        // Check via bounded traversal: no simple path has 4 nodes.
        let mut max_len = 0;
        for v in g.nodes() {
            patternkb_graph::traversal::for_each_path(&g, v, 4, |nodes, _| {
                max_len = max_len.max(nodes.len());
            });
            if max_len >= 4 {
                break;
            }
        }
        assert_eq!(max_len, 3, "schema must cap directed paths at 3 nodes");
    }

    #[test]
    fn sink_types_have_no_out_edges() {
        let g = imdb(&ImdbConfig::tiny(5));
        for v in g.nodes() {
            let t = g.type_text(g.node_type(v));
            if matches!(t, "Person" | "Genre" | "Country" | "Award") {
                assert_eq!(g.out_degree(v), 0, "{t} node has out-edges");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = imdb(&ImdbConfig::tiny(9));
        let b = imdb(&ImdbConfig::tiny(9));
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a
            .edges()
            .map(|e| (e.source.index(), e.attr.index(), e.target.index()))
            .collect();
        let eb: Vec<_> = b
            .edges()
            .map(|e| (e.source.index(), e.attr.index(), e.target.index()))
            .collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn star_actors_are_hubs() {
        let g = imdb(&ImdbConfig::tiny(11));
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        assert!(max_in > 10, "zipf casting should create star actors");
    }
}
