//! Query workload generation (§5: 500 queries, 1–10 keywords, 50 per
//! keyword count).
//!
//! The paper samples Wiki queries from Bing's query log and IMDB queries
//! from IMDB's vocabulary. Neither source is available, so (DESIGN.md §5):
//!
//! * [`QueryGenerator::anchored`] picks a random *anchor entity* and draws
//!   keywords from the text/types/attributes reachable within `d` hops —
//!   guaranteeing the anchor is a candidate root, i.e. the query has
//!   answers, like real user queries about an entity do;
//! * [`QueryGenerator::random_vocab`] draws Zipf-weighted words straight
//!   from the KB vocabulary, mirroring the IMDB setup (may yield empty
//!   answers, which exercises the algorithms' early-exit paths).

use crate::zipf::Zipf;

use patternkb_graph::{KnowledgeGraph, NodeId, WordId};
use patternkb_text::TextIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One generated keyword query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Canonical keyword ids, distinct.
    pub keywords: Vec<WordId>,
    /// The canonical surface strings (for display / parsing round-trips).
    pub surface: Vec<String>,
}

/// Deterministic query sampler over a graph + text index.
pub struct QueryGenerator<'a> {
    g: &'a KnowledgeGraph,
    text: &'a TextIndex,
    rng: SmallRng,
    d: usize,
}

impl<'a> QueryGenerator<'a> {
    /// A generator drawing paths of up to `d` nodes from anchors.
    pub fn new(g: &'a KnowledgeGraph, text: &'a TextIndex, d: usize, seed: u64) -> Self {
        QueryGenerator {
            g,
            text,
            rng: SmallRng::seed_from_u64(seed),
            d,
        }
    }

    /// Sample an `m`-keyword query anchored at a random entity; `None` if no
    /// anchor with enough distinct reachable words is found after a bounded
    /// number of attempts.
    pub fn anchored(&mut self, m: usize) -> Option<QuerySpec> {
        assert!(m >= 1);
        let n = self.g.num_nodes();
        if n == 0 {
            return None;
        }
        'attempt: for _ in 0..64 {
            let anchor = NodeId(self.rng.gen_range(0..n as u32));
            if self.g.is_text_node(anchor) {
                continue;
            }
            let pool = self.word_pool(anchor);
            if pool.len() < m {
                continue 'attempt;
            }
            // Pick m distinct words, biased toward earlier (closer) ones.
            let mut chosen: Vec<WordId> = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m && guard < 1000 {
                guard += 1;
                let idx = (self.rng.gen::<f64>().powi(2) * pool.len() as f64) as usize;
                let w = pool[idx.min(pool.len() - 1)];
                if !chosen.contains(&w) {
                    chosen.push(w);
                }
            }
            if chosen.len() < m {
                continue 'attempt;
            }
            let surface = chosen
                .iter()
                .map(|&w| self.text.vocab().resolve(w).to_string())
                .collect();
            return Some(QuerySpec {
                keywords: chosen,
                surface,
            });
        }
        None
    }

    /// Sample an `m`-keyword query of Zipf-weighted vocabulary words (may
    /// have no answers).
    pub fn random_vocab(&mut self, m: usize) -> QuerySpec {
        assert!(m >= 1);
        let vocab_len = self.text.vocab().len().max(1);
        let zipf = Zipf::new(vocab_len, 0.9);
        let mut chosen: Vec<WordId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 10_000 {
            guard += 1;
            let w = WordId(zipf.sample(&mut self.rng) as u32);
            if !chosen.contains(&w) {
                chosen.push(w);
            }
        }
        let surface = chosen
            .iter()
            .map(|&w| self.text.vocab().resolve(w).to_string())
            .collect();
        QuerySpec {
            keywords: chosen,
            surface,
        }
    }

    /// The paper's workload: `per_m` anchored queries for each keyword count
    /// `1..=max_m` (§5 uses `per_m = 50`, `max_m = 10`).
    pub fn batch(&mut self, per_m: usize, max_m: usize) -> Vec<QuerySpec> {
        let mut out = Vec::with_capacity(per_m * max_m);
        for m in 1..=max_m {
            let mut produced = 0;
            let mut attempts = 0;
            while produced < per_m && attempts < per_m * 8 {
                attempts += 1;
                if let Some(q) = self.anchored(m) {
                    out.push(q);
                    produced += 1;
                }
            }
        }
        out
    }

    /// Words visible from `anchor` along random forward walks of up to `d`
    /// nodes: node text/type words plus traversed attribute words, ordered
    /// roughly by distance (anchor's own words first).
    fn word_pool(&mut self, anchor: NodeId) -> Vec<WordId> {
        let mut pool: Vec<WordId> = Vec::new();
        let push = |pool: &mut Vec<WordId>, w: WordId| {
            if !pool.contains(&w) {
                pool.push(w);
            }
        };
        for &w in self.text.node_tokens(anchor) {
            push(&mut pool, w);
        }
        for &w in self.text.type_tokens(self.g.node_type(anchor)) {
            push(&mut pool, w);
        }
        // Several random walks.
        for _ in 0..12 {
            let mut cur = anchor;
            for _ in 1..self.d {
                let deg = self.g.out_degree(cur);
                if deg == 0 {
                    break;
                }
                let pick = self.rng.gen_range(0..deg);
                let (attr, next) = self
                    .g
                    .out_edges(cur)
                    .nth(pick)
                    .expect("degree-checked edge");
                for &w in self.text.attr_tokens(attr) {
                    push(&mut pool, w);
                }
                for &w in self.text.node_tokens(next) {
                    push(&mut pool, w);
                }
                for &w in self.text.type_tokens(self.g.node_type(next)) {
                    push(&mut pool, w);
                }
                cur = next;
            }
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wiki::{wiki, WikiConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (KnowledgeGraph, TextIndex) {
        let g = wiki(&WikiConfig::tiny(5));
        let t = TextIndex::build(&g, SynonymTable::new());
        (g, t)
    }

    #[test]
    fn anchored_queries_have_requested_size() {
        let (g, t) = setup();
        let mut qg = QueryGenerator::new(&g, &t, 3, 1);
        for m in 1..=6 {
            let q = qg.anchored(m).expect("anchored query");
            assert_eq!(q.keywords.len(), m);
            assert_eq!(q.surface.len(), m);
            // Distinct keywords.
            let mut k = q.keywords.clone();
            k.sort_unstable();
            k.dedup();
            assert_eq!(k.len(), m);
        }
    }

    #[test]
    fn anchored_queries_are_answerable() {
        // Every keyword of an anchored query matches something in the KB.
        let (g, t) = setup();
        let mut qg = QueryGenerator::new(&g, &t, 3, 2);
        let q = qg.anchored(3).unwrap();
        for &w in &q.keywords {
            let has_node = !t.nodes_matching(w).is_empty();
            let has_attr = !t.attrs_matching(w).is_empty();
            assert!(has_node || has_attr);
        }
        let _ = g;
    }

    #[test]
    fn surface_round_trips_through_vocab() {
        let (g, t) = setup();
        let mut qg = QueryGenerator::new(&g, &t, 3, 3);
        let q = qg.anchored(2).unwrap();
        for (w, s) in q.keywords.iter().zip(&q.surface) {
            assert_eq!(t.lookup_word(s), Some(*w));
        }
    }

    #[test]
    fn batch_counts() {
        let (g, t) = setup();
        let mut qg = QueryGenerator::new(&g, &t, 3, 4);
        let qs = qg.batch(5, 4);
        assert!(qs.len() >= 15, "most slots fill: {}", qs.len());
        for q in &qs {
            assert!((1..=4).contains(&q.keywords.len()));
        }
    }

    #[test]
    fn deterministic() {
        let (g, t) = setup();
        let a = QueryGenerator::new(&g, &t, 3, 9).batch(3, 3);
        let b = QueryGenerator::new(&g, &t, 3, 9).batch(3, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn random_vocab_queries() {
        let (g, t) = setup();
        let mut qg = QueryGenerator::new(&g, &t, 3, 11);
        let q = qg.random_vocab(4);
        assert_eq!(q.keywords.len(), 4);
        let _ = g;
    }
}
