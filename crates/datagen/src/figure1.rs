//! The exact running example of the paper: Figure 1(d).
//!
//! Fourteen nodes (`v1`–`v14`, here 0-indexed in insertion order), the
//! query *"database software company revenue"*, subtrees `T1`–`T3`, tree
//! patterns `P1`/`P2`, and the Example 2.4 score arithmetic are all pinned
//! down by unit tests against this graph.
//!
//! One deliberate deviation: the paper's node `v9` is labeled
//! `"O-R database"`, which tokenizes to three tokens (`o`, `r`,
//! `database`), yet Example 2.4 computes its similarity as 1/2. We label it
//! `"OR database"` (two tokens) so the example's arithmetic holds exactly;
//! see DESIGN.md.

use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};

/// Handles to the interesting nodes of the Figure-1 graph.
#[derive(Clone, Copy, Debug)]
pub struct Figure1 {
    /// `v1` — Software "SQL Server".
    pub sql_server: NodeId,
    /// `v2` — Model "Relational database".
    pub relational_db: NodeId,
    /// `v3` — Company "Microsoft".
    pub microsoft: NodeId,
    /// `v4` — text "US$ 77 billion".
    pub ms_revenue: NodeId,
    /// `v6` — Programming Language "C++".
    pub cpp: NodeId,
    /// `v7` — Software "Oracle DB".
    pub oracle_db: NodeId,
    /// `v8` — Company "Oracle Corp".
    pub oracle_corp: NodeId,
    /// `v9` — Model "OR database".
    pub or_db: NodeId,
    /// `v10` — text "US$ 37 billion".
    pub oracle_revenue: NodeId,
    /// `v11` — Person "Bill Gates".
    pub bill_gates: NodeId,
    /// `v12` — Book "handbook of database and software systems".
    pub book: NodeId,
    /// `v13` — Company "Springer".
    pub springer: NodeId,
    /// `v14` — text "US$ 1 billion".
    pub springer_revenue: NodeId,
}

/// Build the Figure-1(d) knowledge graph.
///
/// PageRank is set **uniformly to 1.0** per Example 2.4's assumption
/// ("assuming every node has the same PageRank score 1"), so the example's
/// score arithmetic can be asserted exactly.
pub fn figure1() -> (KnowledgeGraph, Figure1) {
    let mut b = GraphBuilder::new();
    b.skip_pagerank();

    let software = b.add_type("Software");
    let company = b.add_type("Company");
    let model = b.add_type("Model");
    let person = b.add_type("Person");
    let book_t = b.add_type("Book");
    let lang = b.add_type("Programming Language");

    let genre = b.add_attr("Genre");
    let developer = b.add_attr("Developer");
    let revenue = b.add_attr("Revenue");
    let written_in = b.add_attr("Written in");
    let founder = b.add_attr("Founder");
    let reference = b.add_attr("Reference");
    let publisher = b.add_attr("Publisher");

    let sql_server = b.add_node(software, "SQL Server");
    let relational_db = b.add_node(model, "Relational database");
    let microsoft = b.add_node(company, "Microsoft");
    let cpp = b.add_node(lang, "C++");
    let oracle_db = b.add_node(software, "Oracle DB");
    let oracle_corp = b.add_node(company, "Oracle Corp");
    let or_db = b.add_node(model, "OR database");
    let bill_gates = b.add_node(person, "Bill Gates");
    // Six distinct tokens containing both "database" and "software", so
    // Example 2.4's sim of 1/6 holds for both keywords.
    let book = b.add_node(book_t, "handbook of database and software systems");
    let springer = b.add_node(company, "Springer");

    b.add_edge(sql_server, genre, relational_db);
    b.add_edge(sql_server, developer, microsoft);
    b.add_edge(sql_server, written_in, cpp);
    b.add_edge(sql_server, reference, book);
    let ms_revenue = b.add_text_edge(microsoft, revenue, "US$ 77 billion");
    b.add_edge(microsoft, founder, bill_gates);
    b.add_edge(oracle_db, genre, or_db);
    b.add_edge(oracle_db, developer, oracle_corp);
    b.add_edge(oracle_db, written_in, cpp);
    let oracle_revenue = b.add_text_edge(oracle_corp, revenue, "US$ 37 billion");
    b.add_edge(book, publisher, springer);
    let springer_revenue = b.add_text_edge(springer, revenue, "US$ 1 billion");

    let mut g = b.build();
    let n = g.num_nodes();
    g.set_pagerank(vec![1.0; n]);

    (
        g,
        Figure1 {
            sql_server,
            relational_db,
            microsoft,
            ms_revenue,
            cpp,
            oracle_db,
            oracle_corp,
            or_db,
            oracle_revenue,
            bill_gates,
            book,
            springer,
            springer_revenue,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_text::{SynonymTable, TextIndex};

    #[test]
    fn shape() {
        let (g, f) = figure1();
        assert_eq!(g.num_nodes(), 13); // 10 entities + 3 text values
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.type_text(g.node_type(f.sql_server)), "Software");
        assert_eq!(g.node_text(f.ms_revenue), "US$ 77 billion");
        assert!(g.is_text_node(f.springer_revenue));
        assert_eq!(g.pagerank(f.microsoft), 1.0);
    }

    #[test]
    fn keyword_matches_reproduce_figure5_roots() {
        // Figure 5(b): Roots("database") = {v1, v7, v12} — SQL Server,
        // Oracle DB, and the book (plus the matched nodes themselves are
        // within the roots through trivial paths; here we check the text
        // matches directly).
        let (g, f) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let db = t.lookup_word("database").unwrap();
        let matched = t.nodes_matching(db);
        assert!(matched.contains(&f.relational_db));
        assert!(matched.contains(&f.or_db));
        assert!(matched.contains(&f.book));
        assert_eq!(matched.len(), 3);
    }

    #[test]
    fn example_24_similarities() {
        let (g, f) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let db = t.lookup_word("database").unwrap();
        // "Relational database": 2 tokens → 1/2.
        assert_eq!(
            t.sim_node(db, f.relational_db, g.node_type(f.relational_db)),
            0.5
        );
        // "OR database": 2 tokens → 1/2 (paper's T2 arithmetic).
        assert_eq!(t.sim_node(db, f.or_db, g.node_type(f.or_db)), 0.5);
        // book title: 6 tokens → 1/6.
        let sim = t.sim_node(db, f.book, g.node_type(f.book));
        assert!((sim - 1.0 / 6.0).abs() < 1e-12);
        let sw = t.lookup_word("software").unwrap();
        let sim = t.sim_node(sw, f.book, g.node_type(f.book));
        assert!((sim - 1.0 / 6.0).abs() < 1e-12);
        // "software" on the type of SQL Server → 1.
        assert_eq!(t.sim_node(sw, f.sql_server, g.node_type(f.sql_server)), 1.0);
        // "revenue" on the attribute → 1.
        let rev = t.lookup_word("revenue").unwrap();
        let rev_attr = g.attr_by_text("Revenue").unwrap();
        assert_eq!(t.sim_attr(rev, rev_attr), 1.0);
    }
}
