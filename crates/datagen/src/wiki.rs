//! Synthetic Wikipedia-infobox-like knowledge base.
//!
//! The paper's Wiki dataset (1.89M entities, 3,424 types, 35M edges,
//! extracted from infoboxes) is not redistributable; this generator builds a
//! laptop-scale KB with the *structural properties the algorithms are
//! sensitive to* (see DESIGN.md §5):
//!
//! * **per-type attribute schemas** — each entity type has a fixed slate of
//!   attributes, each with a designated target type or plain-text values;
//!   this is what makes many subtrees share one tree pattern, exactly like
//!   infobox templates do;
//! * **Zipf skew everywhere** — type popularity, hub entities inside each
//!   type, head words in labels, and repeated text values;
//! * **shared attribute names across types** (a global attribute pool), so
//!   one keyword can match edges in many schemas — the source of pattern
//!   blowup as `d` grows (Figures 6–7).

use crate::names;
use crate::zipf::Zipf;
use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Word-index bases carving up the pseudo-word space so entity words, type
/// names, attribute names and value words never collide by construction.
const TYPE_WORD_BASE: usize = 1_000_000;
const ATTR_WORD_BASE: usize = 2_000_000;
const VALUE_WORD_BASE: usize = 3_000_000;

/// Generator parameters; the defaults produce the dataset used by the
/// experiment harness (`experiments` binary).
#[derive(Clone, Debug)]
pub struct WikiConfig {
    /// Number of entities (excluding dummy text-value nodes).
    pub entities: usize,
    /// Number of entity types.
    pub types: usize,
    /// Schema slots (attributes) per type.
    pub attrs_per_type: usize,
    /// Size of the global attribute-name pool shared across schemas.
    pub attr_pool: usize,
    /// Entity-label vocabulary size.
    pub vocab: usize,
    /// Mean out-degree per entity.
    pub avg_degree: f64,
    /// Fraction of schema slots whose values are plain text.
    pub text_value_ratio: f64,
    /// Pool of distinct text values (repeated values share dummy nodes).
    pub value_pool: usize,
    /// Zipf exponent for type popularity.
    pub type_theta: f64,
    /// Zipf exponent for hub selection inside a target type.
    pub target_theta: f64,
    /// Zipf exponent over the label vocabulary.
    pub word_theta: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for WikiConfig {
    fn default() -> Self {
        WikiConfig {
            entities: 20_000,
            types: 100,
            attrs_per_type: 4,
            attr_pool: 60,
            vocab: 1_200,
            avg_degree: 4.0,
            text_value_ratio: 0.35,
            value_pool: 400,
            type_theta: 0.8,
            target_theta: 0.7,
            word_theta: 0.9,
            seed: 42,
        }
    }
}

impl WikiConfig {
    /// A small config for unit tests (fast to index even at `d = 4`).
    pub fn tiny(seed: u64) -> Self {
        WikiConfig {
            entities: 600,
            types: 12,
            attrs_per_type: 3,
            attr_pool: 10,
            vocab: 80,
            avg_degree: 3.0,
            value_pool: 40,
            seed,
            ..Default::default()
        }
    }
}

/// One schema slot of a type.
#[derive(Clone, Copy, Debug)]
struct Slot {
    attr: usize,
    /// `None` = plain-text value; `Some(t)` = entities of type `t`.
    target_type: Option<usize>,
}

/// Generate the knowledge graph.
pub fn wiki(cfg: &WikiConfig) -> KnowledgeGraph {
    assert!(cfg.entities > 0 && cfg.types > 0 && cfg.vocab > 0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(
        cfg.entities + cfg.value_pool,
        (cfg.entities as f64 * cfg.avg_degree) as usize,
    );

    // --- types and the shared attribute pool ---
    let type_ids: Vec<_> = (0..cfg.types)
        .map(|t| b.add_type(&names::title(&[TYPE_WORD_BASE + t])))
        .collect();
    let attr_ids: Vec<_> = (0..cfg.attr_pool)
        .map(|a| b.add_attr(&names::title(&[ATTR_WORD_BASE + a])))
        .collect();

    // --- schemas: each type gets `attrs_per_type` slots ---
    let attr_zipf = Zipf::new(cfg.attr_pool, 0.6);
    let type_zipf = Zipf::new(cfg.types, cfg.type_theta);
    let schemas: Vec<Vec<Slot>> = (0..cfg.types)
        .map(|_| {
            let mut slots = Vec::with_capacity(cfg.attrs_per_type);
            for _ in 0..cfg.attrs_per_type {
                let attr = attr_zipf.sample(&mut rng);
                let target_type = if rng.gen::<f64>() < cfg.text_value_ratio {
                    None
                } else {
                    Some(type_zipf.sample(&mut rng))
                };
                slots.push(Slot { attr, target_type });
            }
            slots
        })
        .collect();

    // --- entities with Zipf types and 1–3 word labels ---
    let word_zipf = Zipf::new(cfg.vocab, cfg.word_theta);
    let mut entity_type: Vec<usize> = Vec::with_capacity(cfg.entities);
    let mut by_type: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.types];
    let mut entities: Vec<NodeId> = Vec::with_capacity(cfg.entities);
    for _ in 0..cfg.entities {
        let t = type_zipf.sample(&mut rng);
        let nwords = 1 + rng.gen_range(0..3);
        let words: Vec<usize> = (0..nwords).map(|_| word_zipf.sample(&mut rng)).collect();
        let node = b.add_node(type_ids[t], &names::title(&words));
        entity_type.push(t);
        by_type[t].push(node);
        entities.push(node);
    }

    // --- text-value pool (1–3 words each) ---
    let value_texts: Vec<String> = (0..cfg.value_pool.max(1))
        .map(|i| {
            let nwords = 1 + (i % 3);
            let words: Vec<usize> = (0..nwords)
                .map(|k| VALUE_WORD_BASE + (i * 3 + k) % (cfg.value_pool.max(1) * 2))
                .collect();
            names::phrase(&words)
        })
        .collect();
    let value_zipf = Zipf::new(value_texts.len(), 0.9);

    // --- edges per schema slot ---
    // Each slot fires a number of times so the expected total per entity is
    // `avg_degree`: per-slot mean = avg_degree / attrs_per_type, realized as
    // floor + Bernoulli(frac).
    let per_slot = cfg.avg_degree / cfg.attrs_per_type as f64;
    let base_count = per_slot.floor() as usize;
    let frac = per_slot - per_slot.floor();
    for (i, &e) in entities.iter().enumerate() {
        let t = entity_type[i];
        for slot in &schemas[t] {
            let mut k = base_count;
            if rng.gen::<f64>() < frac {
                k += 1;
            }
            for _ in 0..k {
                match slot.target_type {
                    None => {
                        let v = value_zipf.sample(&mut rng);
                        b.add_text_edge(e, attr_ids[slot.attr], &value_texts[v]);
                    }
                    Some(tt) => {
                        if by_type[tt].is_empty() {
                            continue;
                        }
                        let hub = Zipf::new(by_type[tt].len(), cfg.target_theta);
                        let target = by_type[tt][hub.sample(&mut rng)];
                        if target != e {
                            b.add_edge(e, attr_ids[slot.attr], target);
                        }
                    }
                }
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::GraphStats;

    #[test]
    fn deterministic() {
        let a = wiki(&WikiConfig::tiny(7));
        let b = wiki(&WikiConfig::tiny(7));
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.nodes() {
            assert_eq!(a.node_text(v), b.node_text(v));
        }
    }

    #[test]
    fn seeds_differ() {
        let a = wiki(&WikiConfig::tiny(1));
        let b = wiki(&WikiConfig::tiny(2));
        // Same node count (entities fixed) but different wiring.
        let ea: Vec<_> = a.edges().map(|e| (e.source, e.attr.0, e.target)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.source, e.attr.0, e.target)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn shape_is_plausible() {
        let cfg = WikiConfig::tiny(42);
        let g = wiki(&cfg);
        let s = GraphStats::of(&g);
        assert!(s.nodes >= cfg.entities);
        assert!(s.text_nodes > 0, "text values present");
        assert!(s.edges > cfg.entities, "avg degree > 1");
        assert_eq!(s.types, cfg.types + 1); // + reserved text type
                                            // Hubs exist: max in-degree well above the average.
        assert!(s.max_in_degree > 5);
        // PageRank computed by default.
        assert!(g.nodes().any(|v| g.pagerank(v) > 0.0));
    }

    #[test]
    fn type_skew_present() {
        let g = wiki(&WikiConfig::tiny(42));
        let mut counts = vec![0usize; g.num_types()];
        for v in g.nodes() {
            counts[patternkb_graph::ids::Id::index(g.node_type(v))] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Head type at least 3× the median type.
        let median = counts[g.num_types() / 2].max(1);
        assert!(
            counts[0] >= 3 * median,
            "head {} median {}",
            counts[0],
            median
        );
    }
}
