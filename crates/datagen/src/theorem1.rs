//! The #P-hardness reduction of Theorem 1 (Appendix A).
//!
//! From an s-t PATHS instance `(G, s, t)` the reduction builds a knowledge
//! graph `G2` with two disjoint copies of `G` hanging off a fresh root, all
//! node/edge types and texts unique. With the 2-keyword query naming the two
//! copies of `t` and `d = |V| + 1`,
//!
//! ```text
//! #tree-patterns(G2, q, d)  =  (#simple s-t paths in G)²
//! ```
//!
//! because the only candidate root reaching both keywords is the fresh root,
//! and every simple `s→t` path yields a distinct pattern (types are unique).
//! The search crate's counting tests assert this identity against a brute-
//! force simple-path counter.

use crate::names;
use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Output of [`reduce`].
pub struct Reduction {
    /// The constructed knowledge graph `G2`.
    pub graph: KnowledgeGraph,
    /// The two query keywords (texts of `t'` and `t''`).
    pub query: [String; 2],
    /// The height threshold `d = |V| + 1` to use.
    pub d: usize,
    /// The fresh root node.
    pub root: NodeId,
}

/// Build the reduction for the digraph on `n` nodes with the given edge
/// list, source `s` and target `t`.
///
/// # Panics
/// If `s`/`t` or any edge endpoint is out of range, or `s == t` is fine but
/// self-loops in `edges` are rejected.
pub fn reduce(n: usize, edges: &[(usize, usize)], s: usize, t: usize) -> Reduction {
    assert!(s < n && t < n);
    let mut b = GraphBuilder::with_capacity(2 * n + 1, 2 * edges.len() + 2);

    // Unique types/texts per node and copy; unique attrs per edge and copy.
    let copy_nodes = |b: &mut GraphBuilder, base: usize| -> Vec<NodeId> {
        (0..n)
            .map(|i| {
                let ty = b.add_type(&names::title(&[7_000_000 + base + i]));
                b.add_node(ty, &names::word(7_100_000 + base + i))
            })
            .collect()
    };
    let c1 = copy_nodes(&mut b, 0);
    let c2 = copy_nodes(&mut b, 10_000);
    for (k, &(u, v)) in edges.iter().enumerate() {
        assert!(u < n && v < n && u != v, "bad edge ({u},{v})");
        let a1 = b.add_attr(&names::title(&[7_200_000 + k]));
        let a2 = b.add_attr(&names::title(&[7_210_000 + k]));
        b.add_edge(c1[u], a1, c1[v]);
        b.add_edge(c2[u], a2, c2[v]);
    }
    let root_ty = b.add_type("Reductionroot");
    let root = b.add_node(root_ty, "reductionroot");
    let ra1 = b.add_attr(&names::title(&[7_300_000]));
    let ra2 = b.add_attr(&names::title(&[7_300_001]));
    b.add_edge(root, ra1, c1[s]);
    b.add_edge(root, ra2, c2[s]);

    let q1 = names::word(7_100_000 + t);
    let q2 = names::word(7_100_000 + 10_000 + t);
    Reduction {
        graph: b.build(),
        query: [q1, q2],
        d: n + 1,
        root,
    }
}

/// A random simple digraph on `n` nodes with edge probability `density`,
/// for property tests. Self-loops excluded; may contain cycles.
pub fn random_digraph(n: usize, density: f64, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < density {
                edges.push((u, v));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::traversal::count_simple_paths;

    #[test]
    fn reduction_shape() {
        // Diamond: 0→1→3, 0→2→3.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        let r = reduce(4, &edges, 0, 3);
        assert_eq!(r.graph.num_nodes(), 9); // 2×4 + root
        assert_eq!(r.graph.num_edges(), 10); // 2×4 + 2
        assert_eq!(r.d, 5);
        assert_ne!(r.query[0], r.query[1]);
    }

    #[test]
    fn paths_from_root_mirror_original() {
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        let r = reduce(4, &edges, 0, 3);
        // In G: 2 simple 0→3 paths. From the reduction root, each copy's t
        // is reachable by 2 simple paths.
        let g = &r.graph;
        let targets: Vec<NodeId> = g
            .nodes()
            .filter(|&v| {
                let txt = g.node_text(v);
                txt == r.query[0] || txt == r.query[1]
            })
            .collect();
        assert_eq!(targets.len(), 2);
        for &t in &targets {
            assert_eq!(count_simple_paths(g, r.root, t), 2);
        }
    }

    #[test]
    fn random_digraph_is_deterministic() {
        assert_eq!(random_digraph(5, 0.4, 3), random_digraph(5, 0.4, 3));
        assert!(random_digraph(5, 1.0, 0).len() == 20);
        assert!(random_digraph(5, 0.0, 0).is_empty());
    }
}
