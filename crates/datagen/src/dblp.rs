//! Synthetic DBLP-like bibliographic knowledge base.
//!
//! The paper names DBLP as a specialized knowledge base (§1). Unlike the
//! IMDB schema (max path length 3), citations chain arbitrarily deep
//! (`Paper -Cites-> Paper -Cites-> …`), so this dataset exercises the
//! height threshold `d` in a way neither Wiki-like nor IMDB-like graphs
//! do: the number of patterns for a fixed query keeps growing with `d`.
//!
//! Types: Paper, Author, Venue. Edges: `Author by`, `Published in`,
//! `Cites` (strictly older papers — the citation graph is a DAG), `Year`
//! (text).

use crate::names;
use crate::zipf::Zipf;
use patternkb_graph::{GraphBuilder, KnowledgeGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const AUTHOR_WORD_BASE: usize = 8_000_000;
const TITLE_WORD_BASE: usize = 8_500_000;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of papers.
    pub papers: usize,
    /// Mean citations per paper.
    pub avg_citations: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            papers: 10_000,
            avg_citations: 4.0,
            seed: 42,
        }
    }
}

impl DblpConfig {
    /// A small config for unit tests.
    pub fn tiny(seed: u64) -> Self {
        DblpConfig {
            papers: 400,
            avg_citations: 3.0,
            seed,
        }
    }
}

/// Generate the DBLP-like knowledge graph.
pub fn dblp(cfg: &DblpConfig) -> KnowledgeGraph {
    assert!(cfg.papers >= 10);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n_papers = cfg.papers;
    let n_authors = (cfg.papers / 3).max(5);
    let n_venues = (cfg.papers / 200).clamp(3, 50);

    let mut b = GraphBuilder::with_capacity(
        n_papers + n_authors + n_venues,
        (n_papers as f64 * (cfg.avg_citations + 4.0)) as usize,
    );
    let paper_t = b.add_type("Paper");
    let author_t = b.add_type("Author");
    let venue_t = b.add_type("Venue");
    let by = b.add_attr("Author by");
    let published = b.add_attr("Published in");
    let cites = b.add_attr("Cites");
    let year_a = b.add_attr("Year");

    let authors: Vec<_> = (0..n_authors)
        .map(|i| {
            b.add_node(
                author_t,
                &names::title(&[AUTHOR_WORD_BASE + 2 * i, AUTHOR_WORD_BASE + 2 * i + 1]),
            )
        })
        .collect();
    let venues: Vec<_> = (0..n_venues)
        .map(|i| b.add_node(venue_t, &names::title(&[AUTHOR_WORD_BASE + 900_000 + i])))
        .collect();

    // Papers in chronological order: paper i may only cite papers < i, so
    // the citation graph is a DAG (like real bibliographies).
    let title_zipf = Zipf::new(600.min(3 * n_papers), 0.8);
    let author_zipf = Zipf::new(n_authors, 0.9); // prolific authors
    let venue_zipf = Zipf::new(n_venues, 0.9);
    let mut papers = Vec::with_capacity(n_papers);
    for i in 0..n_papers {
        let nwords = 2 + rng.gen_range(0..4);
        let words: Vec<usize> = (0..nwords)
            .map(|_| TITLE_WORD_BASE + title_zipf.sample(&mut rng))
            .collect();
        let p = b.add_node(paper_t, &names::title(&words));
        for _ in 0..rng.gen_range(1..4) {
            b.add_edge(p, by, authors[author_zipf.sample(&mut rng)]);
        }
        b.add_edge(p, published, venues[venue_zipf.sample(&mut rng)]);
        b.add_text_edge(p, year_a, &format!("{}", 1970 + (i * 55) / n_papers));
        if i > 0 {
            // Preferential attachment to recent + popular papers.
            let ncites = {
                let lambda = cfg.avg_citations;
                let mut k = lambda.floor() as usize;
                if rng.gen::<f64>() < lambda - lambda.floor() {
                    k += 1;
                }
                k.min(i)
            };
            for _ in 0..ncites {
                let back = Zipf::new(i, 0.6).sample(&mut rng);
                let target = i - 1 - back;
                b.add_edge(p, cites, papers[target]);
            }
        }
        papers.push(p);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::NodeId;

    #[test]
    fn shape() {
        let g = dblp(&DblpConfig::tiny(1));
        // Paper + Author + Venue + text type.
        assert_eq!(g.num_types(), 4);
        assert!(g.num_edges() > 400 * 3);
    }

    #[test]
    fn citations_form_a_dag() {
        let g = dblp(&DblpConfig::tiny(2));
        let cites = g.attr_by_text("Cites").unwrap();
        // Kahn-style check restricted to Cites edges: every Cites edge goes
        // from a higher node id to a lower one (chronological insertion).
        for e in g.edges() {
            if e.attr == cites {
                assert!(e.source > e.target, "citation must point backwards");
            }
        }
    }

    #[test]
    fn citation_chains_exceed_three_nodes() {
        // Unlike IMDB, deep directed paths must exist, so d > 3 matters.
        let g = dblp(&DblpConfig::tiny(3));
        let mut found = false;
        for v in (0..g.num_nodes() as u32).rev().take(100).map(NodeId) {
            patternkb_graph::traversal::for_each_path(&g, v, 5, |nodes, _| {
                if nodes.len() == 5 {
                    found = true;
                }
            });
            if found {
                break;
            }
        }
        assert!(found, "5-node citation chains should exist");
    }

    #[test]
    fn deterministic() {
        let a = dblp(&DblpConfig::tiny(7));
        let b = dblp(&DblpConfig::tiny(7));
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn prolific_authors_exist() {
        let g = dblp(&DblpConfig::tiny(9));
        let author_t = g.type_by_text("Author").unwrap();
        let max_papers = g
            .nodes()
            .filter(|&v| g.node_type(v) == author_t)
            .map(|v| g.in_degree(v))
            .max()
            .unwrap();
        assert!(
            max_papers > 10,
            "zipf authorship should create prolific authors"
        );
    }
}
