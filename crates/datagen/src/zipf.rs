//! A small Zipf(θ) sampler over `0..n`.
//!
//! Knowledge-base skew — a few huge types, hub entities, and head words —
//! is what makes the paper's bucketed experiments interesting; all the
//! generators drive their choices through this sampler.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `theta`
/// (`P(k) ∝ 1/(k+1)^theta`). Uses a precomputed CDF; sampling is a binary
/// search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `n` must be positive; `theta = 0` is the
    /// uniform distribution.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (1500..2500).contains(&c),
                "uniform counts skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn skewed_when_theta_positive() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Head rank gets a large share under θ=1.
        assert!(counts[0] as f64 / 50_000.0 > 0.1);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn rejects_empty() {
        Zipf::new(0, 1.0);
    }
}
