//! # patternkb-datagen
//!
//! Synthetic knowledge bases and query workloads standing in for the
//! resources the paper evaluates on but does not publish:
//!
//! * [`mod@wiki`] — a Wikipedia-infobox-like KB (the paper: 1.89M entities,
//!   3,424 types, 35M edges) scaled to laptop size, with per-type attribute
//!   schemas, Zipf-skewed types/degrees/vocabulary and plain-text values;
//! * [`mod@imdb`] — an IMDB-like KB with exactly 7 entity types whose schema
//!   has no directed path longer than 3 nodes (the structural property the
//!   paper exploits: `d = 3` saturates on IMDB);
//! * [`mod@figure1`] — the exact running example of Figure 1(d), used by unit
//!   tests to pin down Example 2.x arithmetic and by the quickstart;
//! * [`worstcase`] — the §4.1 adversarial construction on which
//!   `PATTERNENUM` wastes `Θ(p²)` empty pattern joins;
//! * [`theorem1`] — the #P-hardness reduction graphs of Appendix A;
//! * [`queries`] — query generators mirroring §5 ("randomly selected
//!   queries … the numbers of keywords vary from 1 to 10, and for each we
//!   have 50 queries").
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]

pub mod dblp;
pub mod figure1;
pub mod imdb;
pub mod names;
pub mod queries;
pub mod theorem1;
pub mod wiki;
pub mod worstcase;
pub mod zipf;

pub use dblp::{dblp, DblpConfig};
pub use figure1::figure1;
pub use imdb::{imdb, ImdbConfig};
pub use queries::{QueryGenerator, QuerySpec};
pub use wiki::{wiki, WikiConfig};
