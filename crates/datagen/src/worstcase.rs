//! The adversarial construction of §4.1.
//!
//! > "In a knowledge graph, we have two nodes r1 and r2 with the same type
//! > C; r1 points to p nodes v1, …, vp of types C1, …, Cp through edges of
//! > types A1, …, Ap; and r2 points to another p nodes v_{p+1}, …, v_{2p} of
//! > types C_{p+1}, …, C_{2p} through edges of types A_{p+1}, …, A_{2p}. We
//! > have two words w1 and w2, w1 appearing in v1, …, vp and w2 appearing in
//! > v_{p+1}, …, v_{2p}."
//!
//! For the query `{w1, w2}`, `PATTERNENUM` enumerates `p²` combined tree
//! patterns, **all empty** (no root reaches both words through any single
//! combination), so its running time is `Θ(p²)` while `LINEARENUM` finds the
//! empty answer in time linear in the index. The `worst_case` bench measures
//! exactly this gap.

use crate::names;
use patternkb_graph::{GraphBuilder, KnowledgeGraph};

/// The two query words planted in the construction.
pub const W1: &str = "alphaword";
/// See [`W1`].
pub const W2: &str = "betaword";

/// Build the worst-case graph with fan-out `p ≥ 1`.
pub fn worstcase(p: usize) -> KnowledgeGraph {
    assert!(p >= 1);
    let mut b = GraphBuilder::with_capacity(2 + 2 * p, 2 * p);
    let c = b.add_type("Root");
    let r1 = b.add_node(c, "rootone");
    let r2 = b.add_node(c, "roottwo");
    for i in 0..p {
        let ct = b.add_type(&names::title(&[6_000_000 + i]));
        let at = b.add_attr(&names::title(&[6_100_000 + i]));
        let v = b.add_node(ct, &format!("{W1} {}", names::word(6_200_000 + i)));
        b.add_edge(r1, at, v);
    }
    for i in 0..p {
        let ct = b.add_type(&names::title(&[6_300_000 + i]));
        let at = b.add_attr(&names::title(&[6_400_000 + i]));
        let v = b.add_node(ct, &format!("{W2} {}", names::word(6_500_000 + i)));
        b.add_edge(r2, at, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_text::{SynonymTable, TextIndex};

    #[test]
    fn shape() {
        let g = worstcase(5);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn words_split_between_branches() {
        let g = worstcase(4);
        let t = TextIndex::build(&g, SynonymTable::new());
        let w1 = t.lookup_word(W1).unwrap();
        let w2 = t.lookup_word(W2).unwrap();
        assert_eq!(t.nodes_matching(w1).len(), 4);
        assert_eq!(t.nodes_matching(w2).len(), 4);
        // No node matches both words.
        let m1: std::collections::HashSet<_> = t.nodes_matching(w1).iter().collect();
        assert!(t.nodes_matching(w2).iter().all(|v| !m1.contains(v)));
    }

    #[test]
    fn all_types_distinct_across_leaves() {
        let g = worstcase(6);
        // 1 root type + 12 leaf types + reserved text type.
        assert_eq!(g.num_types(), 14);
    }
}
