//! Graphviz (DOT) export of knowledge graphs and node-induced fragments.
//!
//! Useful for inspecting generated datasets and for documenting answers:
//! `dot -Tsvg graph.dot -o graph.svg`.

use crate::graph::KnowledgeGraph;
use crate::ids::{Id, NodeId};

/// Escape a string for a DOT double-quoted label.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the whole graph in DOT format. Intended for small graphs (the
/// Figure-1 example, reductions, worst cases); dataset-scale graphs will
/// produce unreadably large output.
pub fn to_dot(g: &KnowledgeGraph) -> String {
    let nodes: Vec<NodeId> = g.nodes().collect();
    fragment_dot(g, &nodes)
}

/// Render the subgraph induced by `nodes` (plus all edges among them).
pub fn fragment_dot(g: &KnowledgeGraph, nodes: &[NodeId]) -> String {
    let mut keep = vec![false; g.num_nodes()];
    for &v in nodes {
        keep[v.index()] = true;
    }
    let mut out =
        String::from("digraph patternkb {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for &v in nodes {
        let t = g.node_type(v);
        let label = if t == KnowledgeGraph::TEXT_TYPE {
            escape(g.node_text(v)).to_string()
        } else {
            format!("{}\\n({})", escape(g.node_text(v)), escape(g.type_text(t)))
        };
        let style = if t == KnowledgeGraph::TEXT_TYPE {
            ", style=dashed"
        } else {
            ""
        };
        out.push_str(&format!("  n{} [label=\"{}\"{}];\n", v.0, label, style));
    }
    for &v in nodes {
        for (attr, target) in g.out_edges(v) {
            if keep[target.index()] {
                out.push_str(&format!(
                    "  n{} -> n{} [label=\"{}\", fontsize=9];\n",
                    v.0,
                    target.0,
                    escape(g.attr_text(attr))
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("Software");
        let a = b.add_attr("Developer");
        let x = b.add_node(t, "SQL \"Server\"");
        let y = b.add_node(t, "Microsoft");
        b.add_edge(x, a, y);
        b.add_text_edge(y, a, "text value");
        b.build()
    }

    #[test]
    fn whole_graph() {
        let g = sample();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("Developer"));
        // Quotes escaped.
        assert!(dot.contains("SQL \\\"Server\\\""));
        // Text node dashed.
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn fragment_excludes_outside_edges() {
        let g = sample();
        let dot = fragment_dot(&g, &[NodeId(0), NodeId(1)]);
        assert!(dot.contains("n0 -> n1"));
        assert!(!dot.contains("n1 -> n2"), "edge to excluded node dropped");
    }

    #[test]
    fn empty_fragment() {
        let g = sample();
        let dot = fragment_dot(&g, &[]);
        assert!(dot.contains("digraph"));
        assert!(!dot.contains("->"));
    }
}
