//! Versioned binary snapshots of a [`KnowledgeGraph`].
//!
//! Large synthetic datasets are expensive to regenerate, so the experiment
//! harness persists them. The codec is hand-written over [`bytes`]: a small,
//! dependency-light length-prefixed format.
//!
//! Layout (little endian):
//!
//! ```text
//! magic "PKBG" | u32 version | types | attrs |
//! u32 n | n × (u32 type, str text) |
//! u32 m | m × (u32 src, u32 attr, u32 dst) |
//! u8 has_pagerank | n × f64
//! ```
//!
//! where an interner is `u32 count | count × str` and `str` is
//! `u32 len | bytes`.

use crate::builder::GraphBuilder;
use crate::graph::KnowledgeGraph;
use crate::ids::Id;
use crate::interner::Interner;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PKBG";
const VERSION: u32 = 1;

/// Errors from [`decode`].
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input does not start with the `PKBG` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Input ended early or a length prefix overruns the buffer.
    Truncated,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id referenced an out-of-range interner slot or node.
    BadReference,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a patternkb graph snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            SnapshotError::BadReference => write!(f, "snapshot contains out-of-range id"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SnapshotError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::BadUtf8)
}

fn put_interner<I: Id>(buf: &mut BytesMut, interner: &Interner<I>) {
    buf.put_u32_le(interner.len() as u32);
    for (_, s) in interner.iter() {
        put_str(buf, s);
    }
}

fn get_u32(buf: &mut Bytes) -> Result<u32, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Serialize `g` to a byte buffer.
pub fn encode(g: &KnowledgeGraph) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + g.heap_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_interner(&mut buf, g.types());
    put_interner(&mut buf, g.attrs());
    buf.put_u32_le(g.num_nodes() as u32);
    for v in g.nodes() {
        buf.put_u32_le(g.node_type(v).as_u32());
        put_str(&mut buf, g.node_text(v));
    }
    buf.put_u32_le(g.num_edges() as u32);
    for e in g.edges() {
        buf.put_u32_le(e.source.as_u32());
        buf.put_u32_le(e.attr.as_u32());
        buf.put_u32_le(e.target.as_u32());
    }
    let has_pr = g.nodes().any(|v| g.pagerank(v) != 0.0);
    buf.put_u8(has_pr as u8);
    if has_pr {
        for v in g.nodes() {
            buf.put_f64_le(g.pagerank(v));
        }
    }
    buf.to_vec()
}

/// Deserialize a graph previously produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<KnowledgeGraph, SnapshotError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }

    let ntypes = get_u32(&mut buf)? as usize;
    let mut type_texts = Vec::with_capacity(ntypes);
    for _ in 0..ntypes {
        type_texts.push(get_str(&mut buf)?);
    }
    if type_texts.first().map(String::as_str) != Some("") {
        return Err(SnapshotError::BadReference);
    }
    let nattrs = get_u32(&mut buf)? as usize;
    let mut attr_texts = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        attr_texts.push(get_str(&mut buf)?);
    }

    let mut b = GraphBuilder::new();
    b.skip_pagerank();
    let mut type_ids = Vec::with_capacity(ntypes);
    type_ids.push(KnowledgeGraph::TEXT_TYPE);
    for t in type_texts.iter().skip(1) {
        type_ids.push(b.add_type(t));
    }
    let mut attr_ids = Vec::with_capacity(nattrs);
    for a in &attr_texts {
        attr_ids.push(b.add_attr(a));
    }

    let n = get_u32(&mut buf)? as usize;
    let mut node_ids = Vec::with_capacity(n);
    for _ in 0..n {
        let t = get_u32(&mut buf)? as usize;
        let text = get_str(&mut buf)?;
        let &tid = type_ids.get(t).ok_or(SnapshotError::BadReference)?;
        node_ids.push(b.add_node(tid, &text));
    }
    let m = get_u32(&mut buf)? as usize;
    for _ in 0..m {
        let s = get_u32(&mut buf)? as usize;
        let a = get_u32(&mut buf)? as usize;
        let t = get_u32(&mut buf)? as usize;
        let &src = node_ids.get(s).ok_or(SnapshotError::BadReference)?;
        let &attr = attr_ids.get(a).ok_or(SnapshotError::BadReference)?;
        let &dst = node_ids.get(t).ok_or(SnapshotError::BadReference)?;
        b.add_edge(src, attr, dst);
    }
    let mut g = b.build();
    if buf.remaining() < 1 {
        return Err(SnapshotError::Truncated);
    }
    if buf.get_u8() == 1 {
        if buf.remaining() < 8 * n {
            return Err(SnapshotError::Truncated);
        }
        let mut pr = Vec::with_capacity(n);
        for _ in 0..n {
            pr.push(buf.get_f64_le());
        }
        g.set_pagerank(pr);
    }
    Ok(g)
}

/// Write a snapshot to `path`.
pub fn save(g: &KnowledgeGraph, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(g))
}

/// Read a snapshot from `path`.
pub fn load(path: &std::path::Path) -> std::io::Result<KnowledgeGraph> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let t1 = b.add_type("Software");
        let t2 = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let sql = b.add_node(t1, "SQL Server");
        let ms = b.add_node(t2, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let decoded = decode(&encode(&g)).expect("decode");
        assert_eq!(decoded.num_nodes(), g.num_nodes());
        assert_eq!(decoded.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(decoded.node_text(v), g.node_text(v));
            assert_eq!(
                decoded.type_text(decoded.node_type(v)),
                g.type_text(g.node_type(v))
            );
            assert!((decoded.pagerank(v) - g.pagerank(v)).abs() < 1e-15);
        }
        let ge: Vec<_> = g.edges().collect();
        let de: Vec<_> = decoded.edges().collect();
        assert_eq!(ge.len(), de.len());
        for (a, b) in ge.iter().zip(&de) {
            assert_eq!(g.attr_text(a.attr), decoded.attr_text(b.attr));
            assert_eq!(a.source, b.source);
            assert_eq!(a.target, b.target);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), SnapshotError::Truncated);
        assert_eq!(
            decode(b"XXXX\x01\x00\x00\x00").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode(&sample());
        data[4] = 99;
        assert_eq!(decode(&data).unwrap_err(), SnapshotError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data = encode(&sample());
        // Chop the buffer at a few places; decoding must error, not panic.
        for cut in [5, 10, 20, data.len() / 2, data.len() - 1] {
            assert!(decode(&data[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("patternkb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pkbg");
        save(&g, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_nodes(), g.num_nodes());
        std::fs::remove_file(&path).ok();
    }
}
