//! Versioned binary snapshots of a [`KnowledgeGraph`].
//!
//! Large synthetic datasets are expensive to regenerate, so the experiment
//! harness persists them. The codec is hand-written over [`bytes`]: a small,
//! dependency-light length-prefixed format.
//!
//! Layout (little endian):
//!
//! ```text
//! magic "PKBG" | u32 version | types | attrs |
//! u32 n | n × (u32 type, str text) |
//! u32 m | m × (u32 src, u32 attr, u32 dst) |
//! u8 has_pagerank | n × f64
//! ```
//!
//! where an interner is `u32 count | count × str` and `str` is
//! `u32 len | bytes`.
//!
//! The module also owns the pieces every other binary codec in the stack
//! shares: [`SnapshotError`] (decode failures carrying the byte offset
//! where they happened) and [`Reader`] (a little-endian cursor that
//! produces those errors). The index snapshot, the delta codec and the
//! write-ahead log all decode through them, so a corrupt file anywhere
//! reports the same actionable `<path>: … at byte N` shape.

use crate::builder::GraphBuilder;
use crate::graph::KnowledgeGraph;
use crate::ids::Id;
use crate::interner::Interner;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PKBG";
const VERSION: u32 = 1;

/// Errors from decoding any patternkb binary format ([`decode`], the index
/// snapshot, the delta codec, WAL records).
///
/// Every data-dependent variant carries the absolute byte offset at which
/// decoding failed, so a corrupt-file report pinpoints the damage instead
/// of just naming the failure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input does not start with the expected magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Input ended early or a length prefix overruns the buffer.
    Truncated {
        /// Byte offset at which the input ran out.
        offset: usize,
    },
    /// A string was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the offending string's length prefix.
        offset: usize,
    },
    /// An id referenced an out-of-range interner slot or node.
    BadReference {
        /// Byte offset just past the record holding the bad id.
        offset: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a patternkb snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot is truncated at byte {offset}")
            }
            SnapshotError::BadUtf8 { offset } => {
                write!(f, "snapshot contains invalid UTF-8 at byte {offset}")
            }
            SnapshotError::BadReference { offset } => {
                write!(f, "snapshot contains an out-of-range id near byte {offset}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Wrap a decode failure as [`std::io::ErrorKind::InvalidData`], prefixed
/// with the file path — the one helper every IO call site (graph and index
/// snapshots, WAL segments, checkpoints) uses so corrupt-file reports name
/// the file *and* the byte offset.
pub fn invalid_data(path: &std::path::Path, e: SnapshotError) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("{}: {e}", path.display()),
    )
}

/// A little-endian decoding cursor that tracks its absolute byte offset
/// and reports it in every error. Shared by all binary codecs in the
/// workspace (graph/index snapshots, [`crate::mutate::GraphDelta`] bytes,
/// WAL records).
pub struct Reader {
    buf: Bytes,
    total: usize,
}

impl Reader {
    /// A cursor over `data`, positioned at byte 0.
    pub fn new(data: &[u8]) -> Self {
        Reader {
            buf: Bytes::copy_from_slice(data),
            total: data.len(),
        }
    }

    /// Absolute byte offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.total - self.buf.remaining()
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Fail with [`SnapshotError::Truncated`] unless `n` bytes remain.
    pub fn need(&self, n: usize) -> Result<(), SnapshotError> {
        if self.buf.remaining() < n {
            Err(SnapshotError::Truncated {
                offset: self.offset(),
            })
        } else {
            Ok(())
        }
    }

    /// A [`SnapshotError::BadReference`] at the current offset, for call
    /// sites that validate an id they just read.
    pub fn bad_reference(&self) -> SnapshotError {
        SnapshotError::BadReference {
            offset: self.offset(),
        }
    }

    /// Read exactly `out.len()` bytes.
    pub fn take(&mut self, out: &mut [u8]) -> Result<(), SnapshotError> {
        self.need(out.len())?;
        self.buf.copy_to_slice(out);
        Ok(())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Read a `u32 len | bytes` length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let start = self.offset();
        let len = self.u32()? as usize;
        self.need(len)?;
        let raw = self.buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::BadUtf8 { offset: start })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_interner<I: Id>(buf: &mut BytesMut, interner: &Interner<I>) {
    buf.put_u32_le(interner.len() as u32);
    for (_, s) in interner.iter() {
        put_str(buf, s);
    }
}

/// Serialize `g` to a byte buffer.
pub fn encode(g: &KnowledgeGraph) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + g.heap_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_interner(&mut buf, g.types());
    put_interner(&mut buf, g.attrs());
    buf.put_u32_le(g.num_nodes() as u32);
    for v in g.nodes() {
        buf.put_u32_le(g.node_type(v).as_u32());
        put_str(&mut buf, g.node_text(v));
    }
    buf.put_u32_le(g.num_edges() as u32);
    for e in g.edges() {
        buf.put_u32_le(e.source.as_u32());
        buf.put_u32_le(e.attr.as_u32());
        buf.put_u32_le(e.target.as_u32());
    }
    let has_pr = g.nodes().any(|v| g.pagerank(v) != 0.0);
    buf.put_u8(has_pr as u8);
    if has_pr {
        for v in g.nodes() {
            buf.put_f64_le(g.pagerank(v));
        }
    }
    buf.to_vec()
}

/// Deserialize a graph previously produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<KnowledgeGraph, SnapshotError> {
    let mut r = Reader::new(data);
    let mut magic = [0u8; 4];
    r.take(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }

    let ntypes = r.u32()? as usize;
    let mut type_texts = Vec::with_capacity(ntypes);
    for _ in 0..ntypes {
        type_texts.push(r.str()?);
    }
    if type_texts.first().map(String::as_str) != Some("") {
        return Err(r.bad_reference());
    }
    let nattrs = r.u32()? as usize;
    let mut attr_texts = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        attr_texts.push(r.str()?);
    }

    let mut b = GraphBuilder::new();
    b.skip_pagerank();
    let mut type_ids = Vec::with_capacity(ntypes);
    type_ids.push(KnowledgeGraph::TEXT_TYPE);
    for t in type_texts.iter().skip(1) {
        type_ids.push(b.add_type(t));
    }
    let mut attr_ids = Vec::with_capacity(nattrs);
    for a in &attr_texts {
        attr_ids.push(b.add_attr(a));
    }

    let n = r.u32()? as usize;
    let mut node_ids = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.u32()? as usize;
        let text = r.str()?;
        let &tid = type_ids.get(t).ok_or_else(|| r.bad_reference())?;
        node_ids.push(b.add_node(tid, &text));
    }
    let m = r.u32()? as usize;
    for _ in 0..m {
        let s = r.u32()? as usize;
        let a = r.u32()? as usize;
        let t = r.u32()? as usize;
        let &src = node_ids.get(s).ok_or_else(|| r.bad_reference())?;
        let &attr = attr_ids.get(a).ok_or_else(|| r.bad_reference())?;
        let &dst = node_ids.get(t).ok_or_else(|| r.bad_reference())?;
        b.add_edge(src, attr, dst);
    }
    let mut g = b.build();
    if r.u8()? == 1 {
        let mut pr = Vec::with_capacity(n);
        for _ in 0..n {
            pr.push(r.f64()?);
        }
        g.set_pagerank(pr);
    }
    Ok(g)
}

/// Write a snapshot to `path`.
pub fn save(g: &KnowledgeGraph, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(g))
}

/// Read a snapshot from `path`.
pub fn load(path: &std::path::Path) -> std::io::Result<KnowledgeGraph> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| invalid_data(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let t1 = b.add_type("Software");
        let t2 = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let sql = b.add_node(t1, "SQL Server");
        let ms = b.add_node(t2, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let decoded = decode(&encode(&g)).expect("decode");
        assert_eq!(decoded.num_nodes(), g.num_nodes());
        assert_eq!(decoded.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(decoded.node_text(v), g.node_text(v));
            assert_eq!(
                decoded.type_text(decoded.node_type(v)),
                g.type_text(g.node_type(v))
            );
            assert!((decoded.pagerank(v) - g.pagerank(v)).abs() < 1e-15);
        }
        let ge: Vec<_> = g.edges().collect();
        let de: Vec<_> = decoded.edges().collect();
        assert_eq!(ge.len(), de.len());
        for (a, b) in ge.iter().zip(&de) {
            assert_eq!(g.attr_text(a.attr), decoded.attr_text(b.attr));
            assert_eq!(a.source, b.source);
            assert_eq!(a.target, b.target);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode(b"np").unwrap_err(),
            SnapshotError::Truncated { offset: 0 }
        );
        assert_eq!(decode(b"nope").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(
            decode(b"XXXX\x01\x00\x00\x00").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode(&sample());
        data[4] = 99;
        assert_eq!(decode(&data).unwrap_err(), SnapshotError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data = encode(&sample());
        // Chop the buffer at a few places; decoding must error, not panic,
        // and the reported offset must sit inside the surviving prefix.
        for cut in [5, 10, 20, data.len() / 2, data.len() - 1] {
            match decode(&data[..cut]) {
                Err(SnapshotError::Truncated { offset }) => {
                    assert!(offset <= cut, "offset {offset} beyond cut {cut}")
                }
                Err(_) => {}
                Ok(_) => panic!("cut at {cut} should fail"),
            }
        }
    }

    #[test]
    fn errors_name_the_byte_offset() {
        let e = SnapshotError::Truncated { offset: 17 };
        assert!(e.to_string().contains("byte 17"), "{e}");
        let path = std::path::Path::new("/data/broken.pkbg");
        let io = invalid_data(path, e);
        let msg = io.to_string();
        assert!(
            msg.contains("broken.pkbg") && msg.contains("byte 17"),
            "{msg}"
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("patternkb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pkbg");
        save(&g, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_nodes(), g.num_nodes());
        std::fs::remove_file(&path).ok();
    }
}
