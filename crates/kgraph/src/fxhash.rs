//! A fast, non-cryptographic hasher for interned-id keys.
//!
//! The default `SipHash 1-3` used by `std::collections::HashMap` is robust
//! against HashDoS but slow for the short integer keys that dominate this
//! workload (node ids, pattern ids, `(word, root)` pairs). This module
//! hand-rolls the well-known *Fx* multiply-rotate hash (the algorithm used
//! inside rustc and popularized by the `rustc-hash` crate) so that we get the
//! speed without adding an external dependency.
//!
//! HashDoS is not a concern here: all hashed keys are internally generated
//! ids, never attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-rotate [`Hasher`] for short keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with the Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Convenience constructor mirroring `HashMap::with_capacity`.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor mirroring `HashSet::with_capacity`.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Tuples of ids — the hot key shape in the search crate.
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = map_with_capacity(4);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = set_with_capacity(4);
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn byte_tail_handling() {
        // Strings of length not divisible by 8 exercise the remainder path.
        for len in 0..20 {
            let s: String = "x".repeat(len);
            let _ = hash_of(&s.as_str());
        }
        assert_ne!(hash_of(&"abcdefg"), hash_of(&"abcdefgh"));
    }
}
