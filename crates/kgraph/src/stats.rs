//! Summary statistics of a knowledge graph (reported by the experiment
//! harness next to each dataset, mirroring the dataset table in §5).

use crate::graph::KnowledgeGraph;

/// Aggregate statistics; produce with [`GraphStats::of`].
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|` including dummy text entities.
    pub nodes: usize,
    /// Number of dummy plain-text entities.
    pub text_nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// `|C|` including the reserved text type.
    pub types: usize,
    /// `|A|`.
    pub attrs: usize,
    /// Mean out-degree over all nodes.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Approximate resident bytes of the graph arrays.
    pub heap_bytes: usize,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn of(g: &KnowledgeGraph) -> Self {
        let nodes = g.num_nodes();
        let mut text_nodes = 0;
        let mut max_out = 0;
        let mut max_in = 0;
        for v in g.nodes() {
            if g.is_text_node(v) {
                text_nodes += 1;
            }
            max_out = max_out.max(g.out_degree(v));
            max_in = max_in.max(g.in_degree(v));
        }
        GraphStats {
            nodes,
            text_nodes,
            edges: g.num_edges(),
            types: g.num_types(),
            attrs: g.num_attrs(),
            avg_out_degree: if nodes == 0 {
                0.0
            } else {
                g.num_edges() as f64 / nodes as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
            heap_bytes: g.heap_bytes(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes ({} text), {} edges, {} types, {} attrs, avg out-deg {:.2}, max out/in-deg {}/{}, ~{:.1} MB",
            self.nodes,
            self.text_nodes,
            self.edges,
            self.types,
            self.attrs,
            self.avg_out_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.heap_bytes as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let a = b.add_attr("a");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, a, y);
        b.add_text_edge(x, a, "hello");
        let g = b.build();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.text_nodes, 1);
        assert_eq!(s.edges, 2);
        assert_eq!(s.types, 2); // text type + T
        assert_eq!(s.attrs, 1);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.avg_out_degree - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.heap_bytes > 0);
        let shown = format!("{s}");
        assert!(shown.contains("3 nodes"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_out_degree, 0.0);
    }
}
