//! A simple append-only string interner.
//!
//! Entity types, attribute types and vocabulary words all live behind `u32`
//! ids; the interner provides the bijection between ids and their text. The
//! interner is append-only, so resolved `&str` references stay valid for the
//! lifetime of the interner, and `resolve` is a plain indexed load.

use crate::fxhash::FxHashMap;
use crate::ids::Id;
use std::marker::PhantomData;

/// Bidirectional `str ⇄ I` mapping, generic over the id newtype.
#[derive(Clone, Default)]
pub struct Interner<I: Id> {
    strings: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, u32>,
    _marker: PhantomData<I>,
}

impl<I: Id> Interner<I> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            strings: Vec::new(),
            lookup: FxHashMap::default(),
            _marker: PhantomData,
        }
    }

    /// An empty interner with room for `cap` strings.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            strings: Vec::with_capacity(cap),
            lookup: crate::fxhash::map_with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Intern `s`, returning its id; repeated calls with the same text return
    /// the same id.
    pub fn get_or_intern(&mut self, s: &str) -> I {
        if let Some(&id) = self.lookup.get(s) {
            return I::from_u32(id);
        }
        let id = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, id);
        I::from_u32(id)
    }

    /// Id of `s` if it has already been interned.
    pub fn get(&self, s: &str) -> Option<I> {
        self.lookup.get(s).map(|&id| I::from_u32(id))
    }

    /// The text behind `id`.
    ///
    /// # Panics
    /// If `id` was not produced by this interner.
    pub fn resolve(&self, id: I) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(id, text)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (I::from_usize(i), s.as_ref()))
    }

    /// Total bytes of interned text (used for index-size accounting).
    pub fn text_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }
}

impl<I: Id> std::fmt::Debug for Interner<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Interner({} strings)", self.strings.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TypeId;

    #[test]
    fn intern_and_resolve() {
        let mut i: Interner<TypeId> = Interner::new();
        let a = i.get_or_intern("Software");
        let b = i.get_or_intern("Company");
        let a2 = i.get_or_intern("Software");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Software");
        assert_eq!(i.resolve(b), "Company");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_without_interning() {
        let mut i: Interner<TypeId> = Interner::new();
        assert_eq!(i.get("x"), None);
        let id = i.get_or_intern("x");
        assert_eq!(i.get("x"), Some(id));
    }

    #[test]
    fn iteration_in_id_order() {
        let mut i: Interner<TypeId> = Interner::with_capacity(3);
        i.get_or_intern("a");
        i.get_or_intern("b");
        i.get_or_intern("c");
        let collected: Vec<_> = i.iter().map(|(id, s)| (id.0, s.to_string())).collect();
        assert_eq!(
            collected,
            vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]
        );
    }

    #[test]
    fn empty_string_is_a_valid_entry() {
        let mut i: Interner<TypeId> = Interner::new();
        let e = i.get_or_intern("");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.text_bytes(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ids::WordId;
    use proptest::prelude::*;

    proptest! {
        /// Interning is a bijection: resolve(intern(s)) == s and equal strings
        /// get equal ids.
        #[test]
        fn bijective(strings in proptest::collection::vec("[a-z]{0,8}", 0..50)) {
            let mut interner: Interner<WordId> = Interner::new();
            let ids: Vec<WordId> = strings.iter().map(|s| interner.get_or_intern(s)).collect();
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(interner.resolve(*id), s.as_str());
            }
            for i in 0..strings.len() {
                for j in 0..strings.len() {
                    prop_assert_eq!(ids[i] == ids[j], strings[i] == strings[j]);
                }
            }
        }
    }
}
