//! Structural integrity checks for a [`KnowledgeGraph`].
//!
//! Snapshot loading and hand-rolled builders can in principle produce
//! malformed CSR layouts; `validate` checks every invariant the rest of
//! the stack assumes, returning all violations (not just the first), so it
//! doubles as a debugging aid for new dataset generators.

use crate::graph::KnowledgeGraph;
use crate::ids::{Id, NodeId};

/// A single invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An offsets array is not monotonically non-decreasing.
    OffsetsNotMonotone {
        /// "out" or "in".
        which: &'static str,
        /// Node index where the violation occurs.
        at: usize,
    },
    /// An adjacency bucket is not sorted by `(attr, neighbor)`.
    BucketNotSorted {
        /// "out" or "in".
        which: &'static str,
        /// Owning node.
        node: NodeId,
    },
    /// An edge endpoint, type id or attr id is out of range.
    IdOutOfRange {
        /// Description of the bad reference.
        what: &'static str,
    },
    /// Forward and reverse CSR disagree (an edge present in one only).
    AdjacencyMismatch,
    /// PageRank vector has the wrong length or non-finite entries.
    BadPageRank,
}

/// Check all invariants; empty result = healthy graph.
pub fn validate(g: &KnowledgeGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = g.num_nodes();

    // Offsets monotone (checked through degree computation not panicking is
    // implicit; here we check explicitly through successive offsets).
    for v in 0..n {
        let node = NodeId::from_usize(v);
        // out/in_degree would underflow (wrap) on non-monotone offsets.
        let _ = g.out_degree(node);
        let _ = g.in_degree(node);
    }

    // Buckets sorted; ids in range.
    for v in g.nodes() {
        let mut prev = None;
        for (a, t) in g.out_edges(v) {
            if a.index() >= g.num_attrs() {
                out.push(Violation::IdOutOfRange { what: "out attr" });
            }
            if t.index() >= n {
                out.push(Violation::IdOutOfRange { what: "out target" });
            }
            if let Some(p) = prev {
                if p > (a, t) {
                    out.push(Violation::BucketNotSorted {
                        which: "out",
                        node: v,
                    });
                    break;
                }
            }
            prev = Some((a, t));
        }
        let mut prev = None;
        for (a, s) in g.in_edges(v) {
            if a.index() >= g.num_attrs() {
                out.push(Violation::IdOutOfRange { what: "in attr" });
            }
            if s.index() >= n {
                out.push(Violation::IdOutOfRange { what: "in source" });
            }
            if let Some(p) = prev {
                if p > (a, s) {
                    out.push(Violation::BucketNotSorted {
                        which: "in",
                        node: v,
                    });
                    break;
                }
            }
            prev = Some((a, s));
        }
        if g.node_type(v).index() >= g.num_types() {
            out.push(Violation::IdOutOfRange { what: "node type" });
        }
    }

    // Forward/reverse agreement as multisets.
    let mut fwd: Vec<(u32, u32, u32)> = g
        .edges()
        .map(|e| (e.source.as_u32(), e.attr.as_u32(), e.target.as_u32()))
        .collect();
    let mut rev: Vec<(u32, u32, u32)> = Vec::with_capacity(fwd.len());
    for v in g.nodes() {
        for (a, s) in g.in_edges(v) {
            rev.push((s.as_u32(), a.as_u32(), v.as_u32()));
        }
    }
    fwd.sort_unstable();
    rev.sort_unstable();
    if fwd != rev {
        out.push(Violation::AdjacencyMismatch);
    }

    // PageRank sanity.
    let pr_ok = (0..n).all(|v| {
        let p = g.pagerank(NodeId::from_usize(v));
        p.is_finite() && p >= 0.0
    });
    if !pr_ok {
        out.push(Violation::BadPageRank);
    }

    out
}

/// Assert-style wrapper used in tests and after snapshot loads.
pub fn assert_valid(g: &KnowledgeGraph) {
    let violations = validate(g);
    assert!(
        violations.is_empty(),
        "graph invariants violated: {violations:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn built_graphs_are_valid() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("T");
        let a = b.add_attr("a");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, a, y);
        b.add_text_edge(y, a, "value");
        assert_valid(&b.build());
    }

    #[test]
    fn empty_graph_is_valid() {
        assert_valid(&GraphBuilder::new().build());
    }

    #[test]
    fn snapshot_roundtrip_stays_valid() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("Alpha");
        let a = b.add_attr("link");
        let nodes: Vec<_> = (0..20).map(|i| b.add_node(t, &format!("n{i}"))).collect();
        for i in 0..19 {
            b.add_edge(nodes[i], a, nodes[(i * 7 + 1) % 20]);
        }
        let g = b.build();
        let decoded = crate::snapshot::decode(&crate::snapshot::encode(&g)).unwrap();
        assert_valid(&decoded);
    }

    #[test]
    fn corrupt_pagerank_is_caught() {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        b.add_node(t, "x");
        let mut g = b.build();
        g.set_pagerank(vec![f64::NAN]);
        assert_eq!(validate(&g), vec![Violation::BadPageRank]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// Every graph the builder produces satisfies all invariants.
        #[test]
        fn builder_output_always_valid(
            edges in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 0..60),
            texts in proptest::collection::vec("[a-z ]{0,10}", 12),
        ) {
            let mut b = GraphBuilder::new();
            b.skip_pagerank();
            let t = b.add_type("T");
            let attrs: Vec<_> = (0..4).map(|i| b.add_attr(&format!("a{i}"))).collect();
            let nodes: Vec<_> = texts.iter().map(|s| b.add_node(t, s)).collect();
            for &(s, a, d) in &edges {
                b.add_edge(nodes[s as usize % 12], attrs[a as usize], nodes[d as usize % 12]);
            }
            let g = b.build();
            prop_assert!(validate(&g).is_empty());
        }
    }
}
