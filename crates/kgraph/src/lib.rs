//! # patternkb-graph
//!
//! Knowledge-graph substrate for the `patternkb` stack, reproducing the data
//! model of *"Finding Patterns in a Knowledge Base using Keywords to Compose
//! Table Answers"* (VLDB 2014), Section 2.1.
//!
//! A knowledge base is modeled as a directed graph `G = (V, E, τ, α)`:
//!
//! * every node is an **entity** labeled with a type `τ(v)` and free text;
//! * every edge is an **attribute** labeled with an attribute type `α(e)`;
//! * attribute values that are plain text become *dummy entities* carrying the
//!   reserved [`KnowledgeGraph::TEXT_TYPE`] type (the paper: "if `v.A` is
//!   plain text, we can create a dummy entity with text description exactly
//!   the same as the plain text").
//!
//! The crate provides:
//!
//! * compact, cache-friendly CSR storage with both forward and reverse
//!   adjacency ([`graph::KnowledgeGraph`]);
//! * string interners for types and attributes ([`interner::Interner`]);
//! * an incremental [`builder::GraphBuilder`];
//! * PageRank per Eq. (5) of the paper ([`pagerank`]);
//! * induced subgraphs for scalability experiments ([`subgraph`]);
//! * bounded simple-path traversal primitives ([`traversal`]);
//! * a versioned binary snapshot codec ([`snapshot`]);
//! * batched incremental mutation with id preservation ([`mutate`]).

#![warn(missing_docs)]

pub mod builder;
pub mod dot;
pub mod fxhash;
pub mod graph;
pub mod ids;
pub mod import;
pub mod interner;
pub mod mutate;
pub mod pagerank;
pub mod resolve;
pub mod snapshot;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod validate;

pub use builder::GraphBuilder;
pub use fxhash::{FxHashMap, FxHashSet};
pub use graph::KnowledgeGraph;
pub use ids::{AttrId, NodeId, TypeId, WordId};
pub use resolve::{NameResolver, ResolveError};
pub use stats::GraphStats;
