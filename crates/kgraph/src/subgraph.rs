//! Induced subgraphs, for the scalability experiment (paper §5.1 Exp-III /
//! Figure 10: "randomly select a subset of entities … and construct the
//! induced subgraph of the original knowledge graph").

use crate::builder::GraphBuilder;
use crate::graph::KnowledgeGraph;
use crate::ids::{Id, NodeId};

/// Result of [`induced`]: the subgraph plus the node-id mapping.
pub struct InducedSubgraph {
    /// The induced knowledge graph (types/attributes re-interned to keep the
    /// reserved text type at id 0).
    pub graph: KnowledgeGraph,
    /// `old_to_new[old.index()]` is the new id, if the node was kept.
    pub old_to_new: Vec<Option<NodeId>>,
    /// `new_to_old[new.index()]` is the original id.
    pub new_to_old: Vec<NodeId>,
}

/// Build the subgraph induced by the nodes with `keep[v.index()] == true`.
/// Edges survive iff both endpoints are kept. PageRank is recomputed on the
/// subgraph (the experiment treats each induced graph as a standalone KB).
pub fn induced(g: &KnowledgeGraph, keep: &[bool]) -> InducedSubgraph {
    assert_eq!(keep.len(), g.num_nodes(), "mask length mismatch");
    let kept = keep.iter().filter(|&&k| k).count();
    let mut b = GraphBuilder::with_capacity(kept, g.num_edges());

    // Re-intern types/attrs in original id order so ids are stable across
    // different masks of the same graph (handy for tests).
    for (_, text) in g.types.iter().skip(1) {
        b.add_type(text);
    }
    for (_, text) in g.attrs.iter() {
        b.add_attr(text);
    }

    let mut old_to_new = vec![None; g.num_nodes()];
    let mut new_to_old = Vec::with_capacity(kept);
    for v in g.nodes() {
        if keep[v.index()] {
            let t = g.node_type(v);
            let new = if t == KnowledgeGraph::TEXT_TYPE {
                b.add_node(KnowledgeGraph::TEXT_TYPE, g.node_text(v))
            } else {
                let nt = b.add_type(g.type_text(t));
                b.add_node(nt, g.node_text(v))
            };
            old_to_new[v.index()] = Some(new);
            new_to_old.push(v);
        }
    }
    for e in g.edges() {
        if let (Some(s), Some(t)) = (old_to_new[e.source.index()], old_to_new[e.target.index()]) {
            let attr = b.add_attr(g.attr_text(e.attr));
            b.add_edge(s, attr, t);
        }
    }
    InducedSubgraph {
        graph: b.build(),
        old_to_new,
        new_to_old,
    }
}

/// Convenience: keep a uniformly random fraction `frac ∈ (0, 1]` of the
/// nodes, using the caller-supplied `pick(v) -> bool` decision (callers
/// typically close over an RNG; keeping randomness outside this crate avoids
/// a `rand` dependency here).
pub fn induced_by<F: FnMut(NodeId) -> bool>(g: &KnowledgeGraph, pick: F) -> InducedSubgraph {
    let keep: Vec<bool> = g.nodes().map(pick).collect();
    induced(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t1 = b.add_type("Alpha");
        let t2 = b.add_type("Beta");
        let a = b.add_attr("rel");
        let n0 = b.add_node(t1, "zero");
        let n1 = b.add_node(t2, "one");
        let n2 = b.add_node(t1, "two");
        b.add_edge(n0, a, n1);
        b.add_edge(n1, a, n2);
        b.add_text_edge(n2, a, "some text");
        b.build()
    }

    #[test]
    fn full_mask_is_isomorphic() {
        let g = sample();
        let sub = induced(&g, &vec![true; g.num_nodes()]);
        assert_eq!(sub.graph.num_nodes(), g.num_nodes());
        assert_eq!(sub.graph.num_edges(), g.num_edges());
        for v in g.nodes() {
            let nv = sub.old_to_new[v.index()].unwrap();
            assert_eq!(g.node_text(v), sub.graph.node_text(nv));
            assert_eq!(
                g.type_text(g.node_type(v)),
                sub.graph.type_text(sub.graph.node_type(nv))
            );
        }
    }

    #[test]
    fn edges_require_both_endpoints() {
        let g = sample();
        // Drop node 1 (the middle of the chain).
        let mut keep = vec![true; g.num_nodes()];
        keep[1] = false;
        let sub = induced(&g, &keep);
        assert_eq!(sub.graph.num_nodes(), g.num_nodes() - 1);
        // Edges 0->1 and 1->2 vanish, 2->text survives.
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn text_nodes_keep_reserved_type() {
        let g = sample();
        let sub = induced(&g, &vec![true; g.num_nodes()]);
        let text_nodes: Vec<_> = sub
            .graph
            .nodes()
            .filter(|&v| sub.graph.is_text_node(v))
            .collect();
        assert_eq!(text_nodes.len(), 1);
        assert_eq!(sub.graph.node_text(text_nodes[0]), "some text");
    }

    #[test]
    fn mapping_is_consistent() {
        let g = sample();
        let mut keep = vec![true; g.num_nodes()];
        keep[0] = false;
        let sub = induced(&g, &keep);
        for (new_idx, &old) in sub.new_to_old.iter().enumerate() {
            assert_eq!(sub.old_to_new[old.index()], Some(NodeId(new_idx as u32)));
        }
        assert_eq!(sub.old_to_new[0], None);
    }

    #[test]
    fn empty_mask() {
        let g = sample();
        let sub = induced(&g, &vec![false; g.num_nodes()]);
        assert_eq!(sub.graph.num_nodes(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }
}
