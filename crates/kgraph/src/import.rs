//! Plain-text (TSV) knowledge-base import.
//!
//! Real deployments rarely start from a programmatic builder; they load
//! dumps. The format is two tab-separated files:
//!
//! **nodes.tsv** — one entity per line:
//! ```text
//! id <TAB> type-text <TAB> entity-text
//! ```
//!
//! **edges.tsv** — one attribute per line:
//! ```text
//! src-id <TAB> attr-text <TAB> node <TAB> dst-id        (entity value)
//! src-id <TAB> attr-text <TAB> text <TAB> literal text  (plain-text value)
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Ids are arbitrary
//! non-empty strings, unique within the node file. Plain-text values
//! become dummy text entities exactly like
//! [`crate::GraphBuilder::add_text_edge`].

use crate::builder::GraphBuilder;
use crate::fxhash::FxHashMap;
use crate::graph::KnowledgeGraph;
use crate::ids::NodeId;

/// Import failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// A line did not have the expected number of tab-separated fields.
    BadArity {
        /// Which file.
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// Two node lines used the same id.
    DuplicateId {
        /// 1-based line number of the duplicate.
        line: usize,
        /// The offending id.
        id: String,
    },
    /// An edge referenced an id with no node line.
    UnknownId {
        /// 1-based line number.
        line: usize,
        /// The unresolved id.
        id: String,
    },
    /// The edge kind column was neither `node` nor `text`.
    BadKind {
        /// 1-based line number.
        line: usize,
        /// The value found.
        kind: String,
    },
    /// A node line had an empty type (reserved for text dummies).
    EmptyType {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::BadArity { file, line, found } => {
                write!(
                    f,
                    "{file}:{line}: expected tab-separated fields, found {found}"
                )
            }
            ImportError::DuplicateId { line, id } => {
                write!(f, "nodes:{line}: duplicate id {id:?}")
            }
            ImportError::UnknownId { line, id } => {
                write!(f, "edges:{line}: unknown node id {id:?}")
            }
            ImportError::BadKind { line, kind } => {
                write!(
                    f,
                    "edges:{line}: kind must be 'node' or 'text', got {kind:?}"
                )
            }
            ImportError::EmptyType { line } => {
                write!(f, "nodes:{line}: empty type text is reserved")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Parse the two TSV documents into a knowledge graph (PageRank computed).
pub fn from_tsv(nodes_tsv: &str, edges_tsv: &str) -> Result<KnowledgeGraph, ImportError> {
    let mut b = GraphBuilder::new();
    let mut ids: FxHashMap<String, NodeId> = FxHashMap::default();

    for (lineno, raw) in nodes_tsv.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('\t').collect();
        if fields.len() != 3 {
            return Err(ImportError::BadArity {
                file: "nodes",
                line,
                found: fields.len(),
            });
        }
        let (id, type_text, text) = (fields[0], fields[1], fields[2]);
        if type_text.is_empty() {
            return Err(ImportError::EmptyType { line });
        }
        if ids.contains_key(id) {
            return Err(ImportError::DuplicateId {
                line,
                id: id.to_string(),
            });
        }
        let ty = b.add_type(type_text);
        let node = b.add_node(ty, text);
        ids.insert(id.to_string(), node);
    }

    for (lineno, raw) in edges_tsv.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('\t').collect();
        if fields.len() != 4 {
            return Err(ImportError::BadArity {
                file: "edges",
                line,
                found: fields.len(),
            });
        }
        let (src_id, attr_text, kind, value) = (fields[0], fields[1], fields[2], fields[3]);
        let &src = ids.get(src_id).ok_or_else(|| ImportError::UnknownId {
            line,
            id: src_id.to_string(),
        })?;
        let attr = b.add_attr(attr_text);
        match kind {
            "node" => {
                let &dst = ids.get(value).ok_or_else(|| ImportError::UnknownId {
                    line,
                    id: value.to_string(),
                })?;
                b.add_edge(src, attr, dst);
            }
            "text" => {
                b.add_text_edge(src, attr, value);
            }
            other => {
                return Err(ImportError::BadKind {
                    line,
                    kind: other.to_string(),
                })
            }
        }
    }
    Ok(b.build())
}

/// Load from two files on disk.
pub fn load_tsv(
    nodes_path: &std::path::Path,
    edges_path: &std::path::Path,
) -> std::io::Result<KnowledgeGraph> {
    let nodes = std::fs::read_to_string(nodes_path)?;
    let edges = std::fs::read_to_string(edges_path)?;
    from_tsv(&nodes, &edges).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Export a graph back to the TSV pair (node ids are `n{index}`; text
/// dummies are re-inlined as `text` edges, so `export ∘ import` is the
/// identity up to node renaming).
pub fn to_tsv(g: &KnowledgeGraph) -> (String, String) {
    use std::fmt::Write as _;
    let mut nodes = String::new();
    let mut edges = String::new();
    for v in g.nodes() {
        if !g.is_text_node(v) {
            let _ = writeln!(
                nodes,
                "n{}\t{}\t{}",
                v.0,
                g.type_text(g.node_type(v)),
                g.node_text(v)
            );
        }
    }
    for e in g.edges() {
        if g.is_text_node(e.target) {
            let _ = writeln!(
                edges,
                "n{}\t{}\ttext\t{}",
                e.source.0,
                g.attr_text(e.attr),
                g.node_text(e.target)
            );
        } else {
            let _ = writeln!(
                edges,
                "n{}\t{}\tnode\tn{}",
                e.source.0,
                g.attr_text(e.attr),
                e.target.0
            );
        }
    }
    (nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: &str = "\
# the Figure-1 core
sql\tSoftware\tSQL Server
ms\tCompany\tMicrosoft
";
    const EDGES: &str = "\
sql\tDeveloper\tnode\tms
ms\tRevenue\ttext\tUS$ 77 billion
";

    #[test]
    fn happy_path() {
        let g = from_tsv(NODES, EDGES).unwrap();
        assert_eq!(g.num_nodes(), 3); // 2 entities + 1 text value
        assert_eq!(g.num_edges(), 2);
        let sql = g.nodes().find(|&v| g.node_text(v) == "SQL Server").unwrap();
        assert_eq!(g.type_text(g.node_type(sql)), "Software");
        crate::validate::assert_valid(&g);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = from_tsv("# only comments\n\n", "").unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn duplicate_id_rejected() {
        let nodes = "a\tT\tx\na\tT\ty\n";
        match from_tsv(nodes, "") {
            Err(ImportError::DuplicateId { line, id }) => {
                assert_eq!(line, 2);
                assert_eq!(id, "a");
            }
            other => panic!("expected DuplicateId, got {other:?}"),
        }
    }

    #[test]
    fn unknown_ref_rejected() {
        let err = from_tsv("a\tT\tx\n", "a\trel\tnode\tghost\n").unwrap_err();
        assert!(matches!(err, ImportError::UnknownId { .. }));
        let shown = format!("{err}");
        assert!(shown.contains("ghost"));
    }

    #[test]
    fn bad_arity_rejected() {
        assert!(matches!(
            from_tsv("a\tT\n", "").unwrap_err(),
            ImportError::BadArity {
                file: "nodes",
                line: 1,
                found: 2
            }
        ));
        assert!(matches!(
            from_tsv("a\tT\tx\n", "a\trel\tnode\n").unwrap_err(),
            ImportError::BadArity { file: "edges", .. }
        ));
    }

    #[test]
    fn bad_kind_rejected() {
        let err = from_tsv("a\tT\tx\nb\tT\ty\n", "a\trel\tedge\tb\n").unwrap_err();
        assert!(matches!(err, ImportError::BadKind { .. }));
    }

    #[test]
    fn empty_type_rejected() {
        assert!(matches!(
            from_tsv("a\t\tx\n", "").unwrap_err(),
            ImportError::EmptyType { line: 1 }
        ));
    }

    #[test]
    fn export_import_roundtrip() {
        let g = from_tsv(NODES, EDGES).unwrap();
        let (n2, e2) = to_tsv(&g);
        let g2 = from_tsv(&n2, &e2).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        let mut texts1: Vec<&str> = g.nodes().map(|v| g.node_text(v)).collect();
        let mut texts2: Vec<&str> = g2.nodes().map(|v| g2.node_text(v)).collect();
        texts1.sort_unstable();
        texts2.sort_unstable();
        assert_eq!(texts1, texts2);
    }

    #[test]
    fn windows_line_endings() {
        let g = from_tsv("a\tT\tx\r\n", "a\trel\ttext\tv\r\n").unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.node_text(crate::NodeId(1)), "v");
    }
}
