//! Name → [`NodeId`] resolution for wire-level mutation batches.
//!
//! The serving layer's ingest endpoint addresses nodes by their *text*
//! ("IBM", "US$ 57 billion") because clients do not know internal ids.
//! Node texts are not unique in general — two entities may share a name,
//! and an entity can share text with a plain-text value node — so
//! resolution is explicit about ambiguity instead of silently picking one:
//! an ambiguous name is an error the client fixes by sending the id.
//!
//! [`NameResolver`] builds the text → id table once per batch (one linear
//! pass over the graph) so resolving each reference is a hash lookup, not
//! a scan.

use crate::fxhash::FxHashMap;
use crate::graph::KnowledgeGraph;
use crate::ids::NodeId;

/// Why a name failed to resolve to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// No node carries this text.
    NotFound(String),
    /// More than one node carries this text; address it by id instead.
    Ambiguous {
        /// The ambiguous text.
        name: String,
        /// How many nodes share it.
        count: usize,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::NotFound(name) => write!(f, "no node named {name:?}"),
            ResolveError::Ambiguous { name, count } => write!(
                f,
                "{count} nodes named {name:?}; address the node by id instead"
            ),
        }
    }
}

impl std::error::Error for ResolveError {}

enum Slot {
    Unique(NodeId),
    Ambiguous(usize),
}

/// A text → [`NodeId`] table over one graph snapshot. See the module docs.
pub struct NameResolver<'g> {
    map: FxHashMap<&'g str, Slot>,
}

impl<'g> NameResolver<'g> {
    /// Index every node (entities and plain-text value nodes alike) of
    /// `g` by its text. One linear pass.
    pub fn new(g: &'g KnowledgeGraph) -> Self {
        let mut map: FxHashMap<&'g str, Slot> = crate::fxhash::map_with_capacity(g.num_nodes());
        for v in g.nodes() {
            map.entry(g.node_text(v))
                .and_modify(|slot| {
                    *slot = Slot::Ambiguous(match *slot {
                        Slot::Unique(_) => 2,
                        Slot::Ambiguous(n) => n + 1,
                    })
                })
                .or_insert(Slot::Unique(v));
        }
        NameResolver { map }
    }

    /// The unique node named `name`, or a typed error ([`ResolveError`])
    /// when the name is missing or shared by several nodes.
    pub fn resolve(&self, name: &str) -> Result<NodeId, ResolveError> {
        match self.map.get(name) {
            Some(Slot::Unique(v)) => Ok(*v),
            Some(Slot::Ambiguous(count)) => Err(ResolveError::Ambiguous {
                name: name.to_string(),
                count: *count,
            }),
            None => Err(ResolveError::NotFound(name.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn unique_names_resolve() {
        let mut b = GraphBuilder::new();
        let comp = b.add_type("Company");
        let rev = b.add_attr("Revenue");
        let ms = b.add_node(comp, "Microsoft");
        b.add_text_edge(ms, rev, "US$ 77 billion");
        let g = b.build();
        let r = NameResolver::new(&g);
        assert_eq!(r.resolve("Microsoft"), Ok(ms));
        // Text value nodes are addressable too (remove_edge needs them).
        let text_node = r.resolve("US$ 77 billion").unwrap();
        assert!(g.is_text_node(text_node));
    }

    #[test]
    fn missing_and_ambiguous_names_are_typed() {
        let mut b = GraphBuilder::new();
        let comp = b.add_type("Company");
        b.add_node(comp, "Acme");
        b.add_node(comp, "Acme");
        b.add_node(comp, "Acme");
        let g = b.build();
        let r = NameResolver::new(&g);
        assert_eq!(
            r.resolve("Initech"),
            Err(ResolveError::NotFound("Initech".into()))
        );
        match r.resolve("Acme") {
            Err(ResolveError::Ambiguous { name, count }) => {
                assert_eq!(name, "Acme");
                assert_eq!(count, 3);
            }
            other => panic!("expected Ambiguous, got {other:?}"),
        }
        assert!(r.resolve("Acme").unwrap_err().to_string().contains("by id"));
    }
}
