//! The knowledge graph `G = (V, E, τ, α)` in CSR form.
//!
//! Storage layout (all arrays indexed by raw ids):
//!
//! * `node_types[v]` — entity type `τ(v)`;
//! * `node_texts[v]` — free-text description of the entity;
//! * forward CSR `out_offsets` / `out_attrs` / `out_targets` — out-edges of
//!   `v` live in `out_offsets[v] .. out_offsets[v+1]`, sorted by
//!   `(attr, target)`;
//! * reverse CSR `in_offsets` / `in_attrs` / `in_sources` — mirror image used
//!   by the baseline's backward search and by PageRank;
//! * `pagerank[v]` — filled in by [`crate::pagerank::compute`].
//!
//! Plain-text attribute values are dummy nodes with the reserved
//! [`KnowledgeGraph::TEXT_TYPE`] whose type text is empty, so a keyword can
//! never match "the type of a text node" (the paper omits types for such
//! nodes in Figure 1(d)).

use crate::ids::{AttrId, Id, NodeId, TypeId};
use crate::interner::Interner;

/// A single labeled directed edge `(source) -attr-> (target)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Source entity (the entity owning the attribute).
    pub source: NodeId,
    /// Attribute type `α(e)`.
    pub attr: AttrId,
    /// Target entity (the attribute value).
    pub target: NodeId,
}

/// Forward + reverse CSR adjacency assembled from a sorted edge list.
/// Shared by [`crate::GraphBuilder::build`] and
/// [`crate::mutate::GraphDelta::apply`].
pub(crate) struct Csr {
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_attrs: Vec<AttrId>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_attrs: Vec<AttrId>,
    pub(crate) in_sources: Vec<NodeId>,
}

impl Csr {
    /// Build both CSR directions for `n` nodes from edges sorted by
    /// `(source, attr, target)` with no duplicates.
    pub(crate) fn from_sorted_edges(n: usize, edges: &[(NodeId, AttrId, NodeId)]) -> Csr {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges sorted+deduped"
        );
        let m = edges.len();

        // Forward CSR.
        let mut out_offsets = vec![0u32; n + 1];
        for &(s, _, _) in edges {
            out_offsets[s.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_attrs = Vec::with_capacity(m);
        let mut out_targets = Vec::with_capacity(m);
        for &(_, a, t) in edges {
            out_attrs.push(a);
            out_targets.push(t);
        }

        // Reverse CSR: counting sort by target.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, _, t) in edges {
            in_offsets[t.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_attrs = vec![AttrId(0); m];
        let mut in_sources = vec![NodeId(0); m];
        for &(s, a, t) in edges {
            let pos = cursor[t.index()] as usize;
            in_attrs[pos] = a;
            in_sources[pos] = s;
            cursor[t.index()] += 1;
        }
        // Sort each in-bucket by (attr, source) for determinism.
        for v in 0..n {
            let lo = in_offsets[v] as usize;
            let hi = in_offsets[v + 1] as usize;
            let mut pairs: Vec<(AttrId, NodeId)> = in_attrs[lo..hi]
                .iter()
                .copied()
                .zip(in_sources[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (a, s)) in pairs.into_iter().enumerate() {
                in_attrs[lo + i] = a;
                in_sources[lo + i] = s;
            }
        }

        Csr {
            out_offsets,
            out_attrs,
            out_targets,
            in_offsets,
            in_attrs,
            in_sources,
        }
    }
}

/// The immutable knowledge graph. Construct with [`crate::GraphBuilder`].
#[derive(Clone)]
pub struct KnowledgeGraph {
    pub(crate) node_types: Vec<TypeId>,
    pub(crate) node_texts: Vec<Box<str>>,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_attrs: Vec<AttrId>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_attrs: Vec<AttrId>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) types: Interner<TypeId>,
    pub(crate) attrs: Interner<AttrId>,
    pub(crate) pagerank: Vec<f64>,
}

impl KnowledgeGraph {
    /// The reserved type id for dummy plain-text entities. Always interned
    /// first by the builder, with empty type text.
    pub const TEXT_TYPE: TypeId = TypeId(0);

    /// Number of entities `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of attribute edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of distinct entity types `|C|` (including the text type).
    #[inline]
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of distinct attribute types `|A|`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Entity type `τ(v)`.
    #[inline]
    pub fn node_type(&self, v: NodeId) -> TypeId {
        self.node_types[v.index()]
    }

    /// Free-text description of entity `v`.
    #[inline]
    pub fn node_text(&self, v: NodeId) -> &str {
        &self.node_texts[v.index()]
    }

    /// Text of an entity type (`C.text`); empty for [`Self::TEXT_TYPE`].
    #[inline]
    pub fn type_text(&self, t: TypeId) -> &str {
        self.types.resolve(t)
    }

    /// Text of an attribute type (`A.text`).
    #[inline]
    pub fn attr_text(&self, a: AttrId) -> &str {
        self.attrs.resolve(a)
    }

    /// Whether `v` is a dummy plain-text entity.
    #[inline]
    pub fn is_text_node(&self, v: NodeId) -> bool {
        self.node_types[v.index()] == Self::TEXT_TYPE
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Out-edges of `v`, sorted by `(attr, target)`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (AttrId, NodeId)> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        self.out_attrs[lo..hi]
            .iter()
            .zip(&self.out_targets[lo..hi])
            .map(|(&a, &t)| (a, t))
    }

    /// In-edges of `v` as `(attr, source)`, sorted by `(attr, source)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (AttrId, NodeId)> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        self.in_attrs[lo..hi]
            .iter()
            .zip(&self.in_sources[lo..hi])
            .map(|(&a, &s)| (a, s))
    }

    /// Whether the edge `(source) -attr-> (target)` exists. O(log deg) —
    /// out-edges are stored sorted by `(attr, target)`.
    pub fn has_edge(&self, source: NodeId, attr: AttrId, target: NodeId) -> bool {
        if source.index() >= self.num_nodes() {
            return false;
        }
        let lo = self.out_offsets[source.index()] as usize;
        let hi = self.out_offsets[source.index() + 1] as usize;
        let attrs = &self.out_attrs[lo..hi];
        let targets = &self.out_targets[lo..hi];
        // Binary search on the (attr, target) pairs.
        let mut left = 0usize;
        let mut right = attrs.len();
        while left < right {
            let mid = (left + right) / 2;
            match (attrs[mid], targets[mid]).cmp(&(attr, target)) {
                std::cmp::Ordering::Less => left = mid + 1,
                std::cmp::Ordering::Greater => right = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// All edges in `(source, attr, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |v| {
            self.out_edges(v).map(move |(attr, target)| Edge {
                source: v,
                attr,
                target,
            })
        })
    }

    /// PageRank score `PR(v)` per Eq. (5). Zero until
    /// [`crate::pagerank::compute`] has been run (the builder runs it by
    /// default).
    #[inline]
    pub fn pagerank(&self, v: NodeId) -> f64 {
        self.pagerank[v.index()]
    }

    /// Overwrite the PageRank vector (used by [`crate::pagerank`]).
    ///
    /// # Panics
    /// If `pr.len() != self.num_nodes()`.
    pub fn set_pagerank(&mut self, pr: Vec<f64>) {
        assert_eq!(pr.len(), self.num_nodes(), "pagerank length mismatch");
        self.pagerank = pr;
    }

    /// The type interner (shared with snapshot/codegen helpers).
    pub fn types(&self) -> &Interner<TypeId> {
        &self.types
    }

    /// The attribute interner.
    pub fn attrs(&self) -> &Interner<AttrId> {
        &self.attrs
    }

    /// Look up a type by its exact text.
    pub fn type_by_text(&self, text: &str) -> Option<TypeId> {
        self.types.get(text)
    }

    /// Look up an attribute by its exact text.
    pub fn attr_by_text(&self, text: &str) -> Option<AttrId> {
        self.attrs.get(text)
    }

    /// Nodes of a given type, in id order. O(|V|); use sparingly (the search
    /// crate maintains its own type partitions).
    pub fn nodes_of_type(&self, t: TypeId) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.node_type(v) == t).collect()
    }

    /// Approximate resident bytes of the graph arrays (for reporting).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_types.len() * size_of::<TypeId>()
            + self.node_texts.iter().map(|t| t.len()).sum::<usize>()
            + self.node_texts.len() * size_of::<Box<str>>()
            + self.out_offsets.len() * 4
            + self.out_attrs.len() * 4
            + self.out_targets.len() * 4
            + self.in_offsets.len() * 4
            + self.in_attrs.len() * 4
            + self.in_sources.len() * 4
            + self.types.text_bytes()
            + self.attrs.text_bytes()
            + self.pagerank.len() * 8
    }
}

impl std::fmt::Debug for KnowledgeGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KnowledgeGraph {{ nodes: {}, edges: {}, types: {}, attrs: {} }}",
            self.num_nodes(),
            self.num_edges(),
            self.num_types(),
            self.num_attrs()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::NodeId;

    fn tiny() -> crate::KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let sql = b.add_node(soft, "SQL Server");
        let ms = b.add_node(comp, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 3); // 2 entities + 1 text node
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.node_text(NodeId(0)), "SQL Server");
        assert_eq!(g.type_text(g.node_type(NodeId(0))), "Software");
        assert!(g.is_text_node(NodeId(2)));
        assert_eq!(g.node_text(NodeId(2)), "US$ 77 billion");
        assert_eq!(g.type_text(crate::KnowledgeGraph::TEXT_TYPE), "");
    }

    #[test]
    fn forward_and_reverse_adjacency_agree() {
        let g = tiny();
        let fwd: Vec<_> = g.edges().collect();
        let mut rev = Vec::new();
        for v in g.nodes() {
            for (attr, src) in g.in_edges(v) {
                rev.push(crate::graph::Edge {
                    source: src,
                    attr,
                    target: v,
                });
            }
        }
        rev.sort_by_key(|e| (e.source, e.attr, e.target));
        let mut fwd_sorted = fwd.clone();
        fwd_sorted.sort_by_key(|e| (e.source, e.attr, e.target));
        assert_eq!(fwd_sorted, rev);
    }

    #[test]
    fn degrees() {
        let g = tiny();
        assert_eq!(g.out_degree(NodeId(0)), 1);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.out_degree(NodeId(2)), 0);
        assert_eq!(g.in_degree(NodeId(2)), 1);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn nodes_of_type() {
        let g = tiny();
        let soft = g.type_by_text("Software").unwrap();
        assert_eq!(g.nodes_of_type(soft), vec![NodeId(0)]);
    }

    #[test]
    fn pagerank_present_after_build() {
        let g = tiny();
        let total: f64 = g.nodes().map(|v| g.pagerank(v)).sum();
        assert!(total > 0.0, "builder should compute pagerank");
    }
}
