//! PageRank exactly as specified in Eq. (5) of the paper.
//!
//! > The PageRank score `PR(v)` of a node `v` is computed using the iterative
//! > method: the initial value of `PR(v)` is set to `1/|V|` for all `v ∈ V`;
//! > and in each iteration, `PR(v) ← (1−a)/|V| + a Σ_{(u,v)∈E} PR(u)/OutDeg(u)`
//! > where `a = 0.85` is the damping factor. The computation ends when
//! > `PR(v)` changes less than `1e-8` during an iteration for all `v ∈ V`.
//!
//! Note the paper's formulation does **not** redistribute the rank of
//! dangling nodes (out-degree 0); we reproduce that faithfully, so ranks need
//! not sum to exactly 1 on graphs with sinks. An optional
//! [`PageRankConfig::redistribute_dangling`] switch provides the textbook
//! variant for users who want a proper probability distribution.
//!
//! The per-iteration work is parallelized over node ranges with scoped
//! scoped threads; each iteration reads the previous vector and writes a
//! fresh one, so threads never race.

use crate::graph::KnowledgeGraph;
use crate::ids::{Id, NodeId};

/// Tunables for [`compute`]. Defaults match the paper.
#[derive(Clone, Debug)]
pub struct PageRankConfig {
    /// Damping factor `a`; paper uses 0.85.
    pub damping: f64,
    /// Convergence threshold on the per-node change; paper uses 1e-8.
    pub tolerance: f64,
    /// Hard cap on iterations (safety net; the paper iterates to
    /// convergence).
    pub max_iterations: usize,
    /// Redistribute dangling-node mass uniformly (off = faithful to Eq. (5)).
    pub redistribute_dangling: bool,
    /// Number of worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-8,
            max_iterations: 200,
            redistribute_dangling: false,
            threads: 0,
        }
    }
}

/// Compute the PageRank vector of `g`. Returns one `f64` per node; does not
/// mutate the graph (use [`KnowledgeGraph::set_pagerank`] to install it).
pub fn compute(g: &KnowledgeGraph, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let a = cfg.damping;
    let base = (1.0 - a) / n as f64;
    let mut prev = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    // Small graphs are faster single-threaded.
    let threads = if n < 50_000 { 1 } else { threads.max(1) };

    // Precompute 1/out_degree for non-dangling nodes.
    let inv_deg: Vec<f64> = (0..n)
        .map(|i| {
            let d = g.out_degree(NodeId::from_usize(i));
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    for _ in 0..cfg.max_iterations {
        let dangling_mass = if cfg.redistribute_dangling {
            let mass: f64 = (0..n).filter(|&i| inv_deg[i] == 0.0).map(|i| prev[i]).sum();
            a * mass / n as f64
        } else {
            0.0
        };

        let chunk = n.div_ceil(threads);
        let max_delta = if threads == 1 {
            sweep(g, &prev, &inv_deg, &mut next, 0, n, a, base + dangling_mass)
        } else {
            let mut deltas = vec![0.0f64; threads];
            let next_chunks: Vec<&mut [f64]> = next.chunks_mut(chunk).collect();
            std::thread::scope(|scope| {
                for ((t, out), delta) in next_chunks.into_iter().enumerate().zip(deltas.iter_mut())
                {
                    let prev = &prev;
                    let inv_deg = &inv_deg;
                    scope.spawn(move || {
                        let lo = t * chunk;
                        let hi = (lo + out.len()).min(n);
                        *delta = sweep_into(g, prev, inv_deg, out, lo, hi, a, base + dangling_mass);
                    });
                }
            });
            deltas.into_iter().fold(0.0, f64::max)
        };

        std::mem::swap(&mut prev, &mut next);
        if max_delta < cfg.tolerance {
            break;
        }
    }
    prev
}

/// One Jacobi sweep over `[lo, hi)`, writing into `next[lo..hi]` (a full
/// vector); returns the max per-node change.
fn sweep(
    g: &KnowledgeGraph,
    prev: &[f64],
    inv_deg: &[f64],
    next: &mut [f64],
    lo: usize,
    hi: usize,
    a: f64,
    base: f64,
) -> f64 {
    let mut max_delta = 0.0f64;
    for v in lo..hi {
        let node = NodeId::from_usize(v);
        let mut sum = 0.0;
        for (_, u) in g.in_edges(node) {
            sum += prev[u.index()] * inv_deg[u.index()];
        }
        let new = base + a * sum;
        max_delta = max_delta.max((new - prev[v]).abs());
        next[v] = new;
    }
    max_delta
}

/// Like [`sweep`] but writing into a slice that starts at `lo`.
fn sweep_into(
    g: &KnowledgeGraph,
    prev: &[f64],
    inv_deg: &[f64],
    out: &mut [f64],
    lo: usize,
    hi: usize,
    a: f64,
    base: f64,
) -> f64 {
    let mut max_delta = 0.0f64;
    for v in lo..hi {
        let node = NodeId::from_usize(v);
        let mut sum = 0.0;
        for (_, u) in g.in_edges(node) {
            sum += prev[u.index()] * inv_deg[u.index()];
        }
        let new = base + a * sum;
        max_delta = max_delta.max((new - prev[v]).abs());
        out[v - lo] = new;
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn cycle(n: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let a = b.add_attr("next");
        let nodes: Vec<_> = (0..n).map(|i| b.add_node(t, &format!("n{i}"))).collect();
        for i in 0..n {
            b.add_edge(nodes[i], a, nodes[(i + 1) % n]);
        }
        b.build()
    }

    #[test]
    fn uniform_on_cycle() {
        let g = cycle(5);
        let pr = compute(&g, &PageRankConfig::default());
        for &p in &pr {
            assert!((p - 0.2).abs() < 1e-6, "cycle pagerank should be uniform");
        }
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hub_attracts_rank() {
        // star: many nodes point at a hub.
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let a = b.add_attr("to");
        let hub = b.add_node(t, "hub");
        for i in 0..10 {
            let v = b.add_node(t, &format!("leaf{i}"));
            b.add_edge(v, a, hub);
        }
        let g = b.build();
        let pr = compute(&g, &PageRankConfig::default());
        for i in 1..=10 {
            assert!(pr[0] > pr[i], "hub must out-rank leaves");
        }
    }

    #[test]
    fn redistribute_dangling_sums_to_one() {
        // chain with a sink.
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let a = b.add_attr("to");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, a, y);
        let g = b.build();
        let cfg = PageRankConfig {
            redistribute_dangling: true,
            ..Default::default()
        };
        let pr = compute(&g, &cfg);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn faithful_mode_loses_dangling_mass() {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let a = b.add_attr("to");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, a, y);
        let g = b.build();
        let pr = compute(&g, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!(total < 1.0, "paper's Eq.(5) loses sink mass; total {total}");
        assert!(pr.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn parallel_matches_serial() {
        let g = cycle(60_000); // above the single-thread cutoff
        let serial = compute(
            &g,
            &PageRankConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = compute(
            &g,
            &PageRankConfig {
                threads: 4,
                ..Default::default()
            },
        );
        for (s, p) in serial.iter().zip(&parallel) {
            assert!((s - p).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(compute(&g, &PageRankConfig::default()).is_empty());
    }
}
