//! Incremental mutation of a frozen [`KnowledgeGraph`].
//!
//! Knowledge bases evolve: new entities are extracted, attributes are
//! corrected, stale links are dropped. The CSR layout of
//! [`KnowledgeGraph`] is deliberately immutable, so mutation is expressed
//! as a [`GraphDelta`] — a batch of additions/removals validated against a
//! base graph — that [`GraphDelta::apply`] freezes into a *new* CSR graph
//! with all existing [`NodeId`]s preserved.
//!
//! The delta also reports its [`GraphDelta::dirty_nodes`]: the endpoints of
//! every added/removed edge plus every new node. Downstream, the path
//! indexes only need to re-enumerate paths from roots within reverse
//! distance `d − 1` of a dirty node (`patternkb-index`'s incremental
//! refresh), which is what makes online maintenance affordable.
//!
//! PageRank is global — a single new edge perturbs every node's score — so
//! the caller chooses a [`PagerankMode`]: `Frozen` keeps the base scores
//! (new nodes get the uniform prior `1/|V|`), matching how production
//! systems refresh centrality offline on a schedule; `Recompute` reruns the
//! paper's iterative method on the new graph.

use crate::fxhash::FxHashMap;
use crate::graph::KnowledgeGraph;
use crate::ids::{AttrId, Id, NodeId, TypeId};
use crate::interner::Interner;
use crate::snapshot::{Reader, SnapshotError};
use bytes::{BufMut, BytesMut};

const DELTA_MAGIC: &[u8; 4] = b"PKBD";
const DELTA_VERSION: u32 = 1;

/// How [`GraphDelta::apply`] fills the new graph's PageRank vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagerankMode {
    /// Keep the base graph's scores; new nodes get the uniform prior
    /// `1/|V_new|`. Cheap, and the usual operational choice between
    /// scheduled offline recomputations.
    Frozen,
    /// Recompute PageRank on the mutated graph (Eq. (5) of the paper).
    Recompute,
}

/// A mutation rejected by [`GraphDelta`] validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge endpoint is neither a base node nor a node added by this
    /// delta.
    UnknownNode(NodeId),
    /// The type id was never interned (by the base graph or this delta).
    UnknownType(TypeId),
    /// The attribute id was never interned (by the base graph or this
    /// delta).
    UnknownAttr(AttrId),
    /// `remove_edge` named an edge the base graph does not contain (or
    /// named the same edge twice).
    EdgeNotFound {
        /// Source of the missing edge.
        source: NodeId,
        /// Attribute of the missing edge.
        attr: AttrId,
        /// Target of the missing edge.
        target: NodeId,
    },
    /// `add_edge` named an edge that already exists (in the base graph and
    /// not removed by this delta, or added twice by this delta). The graph
    /// stores at most one edge per `(source, attr, target)` triple.
    DuplicateEdge {
        /// Source of the duplicate edge.
        source: NodeId,
        /// Attribute of the duplicate edge.
        attr: AttrId,
        /// Target of the duplicate edge.
        target: NodeId,
    },
    /// The delta was applied to a different graph than it was created
    /// against (e.g. another ingest landed in between). Rebuild the delta
    /// from the current graph and retry.
    BaseMismatch {
        /// Node count the delta was created against.
        expected_nodes: usize,
        /// Node count of the graph it was applied to.
        actual_nodes: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownNode(v) => write!(f, "unknown node id {}", v.0),
            DeltaError::UnknownType(t) => write!(f, "unknown type id {}", t.0),
            DeltaError::UnknownAttr(a) => write!(f, "unknown attribute id {}", a.0),
            DeltaError::EdgeNotFound {
                source,
                attr,
                target,
            } => write!(
                f,
                "edge ({} -{}-> {}) not present in the base graph",
                source.0, attr.0, target.0
            ),
            DeltaError::DuplicateEdge {
                source,
                attr,
                target,
            } => write!(
                f,
                "edge ({} -{}-> {}) already exists",
                source.0, attr.0, target.0
            ),
            DeltaError::BaseMismatch {
                expected_nodes,
                actual_nodes,
            } => write!(
                f,
                "delta built against a {expected_nodes}-node graph applied to a \
                 {actual_nodes}-node graph; rebuild the delta and retry"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A validated batch of mutations against one base [`KnowledgeGraph`].
///
/// Build it with the same vocabulary of operations as
/// [`crate::GraphBuilder`] (types, attributes, nodes, entity edges,
/// plain-text edges) plus [`GraphDelta::remove_edge`], then freeze with
/// [`GraphDelta::apply`].
///
/// ```
/// use patternkb_graph::{GraphBuilder, mutate::{GraphDelta, PagerankMode}};
///
/// let mut b = GraphBuilder::new();
/// let company = b.add_type("Company");
/// let founded = b.add_attr("Founded");
/// let ms = b.add_node(company, "Microsoft");
/// let base = b.build();
///
/// let mut delta = GraphDelta::new(&base);
/// let oracle = delta.add_node(company, "Oracle Corp").unwrap();
/// delta.add_text_edge(oracle, founded, "1977").unwrap();
/// let g2 = delta.apply(&base, PagerankMode::Recompute).unwrap();
/// assert_eq!(g2.num_nodes(), base.num_nodes() + 2); // Oracle + text node
/// assert_eq!(g2.node_text(ms), "Microsoft");        // ids preserved
/// ```
#[derive(Clone)]
pub struct GraphDelta {
    base_nodes: usize,
    /// Clone of the base interner, possibly extended by `add_type`.
    types: Interner<TypeId>,
    /// Clone of the base interner, possibly extended by `add_attr`.
    attrs: Interner<AttrId>,
    new_nodes: Vec<(TypeId, Box<str>)>,
    added: Vec<(NodeId, AttrId, NodeId)>,
    removed: Vec<(NodeId, AttrId, NodeId)>,
    /// Delta-local dedup of plain-text value nodes (mirrors the builder).
    text_nodes: FxHashMap<Box<str>, NodeId>,
}

impl std::fmt::Debug for GraphDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GraphDelta {{ base_nodes: {}, new_nodes: {}, added: {}, removed: {} }}",
            self.base_nodes,
            self.new_nodes.len(),
            self.added.len(),
            self.removed.len()
        )
    }
}

impl GraphDelta {
    /// An empty delta against `base`.
    pub fn new(base: &KnowledgeGraph) -> Self {
        GraphDelta {
            base_nodes: base.num_nodes(),
            types: base.types().clone(),
            attrs: base.attrs().clone(),
            new_nodes: Vec::new(),
            added: Vec::new(),
            removed: Vec::new(),
            text_nodes: FxHashMap::default(),
        }
    }

    /// Total nodes after this delta (base plus additions).
    #[inline]
    fn total_nodes(&self) -> usize {
        self.base_nodes + self.new_nodes.len()
    }

    /// Intern a (possibly new) entity type.
    pub fn add_type(&mut self, text: &str) -> TypeId {
        self.types.get_or_intern(text)
    }

    /// Intern a (possibly new) attribute type.
    pub fn add_attr(&mut self, text: &str) -> AttrId {
        self.attrs.get_or_intern(text)
    }

    /// Add a new entity; its id continues the base graph's id space.
    pub fn add_node(&mut self, t: TypeId, text: &str) -> Result<NodeId, DeltaError> {
        if t.index() >= self.types.len() {
            return Err(DeltaError::UnknownType(t));
        }
        let id = NodeId::from_usize(self.total_nodes());
        self.new_nodes.push((t, text.into()));
        Ok(id)
    }

    /// Add an attribute edge between two (base or new) entities.
    ///
    /// Duplicate detection against the base graph happens at
    /// [`GraphDelta::apply`] time; id-range validation happens here.
    pub fn add_edge(
        &mut self,
        source: NodeId,
        attr: AttrId,
        target: NodeId,
    ) -> Result<(), DeltaError> {
        self.check_node(source)?;
        self.check_node(target)?;
        if attr.index() >= self.attrs.len() {
            return Err(DeltaError::UnknownAttr(attr));
        }
        self.added.push((source, attr, target));
        Ok(())
    }

    /// Add an attribute whose value is plain text: creates (or reuses, for
    /// identical text added through this delta) a dummy
    /// [`KnowledgeGraph::TEXT_TYPE`] entity and links to it.
    pub fn add_text_edge(
        &mut self,
        source: NodeId,
        attr: AttrId,
        value: &str,
    ) -> Result<NodeId, DeltaError> {
        let node = if let Some(&v) = self.text_nodes.get(value) {
            v
        } else {
            let v = self.add_node(KnowledgeGraph::TEXT_TYPE, value)?;
            self.text_nodes.insert(value.into(), v);
            v
        };
        self.add_edge(source, attr, node)?;
        Ok(node)
    }

    /// Remove an existing base-graph edge. Existence is checked at
    /// [`GraphDelta::apply`] time.
    pub fn remove_edge(
        &mut self,
        source: NodeId,
        attr: AttrId,
        target: NodeId,
    ) -> Result<(), DeltaError> {
        self.check_node(source)?;
        self.check_node(target)?;
        if attr.index() >= self.attrs.len() {
            return Err(DeltaError::UnknownAttr(attr));
        }
        self.removed.push((source, attr, target));
        Ok(())
    }

    fn check_node(&self, v: NodeId) -> Result<(), DeltaError> {
        if v.index() >= self.total_nodes() {
            return Err(DeltaError::UnknownNode(v));
        }
        Ok(())
    }

    /// Whether the delta contains no mutations.
    pub fn is_empty(&self) -> bool {
        self.new_nodes.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of entities added.
    pub fn num_new_nodes(&self) -> usize {
        self.new_nodes.len()
    }

    /// Number of edges added.
    pub fn num_added_edges(&self) -> usize {
        self.added.len()
    }

    /// Number of edges removed.
    pub fn num_removed_edges(&self) -> usize {
        self.removed.len()
    }

    /// The nodes whose `d`-bounded path neighbourhood may have changed:
    /// endpoints of every added/removed edge plus every new node. Sorted
    /// and deduplicated.
    ///
    /// A root's set of index paths can only change if the root reaches one
    /// of these nodes within `d − 1` hops (every changed path contains a
    /// changed edge or a new node), which is exactly the seed set the
    /// incremental index refresh expands backwards.
    pub fn dirty_nodes(&self) -> Vec<NodeId> {
        let mut dirty: Vec<NodeId> =
            Vec::with_capacity(2 * (self.added.len() + self.removed.len()) + self.new_nodes.len());
        for &(s, _, t) in self.added.iter().chain(self.removed.iter()) {
            dirty.push(s);
            dirty.push(t);
        }
        for i in 0..self.new_nodes.len() {
            dirty.push(NodeId::from_usize(self.base_nodes + i));
        }
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Number of base-graph nodes this delta was created against.
    pub fn num_base_nodes(&self) -> usize {
        self.base_nodes
    }

    /// Serialize the delta to a self-contained byte buffer.
    ///
    /// The encoding is the write-ahead-log payload format: little-endian,
    /// length-prefixed, with the full type/attribute interners inlined so
    /// a decoded delta replays against a reloaded base graph with ids
    /// meaning exactly what they meant at append time.
    ///
    /// ```text
    /// magic "PKBD" | u32 version | u32 base_nodes |
    /// u32 ntypes | ntypes × str | u32 nattrs | nattrs × str |
    /// u32 nnew | nnew × (u32 type, str text) |
    /// u32 nadd | nadd × (u32 src, u32 attr, u32 dst) |
    /// u32 nrem | nrem × (u32 src, u32 attr, u32 dst)
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(DELTA_MAGIC);
        buf.put_u32_le(DELTA_VERSION);
        buf.put_u32_le(self.base_nodes as u32);
        let put_str = |buf: &mut BytesMut, s: &str| {
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        };
        buf.put_u32_le(self.types.len() as u32);
        for (_, s) in self.types.iter() {
            put_str(&mut buf, s);
        }
        buf.put_u32_le(self.attrs.len() as u32);
        for (_, s) in self.attrs.iter() {
            put_str(&mut buf, s);
        }
        buf.put_u32_le(self.new_nodes.len() as u32);
        for (t, text) in &self.new_nodes {
            buf.put_u32_le(t.as_u32());
            put_str(&mut buf, text);
        }
        for list in [&self.added, &self.removed] {
            buf.put_u32_le(list.len() as u32);
            for &(s, a, t) in list {
                buf.put_u32_le(s.as_u32());
                buf.put_u32_le(a.as_u32());
                buf.put_u32_le(t.as_u32());
            }
        }
        buf.to_vec()
    }

    /// Deserialize a delta previously produced by [`GraphDelta::encode`],
    /// re-validating every id against the decoded interners and node
    /// count (a corrupt buffer fails with a positioned [`SnapshotError`],
    /// never a panic at apply time).
    pub fn decode(data: &[u8]) -> Result<GraphDelta, SnapshotError> {
        let mut r = Reader::new(data);
        let mut magic = [0u8; 4];
        r.take(&mut magic)?;
        if &magic != DELTA_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != DELTA_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let base_nodes = r.u32()? as usize;

        let mut types: Interner<TypeId> = Interner::new();
        let ntypes = r.u32()? as usize;
        for expected in 0..ntypes {
            let text = r.str()?;
            // Interners are sets: a duplicate string would silently remap
            // every later id, so reject it as corruption.
            if types.get_or_intern(&text).index() != expected {
                return Err(r.bad_reference());
            }
        }
        let mut attrs: Interner<AttrId> = Interner::new();
        let nattrs = r.u32()? as usize;
        for expected in 0..nattrs {
            let text = r.str()?;
            if attrs.get_or_intern(&text).index() != expected {
                return Err(r.bad_reference());
            }
        }

        let nnew = r.u32()? as usize;
        let mut new_nodes: Vec<(TypeId, Box<str>)> = Vec::with_capacity(nnew);
        let mut text_nodes: FxHashMap<Box<str>, NodeId> = FxHashMap::default();
        for i in 0..nnew {
            let t = r.u32()? as usize;
            let text = r.str()?;
            if t >= ntypes {
                return Err(r.bad_reference());
            }
            let tid = TypeId::from_usize(t);
            if tid == KnowledgeGraph::TEXT_TYPE {
                // Rebuild the delta-local text dedup map (first id wins,
                // mirroring `add_text_edge`).
                text_nodes
                    .entry(text.as_str().into())
                    .or_insert_with(|| NodeId::from_usize(base_nodes + i));
            }
            new_nodes.push((tid, text.into()));
        }

        let total = base_nodes + nnew;
        let edge_list = |r: &mut Reader| -> Result<Vec<(NodeId, AttrId, NodeId)>, SnapshotError> {
            let n = r.u32()? as usize;
            let mut list = Vec::with_capacity(n.min(r.remaining() / 12 + 1));
            for _ in 0..n {
                let s = r.u32()? as usize;
                let a = r.u32()? as usize;
                let t = r.u32()? as usize;
                if s >= total || t >= total || a >= nattrs {
                    return Err(r.bad_reference());
                }
                list.push((
                    NodeId::from_usize(s),
                    AttrId::from_usize(a),
                    NodeId::from_usize(t),
                ));
            }
            Ok(list)
        };
        let added = edge_list(&mut r)?;
        let removed = edge_list(&mut r)?;

        Ok(GraphDelta {
            base_nodes,
            types,
            attrs,
            new_nodes,
            added,
            removed,
            text_nodes,
        })
    }

    /// Validate the batch against `base` and freeze a new CSR graph.
    ///
    /// All base node/type/attribute ids keep their meaning; new nodes get
    /// the next ids. Fails without side effects on the first invalid
    /// operation (an edge removal that names a missing edge, or an edge
    /// addition that duplicates a surviving edge).
    pub fn apply(
        &self,
        base: &KnowledgeGraph,
        mode: PagerankMode,
    ) -> Result<KnowledgeGraph, DeltaError> {
        if base.num_nodes() != self.base_nodes {
            return Err(DeltaError::BaseMismatch {
                expected_nodes: self.base_nodes,
                actual_nodes: base.num_nodes(),
            });
        }
        let n2 = self.total_nodes();

        // Removal set; the CSR stores at most one edge per triple, so a
        // plain set suffices and a second removal of the same triple is an
        // error.
        let mut removed: FxHashMap<(NodeId, AttrId, NodeId), bool> = FxHashMap::default();
        for &(s, a, t) in &self.removed {
            if !base.has_edge(s, a, t) {
                return Err(DeltaError::EdgeNotFound {
                    source: s,
                    attr: a,
                    target: t,
                });
            }
            // `false` = not yet consumed by the filter pass below.
            if removed.insert((s, a, t), false).is_some() {
                return Err(DeltaError::EdgeNotFound {
                    source: s,
                    attr: a,
                    target: t,
                });
            }
        }

        // Duplicate check for additions: against surviving base edges and
        // against each other.
        let mut seen_added: FxHashMap<(NodeId, AttrId, NodeId), ()> = FxHashMap::default();
        for &(s, a, t) in &self.added {
            let survives_in_base = base.has_edge(s, a, t) && !removed.contains_key(&(s, a, t));
            if survives_in_base || seen_added.insert((s, a, t), ()).is_some() {
                return Err(DeltaError::DuplicateEdge {
                    source: s,
                    attr: a,
                    target: t,
                });
            }
        }

        // Assemble the surviving edge list.
        let m2 = base.num_edges() - self.removed.len() + self.added.len();
        let mut edges: Vec<(NodeId, AttrId, NodeId)> = Vec::with_capacity(m2);
        for e in base.edges() {
            if !removed.contains_key(&(e.source, e.attr, e.target)) {
                edges.push((e.source, e.attr, e.target));
            }
        }
        edges.extend_from_slice(&self.added);
        edges.sort_unstable();
        debug_assert_eq!(edges.len(), m2);

        let mut node_types = base.node_types.clone();
        let mut node_texts = base.node_texts.clone();
        node_types.reserve(self.new_nodes.len());
        node_texts.reserve(self.new_nodes.len());
        for (t, text) in &self.new_nodes {
            node_types.push(*t);
            node_texts.push(text.clone());
        }

        let csr = crate::graph::Csr::from_sorted_edges(n2, &edges);
        let mut g = KnowledgeGraph {
            node_types,
            node_texts,
            out_offsets: csr.out_offsets,
            out_attrs: csr.out_attrs,
            out_targets: csr.out_targets,
            in_offsets: csr.in_offsets,
            in_attrs: csr.in_attrs,
            in_sources: csr.in_sources,
            types: self.types.clone(),
            attrs: self.attrs.clone(),
            pagerank: Vec::new(),
        };
        match mode {
            PagerankMode::Frozen => {
                let mut pr = base.pagerank.clone();
                pr.resize(n2, if n2 > 0 { 1.0 / n2 as f64 } else { 0.0 });
                g.pagerank = pr;
            }
            PagerankMode::Recompute => {
                let pr = crate::pagerank::compute(&g, &crate::pagerank::PageRankConfig::default());
                g.set_pagerank(pr);
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let sql = b.add_node(soft, "SQL Server");
        let ms = b.add_node(comp, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        b.build()
    }

    #[test]
    fn add_node_and_edge_preserves_base() {
        let g = base();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        let soft = d.add_type("Software");
        let ora_db = d.add_node(soft, "Oracle DB").unwrap();
        let ora = d.add_node(comp, "Oracle Corp").unwrap();
        d.add_edge(ora_db, dev, ora).unwrap();
        let g2 = d.apply(&g, PagerankMode::Recompute).unwrap();

        assert_eq!(g2.num_nodes(), g.num_nodes() + 2);
        assert_eq!(g2.num_edges(), g.num_edges() + 1);
        for v in g.nodes() {
            assert_eq!(g2.node_text(v), g.node_text(v));
            assert_eq!(g2.node_type(v), g.node_type(v));
        }
        let out: Vec<_> = g2.out_edges(ora_db).collect();
        assert_eq!(out, vec![(dev, ora)]);
    }

    #[test]
    fn remove_edge_works() {
        let g = base();
        let sql = NodeId(0);
        let ms = NodeId(1);
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        d.remove_edge(sql, dev, ms).unwrap();
        let g2 = d.apply(&g, PagerankMode::Frozen).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges() - 1);
        assert_eq!(g2.out_degree(sql), g.out_degree(sql) - 1);
        assert!(!g2.has_edge(sql, dev, ms));
    }

    #[test]
    fn remove_missing_edge_rejected() {
        let g = base();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        // Reversed direction: not present.
        d.remove_edge(NodeId(1), dev, NodeId(0)).unwrap();
        let err = d.apply(&g, PagerankMode::Frozen).unwrap_err();
        assert!(matches!(err, DeltaError::EdgeNotFound { .. }));
    }

    #[test]
    fn double_remove_rejected() {
        let g = base();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();
        assert!(matches!(
            d.apply(&g, PagerankMode::Frozen),
            Err(DeltaError::EdgeNotFound { .. })
        ));
    }

    #[test]
    fn duplicate_add_rejected() {
        let g = base();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        d.add_edge(NodeId(0), dev, NodeId(1)).unwrap();
        assert!(matches!(
            d.apply(&g, PagerankMode::Frozen),
            Err(DeltaError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn remove_then_readd_is_noop() {
        let g = base();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();
        d.add_edge(NodeId(0), dev, NodeId(1)).unwrap();
        let g2 = d.apply(&g, PagerankMode::Frozen).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(g2.has_edge(NodeId(0), dev, NodeId(1)));
    }

    #[test]
    fn out_of_range_ids_rejected_eagerly() {
        let g = base();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        assert_eq!(
            d.add_edge(NodeId(99), dev, NodeId(0)),
            Err(DeltaError::UnknownNode(NodeId(99)))
        );
        assert_eq!(
            d.add_edge(NodeId(0), AttrId(99), NodeId(1)),
            Err(DeltaError::UnknownAttr(AttrId(99)))
        );
        assert_eq!(
            d.add_node(TypeId(99), "x"),
            Err(DeltaError::UnknownType(TypeId(99)))
        );
    }

    #[test]
    fn dirty_nodes_cover_all_touched() {
        let g = base();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        let ora = d.add_node(comp, "Oracle Corp").unwrap();
        d.add_edge(NodeId(0), dev, ora).unwrap();
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();
        let dirty = d.dirty_nodes();
        assert_eq!(dirty, vec![NodeId(0), NodeId(1), ora]);
    }

    #[test]
    fn frozen_pagerank_extends_with_uniform_prior() {
        let g = base();
        let comp = g.type_by_text("Company").unwrap();
        let mut d = GraphDelta::new(&g);
        let ora = d.add_node(comp, "Oracle Corp").unwrap();
        let g2 = d.apply(&g, PagerankMode::Frozen).unwrap();
        for v in g.nodes() {
            assert_eq!(g2.pagerank(v), g.pagerank(v));
        }
        assert!((g2.pagerank(ora) - 1.0 / g2.num_nodes() as f64).abs() < 1e-15);
    }

    #[test]
    fn recompute_matches_fresh_build() {
        // Applying a delta and building the same graph from scratch must
        // produce identical CSR layouts and PageRank.
        let g = base();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(&g);
        let ora = d.add_node(comp, "Oracle Corp").unwrap();
        let soft = d.add_type("Software");
        let odb = d.add_node(soft, "Oracle DB").unwrap();
        d.add_edge(odb, dev, ora).unwrap();
        d.add_text_edge(ora, rev, "US$ 37 billion").unwrap();
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();
        let g2 = d.apply(&g, PagerankMode::Recompute).unwrap();

        let mut b = GraphBuilder::new();
        let soft_b = b.add_type("Software");
        let comp_b = b.add_type("Company");
        let dev_b = b.add_attr("Developer");
        let rev_b = b.add_attr("Revenue");
        let sql_b = b.add_node(soft_b, "SQL Server");
        let ms_b = b.add_node(comp_b, "Microsoft");
        b.add_text_edge(ms_b, rev_b, "US$ 77 billion");
        let ora_b = b.add_node(comp_b, "Oracle Corp");
        let odb_b = b.add_node(soft_b, "Oracle DB");
        b.add_edge(odb_b, dev_b, ora_b);
        b.add_text_edge(ora_b, rev_b, "US$ 37 billion");
        let _ = sql_b;
        let fresh = b.build();

        assert_eq!(g2.num_nodes(), fresh.num_nodes());
        assert_eq!(g2.num_edges(), fresh.num_edges());
        // Node ids may differ between the two constructions (the delta
        // appends, the fresh build interleaves), so compare edge multisets
        // by text.
        let canon = |g: &KnowledgeGraph| {
            let mut v: Vec<(String, String, String)> = g
                .edges()
                .map(|e| {
                    (
                        g.node_text(e.source).to_string(),
                        g.attr_text(e.attr).to_string(),
                        g.node_text(e.target).to_string(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&g2), canon(&fresh));
        // PageRank of matching nodes agrees.
        let pr_by_text = |g: &KnowledgeGraph| {
            let mut v: Vec<(String, u64)> = g
                .nodes()
                .map(|n| (g.node_text(n).to_string(), g.pagerank(n).to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(pr_by_text(&g2), pr_by_text(&fresh));
    }

    #[test]
    fn empty_delta_roundtrips() {
        let g = base();
        let d = GraphDelta::new(&g);
        assert!(d.is_empty());
        assert!(d.dirty_nodes().is_empty());
        let g2 = d.apply(&g, PagerankMode::Frozen).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn text_edge_dedup_within_delta() {
        let g = base();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(&g);
        let a = d.add_text_edge(NodeId(0), rev, "same text").unwrap();
        let b = d.add_text_edge(NodeId(1), rev, "same text").unwrap();
        assert_eq!(a, b);
        let g2 = d.apply(&g, PagerankMode::Frozen).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes() + 1);
        assert!(g2.is_text_node(a));
    }

    #[test]
    fn codec_roundtrip_applies_identically() {
        let g = base();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        let ora = d.add_node(comp, "Oracle Corp").unwrap();
        let rev = d.add_attr("Revenue");
        d.add_edge(NodeId(0), dev, ora).unwrap();
        d.add_text_edge(ora, rev, "US$ 37 billion").unwrap();
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();

        let bytes = d.encode();
        let d2 = GraphDelta::decode(&bytes).expect("decode");
        assert_eq!(d2.encode(), bytes, "re-encode is byte-identical");
        assert_eq!(d2.num_base_nodes(), d.num_base_nodes());
        assert_eq!(d2.dirty_nodes(), d.dirty_nodes());

        let a = d.apply(&g, PagerankMode::Frozen).unwrap();
        let b = d2.apply(&g, PagerankMode::Frozen).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        for v in a.nodes() {
            assert_eq!(a.node_text(v), b.node_text(v));
            assert_eq!(a.node_type(v), b.node_type(v));
            assert_eq!(a.pagerank(v).to_bits(), b.pagerank(v).to_bits());
        }
    }

    #[test]
    fn codec_rebuilds_text_dedup_map() {
        let g = base();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(&g);
        let v = d.add_text_edge(NodeId(0), rev, "shared value").unwrap();
        let mut d2 = GraphDelta::decode(&d.encode()).unwrap();
        // Adding the same text through the decoded delta reuses the node.
        let v2 = d2.add_text_edge(NodeId(1), rev, "shared value").unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn codec_rejects_garbage_and_bad_ids() {
        assert_eq!(
            GraphDelta::decode(b"xx").unwrap_err(),
            SnapshotError::Truncated { offset: 0 }
        );
        assert_eq!(
            GraphDelta::decode(b"XXXX\x01\x00\x00\x00").unwrap_err(),
            SnapshotError::BadMagic
        );

        let g = base();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        d.add_edge(NodeId(0), dev, NodeId(1)).unwrap();
        let bytes = d.encode();

        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert_eq!(
            GraphDelta::decode(&bad_version).unwrap_err(),
            SnapshotError::BadVersion(9)
        );

        // Corrupt the added edge's source id (last 12 bytes are the edge,
        // preceded by the removed-list count trailing it).
        let edge_src = bytes.len() - 4 - 12;
        let mut bad_ref = bytes.clone();
        bad_ref[edge_src..edge_src + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            GraphDelta::decode(&bad_ref).unwrap_err(),
            SnapshotError::BadReference { .. }
        ));

        // Any truncation errors out instead of panicking.
        for cut in 0..bytes.len() {
            assert!(GraphDelta::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    /// One randomly generated mutation (ids are taken modulo the valid
    /// ranges when applied, so every op is well-formed).
    #[derive(Debug, Clone)]
    enum Op {
        AddType(String),
        AddAttr(String),
        AddNode(usize, String),
        AddEdge(usize, usize, usize),
        AddTextEdge(usize, usize, String),
        RemoveEdge(usize),
    }

    fn base() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let ty = b.add_type("Thing");
        let rel = b.add_attr("related to");
        let nodes: Vec<_> = (0..6)
            .map(|i| b.add_node(ty, &format!("entity number {i}")))
            .collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], rel, w[1]);
        }
        b.build()
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            "[a-z]{1,6}".prop_map(Op::AddType),
            "[a-z]{1,6}".prop_map(Op::AddAttr),
            (any::<usize>(), "[a-z ]{1,12}").prop_map(|(t, s)| Op::AddNode(t, s)),
            (any::<usize>(), any::<usize>(), any::<usize>())
                .prop_map(|(s, a, t)| Op::AddEdge(s, a, t)),
            (any::<usize>(), any::<usize>(), "[a-z ]{1,12}")
                .prop_map(|(s, a, v)| Op::AddTextEdge(s, a, v)),
            any::<usize>().prop_map(Op::RemoveEdge),
        ]
    }

    fn build_delta(g: &KnowledgeGraph, ops: &[Op]) -> GraphDelta {
        let base_edges: Vec<_> = g.edges().map(|e| (e.source, e.attr, e.target)).collect();
        let mut d = GraphDelta::new(g);
        for op in ops {
            match op {
                Op::AddType(s) => {
                    d.add_type(s);
                }
                Op::AddAttr(s) => {
                    d.add_attr(s);
                }
                Op::AddNode(t, s) => {
                    let tid = TypeId::from_usize(1 + t % (d.types.len() - 1).max(1));
                    d.add_node(tid, s).ok();
                }
                Op::AddEdge(s, a, t) => {
                    let n = d.total_nodes();
                    d.add_edge(
                        NodeId::from_usize(s % n),
                        AttrId::from_usize(a % d.attrs.len()),
                        NodeId::from_usize(t % n),
                    )
                    .ok();
                }
                Op::AddTextEdge(s, a, v) => {
                    let n = d.total_nodes();
                    d.add_text_edge(
                        NodeId::from_usize(s % n),
                        AttrId::from_usize(a % d.attrs.len()),
                        v,
                    )
                    .ok();
                }
                Op::RemoveEdge(i) => {
                    let (s, a, t) = base_edges[i % base_edges.len()];
                    d.remove_edge(s, a, t).ok();
                }
            }
        }
        d
    }

    proptest! {
        /// encode → decode → encode is byte-identical, and when the
        /// original delta applies cleanly the decoded one produces a
        /// bit-identical graph.
        #[test]
        fn codec_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..40)) {
            let g = base();
            let d = build_delta(&g, &ops);
            let bytes = d.encode();
            let d2 = GraphDelta::decode(&bytes).expect("decode");
            prop_assert_eq!(d2.encode(), bytes);
            prop_assert_eq!(d2.num_base_nodes(), d.num_base_nodes());
            prop_assert_eq!(d2.dirty_nodes(), d.dirty_nodes());

            let a = d.apply(&g, PagerankMode::Frozen);
            let b = d2.apply(&g, PagerankMode::Frozen);
            match (a, b) {
                (Ok(ga), Ok(gb)) => {
                    prop_assert_eq!(ga.num_nodes(), gb.num_nodes());
                    let ea: Vec<_> = ga.edges().collect();
                    let eb: Vec<_> = gb.edges().collect();
                    prop_assert_eq!(ea, eb);
                    for v in ga.nodes() {
                        prop_assert_eq!(ga.node_text(v), gb.node_text(v));
                        prop_assert_eq!(ga.node_type(v), gb.node_type(v));
                        prop_assert_eq!(ga.pagerank(v).to_bits(), gb.pagerank(v).to_bits());
                    }
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (a, b) => prop_assert!(false, "apply outcomes diverge: {:?} vs {:?}", a, b),
            }
        }

        /// Decoding any truncated prefix fails with an error (never panics,
        /// never fabricates a delta).
        #[test]
        fn truncated_prefixes_error(ops in proptest::collection::vec(op_strategy(), 1..20),
                                    frac in 0.0f64..1.0) {
            let g = base();
            let bytes = build_delta(&g, &ops).encode();
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(GraphDelta::decode(&bytes[..cut]).is_err());
        }
    }
}
