//! Bounded traversal primitives shared by index construction and the
//! enumeration–aggregation baseline.
//!
//! The central notion is a **simple directed path with at most `d` nodes**
//! starting at a root (paper §3, Algorithm 1). Paths must be simple because a
//! valid subtree is a subtree *of the graph* — a root-to-leaf path cannot
//! revisit a node (and the Theorem-1 reduction counts *simple* s-t paths).

use crate::graph::KnowledgeGraph;
use crate::ids::{AttrId, Id, NodeId};

/// Enumerate every simple path starting at `root` with at most `max_nodes`
/// nodes (the root alone counts as a 1-node path), invoking `visit` with the
/// node stack and the attribute stack (`attrs[i]` labels the edge
/// `nodes[i] -> nodes[i+1]`).
///
/// `visit` is called once per path, in DFS order, including the trivial
/// single-node path. The slices are only valid during the call.
pub fn for_each_path<F>(g: &KnowledgeGraph, root: NodeId, max_nodes: usize, mut visit: F)
where
    F: FnMut(&[NodeId], &[AttrId]),
{
    if max_nodes == 0 {
        return;
    }
    let mut nodes = Vec::with_capacity(max_nodes);
    let mut attrs = Vec::with_capacity(max_nodes.saturating_sub(1));
    nodes.push(root);
    visit(&nodes, &attrs);
    dfs(g, max_nodes, &mut nodes, &mut attrs, &mut visit);
}

fn dfs<F>(
    g: &KnowledgeGraph,
    max_nodes: usize,
    nodes: &mut Vec<NodeId>,
    attrs: &mut Vec<AttrId>,
    visit: &mut F,
) where
    F: FnMut(&[NodeId], &[AttrId]),
{
    if nodes.len() == max_nodes {
        return;
    }
    let v = *nodes.last().expect("non-empty stack");
    for (attr, target) in g.out_edges(v) {
        // Simple paths only: skip nodes already on the stack. Stacks are at
        // most `d` deep (d ≤ 4 in the paper), so a linear scan beats any
        // hash-set bookkeeping.
        if nodes.contains(&target) {
            continue;
        }
        nodes.push(target);
        attrs.push(attr);
        visit(nodes, attrs);
        dfs(g, max_nodes, nodes, attrs, visit);
        nodes.pop();
        attrs.pop();
    }
}

/// Backward BFS: every node that can reach some node in `sources` through a
/// directed path with at most `max_nodes` nodes total (so up to
/// `max_nodes - 1` hops). Returns a dense boolean mask.
///
/// This is the reachability core of the baseline's backward search (paper
/// §2.3, adapted from BANKS \[10\]).
pub fn backward_reach_mask(
    g: &KnowledgeGraph,
    sources: impl IntoIterator<Item = NodeId>,
    max_nodes: usize,
) -> Vec<bool> {
    let n = g.num_nodes();
    let mut mask = vec![false; n];
    if max_nodes == 0 {
        return mask;
    }
    let mut frontier: Vec<NodeId> = Vec::new();
    for s in sources {
        if !mask[s.index()] {
            mask[s.index()] = true;
            frontier.push(s);
        }
    }
    // `max_nodes` nodes on a path = `max_nodes - 1` backward expansions.
    for _ in 1..max_nodes {
        let mut next = Vec::new();
        for &v in &frontier {
            for (_, u) in g.in_edges(v) {
                if !mask[u.index()] {
                    mask[u.index()] = true;
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    mask
}

/// Count simple paths from `s` to `t` with no length bound (exponential in
/// the worst case — only for small graphs; used by the Theorem-1 reduction
/// tests).
pub fn count_simple_paths(g: &KnowledgeGraph, s: NodeId, t: NodeId) -> u64 {
    fn rec(g: &KnowledgeGraph, v: NodeId, t: NodeId, on_stack: &mut Vec<NodeId>) -> u64 {
        if v == t {
            return 1;
        }
        let mut total = 0;
        for (_, u) in g.out_edges(v) {
            if !on_stack.contains(&u) {
                on_stack.push(u);
                total += rec(g, u, t, on_stack);
                on_stack.pop();
            }
        }
        total
    }
    let mut stack = vec![s];
    rec(g, s, t, &mut stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Diamond: a -> b -> d, a -> c -> d.
    fn diamond() -> (KnowledgeGraph, [NodeId; 4]) {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let e = b.add_attr("e");
        let a = b.add_node(t, "a");
        let x = b.add_node(t, "b");
        let y = b.add_node(t, "c");
        let d = b.add_node(t, "d");
        b.add_edge(a, e, x);
        b.add_edge(a, e, y);
        b.add_edge(x, e, d);
        b.add_edge(y, e, d);
        (b.build(), [a, x, y, d])
    }

    #[test]
    fn path_enumeration_counts() {
        let (g, [a, ..]) = diamond();
        let mut count = 0;
        for_each_path(&g, a, 3, |_, _| count += 1);
        // 1 (a) + 2 (a-b, a-c) + 2 (a-b-d, a-c-d) = 5
        assert_eq!(count, 5);
    }

    #[test]
    fn path_enumeration_respects_bound() {
        let (g, [a, ..]) = diamond();
        let mut max_len = 0;
        for_each_path(&g, a, 2, |nodes, attrs| {
            assert_eq!(attrs.len() + 1, nodes.len());
            max_len = max_len.max(nodes.len());
        });
        assert_eq!(max_len, 2);
    }

    #[test]
    fn paths_are_simple_on_cycles() {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let e = b.add_attr("e");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, e, y);
        b.add_edge(y, e, x);
        let g = b.build();
        let mut paths = Vec::new();
        for_each_path(&g, x, 5, |nodes, _| paths.push(nodes.to_vec()));
        // x, x-y only; x-y-x is not simple.
        assert_eq!(paths, vec![vec![x], vec![x, y]]);
    }

    #[test]
    fn backward_mask_radii() {
        let (g, [a, b_, c, d]) = diamond();
        let m1 = backward_reach_mask(&g, [d], 1);
        assert!(m1[d.index()] && !m1[b_.index()]);
        let m2 = backward_reach_mask(&g, [d], 2);
        assert!(m2[b_.index()] && m2[c.index()] && !m2[a.index()]);
        let m3 = backward_reach_mask(&g, [d], 3);
        assert!(m3[a.index()]);
    }

    #[test]
    fn simple_path_count_diamond() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(count_simple_paths(&g, a, d), 2);
        assert_eq!(count_simple_paths(&g, d, a), 0);
        assert_eq!(count_simple_paths(&g, a, a), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    fn random_graph(n: usize, edges: &[(u8, u8)]) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("T");
        let a = b.add_attr("e");
        let nodes: Vec<_> = (0..n).map(|i| b.add_node(t, &format!("n{i}"))).collect();
        for &(s, d) in edges {
            let (s, d) = (s as usize % n, d as usize % n);
            if s != d {
                b.add_edge(nodes[s], a, nodes[d]);
            }
        }
        b.build()
    }

    proptest! {
        /// Every enumerated path is simple, within bound, and edges exist.
        #[test]
        fn paths_are_valid(edges in proptest::collection::vec((0u8..6, 0u8..6), 0..20)) {
            let g = random_graph(6, &edges);
            let mut violations: Vec<String> = Vec::new();
            for_each_path(&g, NodeId(0), 4, |nodes, attrs| {
                if nodes.len() > 4 {
                    violations.push(format!("too long: {nodes:?}"));
                }
                let mut sorted = nodes.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != nodes.len() {
                    violations.push(format!("not simple: {nodes:?}"));
                }
                for i in 0..attrs.len() {
                    let found = g.out_edges(nodes[i]).any(|(a, t)| a == attrs[i] && t == nodes[i + 1]);
                    if !found {
                        violations.push(format!("missing edge at {i}: {nodes:?}"));
                    }
                }
            });
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        /// backward_reach_mask agrees with forward path enumeration:
        /// u is in the mask of {t} iff some simple path u→t with ≤ d nodes exists.
        #[test]
        fn backward_mask_agrees_with_forward(
            edges in proptest::collection::vec((0u8..5, 0u8..5), 0..15),
            target in 0u8..5,
        ) {
            let g = random_graph(5, &edges);
            let t = NodeId(target as u32 % 5);
            let d = 3;
            let mask = backward_reach_mask(&g, [t], d);
            for v in g.nodes() {
                let mut reaches = false;
                for_each_path(&g, v, d, |nodes, _| {
                    if *nodes.last().unwrap() == t {
                        reaches = true;
                    }
                });
                prop_assert_eq!(mask[v.index()], reaches);
            }
        }
    }
}
