//! Strongly-typed integer identifiers.
//!
//! Every entity in the system (graph node, entity type, attribute type,
//! vocabulary word) is referred to by a `u32` newtype. Using 4-byte ids keeps
//! the CSR arrays and the path indexes compact (the per-word path indexes are
//! the dominant memory consumer, cf. Figure 6 of the paper) and makes ids
//! `Copy`, hashable and directly usable as array offsets.

use std::fmt;

/// Common behaviour of all id newtypes: conversion to/from raw `u32`/`usize`.
pub trait Id: Copy + Eq + Ord + std::hash::Hash + fmt::Debug {
    /// Build an id from a raw index. Panics in debug builds on overflow.
    fn from_usize(i: usize) -> Self;
    /// The raw index, usable as an array offset.
    fn index(self) -> usize;
    /// Build from the raw `u32` representation.
    fn from_u32(i: u32) -> Self;
    /// The raw `u32` representation.
    fn as_u32(self) -> u32;
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl Id for $name {
            #[inline]
            fn from_usize(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize, "id overflow");
                $name(i as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
            #[inline]
            fn from_u32(i: u32) -> Self {
                $name(i)
            }
            #[inline]
            fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.0 as usize
            }
        }
    };
}

define_id!(
    /// A node (entity) in the knowledge graph.
    NodeId
);
define_id!(
    /// An entity type `τ(v) ∈ C` (e.g. `Software`, `Company`, `Person`).
    TypeId
);
define_id!(
    /// An attribute (edge) type `α(e) ∈ A` (e.g. `Developer`, `Revenue`).
    AttrId
);
define_id!(
    /// A canonical vocabulary word (post tokenization/stemming/synonyms).
    WordId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = NodeId::from_usize(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.as_u32(), 42);
        assert_eq!(NodeId::from_u32(42), n);
        assert_eq!(usize::from(n), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(TypeId(0) < TypeId(100));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", AttrId(7)), "7");
        assert_eq!(format!("{:?}", AttrId(7)), "AttrId(7)");
        assert_eq!(format!("{:?}", WordId(3)), "WordId(3)");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; the test documents intent.
        fn takes_node(_: NodeId) {}
        takes_node(NodeId(0));
    }
}
