//! Incremental construction of a [`KnowledgeGraph`].
//!
//! The builder mirrors how a knowledge base is ingested (paper §2.1 and
//! Example 2.1): entities with types, attribute edges between entities, and
//! plain-text attribute values that become dummy text entities. Multi-valued
//! attributes ("Products: Windows, Bing, …") are simply repeated
//! [`GraphBuilder::add_edge`] calls with the same attribute.

use crate::fxhash::FxHashMap;
use crate::graph::KnowledgeGraph;
use crate::ids::{AttrId, Id, NodeId, TypeId};
use crate::interner::Interner;

/// Mutable builder; call [`GraphBuilder::build`] to freeze into CSR form.
pub struct GraphBuilder {
    types: Interner<TypeId>,
    attrs: Interner<AttrId>,
    node_types: Vec<TypeId>,
    node_texts: Vec<Box<str>>,
    edges: Vec<(NodeId, AttrId, NodeId)>,
    /// Dedup cache for plain-text value nodes: identical text shares a node.
    text_nodes: FxHashMap<Box<str>, NodeId>,
    compute_pagerank: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// A fresh builder. The reserved empty-text [`KnowledgeGraph::TEXT_TYPE`]
    /// is interned eagerly so it is always `TypeId(0)`.
    pub fn new() -> Self {
        let mut types = Interner::new();
        let text_type = types.get_or_intern("");
        debug_assert_eq!(text_type, KnowledgeGraph::TEXT_TYPE);
        GraphBuilder {
            types,
            attrs: Interner::new(),
            node_types: Vec::new(),
            node_texts: Vec::new(),
            edges: Vec::new(),
            text_nodes: FxHashMap::default(),
            compute_pagerank: true,
        }
    }

    /// A builder with pre-reserved capacity for `nodes` entities and `edges`
    /// attribute edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut b = Self::new();
        b.node_types.reserve(nodes);
        b.node_texts.reserve(nodes);
        b.edges.reserve(edges);
        b
    }

    /// Disable the (eager, default-on) PageRank pass in [`Self::build`];
    /// useful in tests and when the caller will run
    /// [`crate::pagerank::compute`] with custom settings.
    pub fn skip_pagerank(&mut self) -> &mut Self {
        self.compute_pagerank = false;
        self
    }

    /// Intern an entity type by its text (e.g. `"Software"`).
    pub fn add_type(&mut self, text: &str) -> TypeId {
        assert!(
            !text.is_empty(),
            "the empty type text is reserved for plain-text dummy entities"
        );
        self.types.get_or_intern(text)
    }

    /// Intern an attribute type by its text (e.g. `"Developer"`).
    pub fn add_attr(&mut self, text: &str) -> AttrId {
        self.attrs.get_or_intern(text)
    }

    /// Add an entity node of type `t` with free-text description `text`.
    pub fn add_node(&mut self, t: TypeId, text: &str) -> NodeId {
        let id = NodeId::from_usize(self.node_types.len());
        self.node_types.push(t);
        self.node_texts.push(text.into());
        id
    }

    /// Add an attribute edge `source -attr-> target` between two entities.
    pub fn add_edge(&mut self, source: NodeId, attr: AttrId, target: NodeId) {
        debug_assert!(source.index() < self.node_types.len());
        debug_assert!(target.index() < self.node_types.len());
        self.edges.push((source, attr, target));
    }

    /// Add an attribute whose value is plain text: creates (or reuses) a
    /// dummy text entity and links to it. Returns the dummy node.
    pub fn add_text_edge(&mut self, source: NodeId, attr: AttrId, value: &str) -> NodeId {
        let node = if let Some(&n) = self.text_nodes.get(value) {
            n
        } else {
            let n = self.add_node(KnowledgeGraph::TEXT_TYPE, value);
            self.text_nodes.insert(value.into(), n);
            n
        };
        self.add_edge(source, attr, node);
        node
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into an immutable CSR [`KnowledgeGraph`]. Edges are
    /// deduplicated and sorted by `(source, attr, target)`; the reverse CSR
    /// is derived; PageRank is computed unless [`Self::skip_pagerank`] was
    /// called.
    pub fn build(mut self) -> KnowledgeGraph {
        let n = self.node_types.len();
        self.edges.sort_unstable_by_key(|&(s, a, t)| (s, a, t));
        self.edges.dedup();

        let csr = crate::graph::Csr::from_sorted_edges(n, &self.edges);
        let mut g = KnowledgeGraph {
            node_types: self.node_types,
            node_texts: self.node_texts,
            out_offsets: csr.out_offsets,
            out_attrs: csr.out_attrs,
            out_targets: csr.out_targets,
            in_offsets: csr.in_offsets,
            in_attrs: csr.in_attrs,
            in_sources: csr.in_sources,
            types: self.types,
            attrs: self.attrs,
            pagerank: vec![0.0; n],
        };
        if self.compute_pagerank && n > 0 {
            let pr = crate::pagerank::compute(&g, &crate::pagerank::PageRankConfig::default());
            g.set_pagerank(pr);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("T");
        let a = b.add_attr("A");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, a, y);
        b.add_edge(x, a, y);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parallel_edges_with_distinct_attrs_survive() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("T");
        let a1 = b.add_attr("A1");
        let a2 = b.add_attr("A2");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        b.add_edge(x, a1, y);
        b.add_edge(x, a2, y);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        let attrs: Vec<_> = g.out_edges(x).map(|(a, _)| a).collect();
        assert_eq!(attrs, vec![a1, a2]);
    }

    #[test]
    fn multi_valued_attribute_fans_out() {
        // "Products: Windows, Bing" — same attr, multiple targets.
        let mut b = GraphBuilder::new();
        let comp = b.add_type("Company");
        let soft = b.add_type("Software");
        let products = b.add_attr("Products");
        let ms = b.add_node(comp, "Microsoft");
        let win = b.add_node(soft, "Windows");
        let bing = b.add_node(soft, "Bing");
        b.add_edge(ms, products, win);
        b.add_edge(ms, products, bing);
        let g = b.build();
        assert_eq!(g.out_degree(ms), 2);
    }

    #[test]
    fn text_values_share_nodes() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("Company");
        let rev = b.add_attr("Revenue");
        let x = b.add_node(t, "X Corp");
        let y = b.add_node(t, "Y Corp");
        let n1 = b.add_text_edge(x, rev, "US$ 1 billion");
        let n2 = b.add_text_edge(y, rev, "US$ 1 billion");
        assert_eq!(n1, n2);
        let g = b.build();
        assert_eq!(g.in_degree(n1), 2);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn empty_type_text_is_rejected() {
        let mut b = GraphBuilder::new();
        b.add_type("");
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edge_ordering_is_sorted() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("T");
        let a1 = b.add_attr("a");
        let a2 = b.add_attr("b");
        let x = b.add_node(t, "x");
        let y = b.add_node(t, "y");
        let z = b.add_node(t, "z");
        // Insert out of order.
        b.add_edge(x, a2, z);
        b.add_edge(x, a1, z);
        b.add_edge(x, a1, y);
        let g = b.build();
        let edges: Vec<_> = g.out_edges(x).collect();
        assert_eq!(edges, vec![(a1, y), (a1, z), (a2, z)]);
    }
}
