//! Interactive keyword-search shell — and HTTP server — over a knowledge
//! base.
//!
//! ```text
//! patternkb-cli figure1                 # the paper's running example
//! patternkb-cli wiki  [--entities N]    # synthetic Wiki-like KB
//! patternkb-cli imdb  [--movies N]      # synthetic IMDB-like KB
//! patternkb-cli load  <graph.pkbg>      # a saved graph snapshot
//!   options: --d <2..5>  --seed <u64>  --shards <n>  (0 = one per core)
//!
//! patternkb-cli serve <dataset…>        # HTTP server instead of a REPL
//!   options: --addr <ip:port>  --workers <n>  --queue <slots>
//!            --batch <max>  --deadline-ms <ms>  --max-body-bytes <n>
//!            --no-ingest (disable the online write path)
//!            --index-snapshot <file> (boot from a saved index snapshot)
//!            --storage heap|mmap (map a v5 snapshot instead of decoding
//!            it; see README "Storage backends")
//!   endpoints: POST /search, GET /healthz, GET /metrics,
//!              POST /admin/ingest (online mutation batch applied via
//!              incremental index refresh — see README "Writes"),
//!              POST /admin/reload (rebuilds the same dataset — or, with
//!              --index-snapshot, re-opens the snapshot file: swap the
//!              file, reload, and the server remaps it — and hot-swaps
//!              it), POST /admin/shutdown (graceful exit 0)
//!
//! patternkb-cli snapshot <dataset…> --out <file> [--format v5|raw]
//!   build a dataset's indexes once and write them as a snapshot file —
//!   v5 (default) is the offset-table container `--storage mmap` boots
//!   from without decoding; raw is the fully-decoded PKBI image.
//! ```
//!
//! Then type keyword queries; commands start with `:`
//!
//! ```text
//! :k 10            answers per query
//! :algo pe|pruned|le|topk|baseline|auto
//! :rho 0.1         sampling rate for topk
//! :lambda 1000     sampling threshold for topk
//! :rows 5          table rows shown
//! :mmr 0.7         diversify answers (MMR λ; `:mmr off` disables)
//! :explain 1       show the subtrees behind answer #1 of the last query
//! :stats           dataset and index statistics
//! :quit
//! ```
//!
//! Every query is one [`SearchRequest`] answered by
//! [`SearchEngine::respond`]; parse failures come back as typed errors
//! with "did you mean" suggestions.

use patternkb::graph::{snapshot, GraphStats, KnowledgeGraph};
use patternkb::prelude::*;
use patternkb::search::explain;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("snapshot") {
        snapshot_main(&args[1..]);
    }
    let (graph, label) = match build_graph(&args) {
        Ok(pair) => pair,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: patternkb-cli [serve] figure1|wiki|imdb|load <file> [--d N] [--entities N] [--movies N] [--seed N]");
            std::process::exit(2);
        }
    };
    let d = flag_value(&args, "--d").unwrap_or(3);
    let shards = flag_value(&args, "--shards").unwrap_or(0);
    eprintln!("[{label}] {}", GraphStats::of(&graph));
    eprintln!("building indexes (d = {d}) …");
    let t0 = std::time::Instant::now();
    let engine = match EngineBuilder::new()
        .graph(graph)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .shards(shards)
        .build()
    {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("cannot build engine: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "indexes ready in {:.2}s: {:?}",
        t0.elapsed().as_secs_f64(),
        engine.index()
    );
    repl(&engine);
}

/// Parse the `--storage heap|mmap` flag (default heap), loudly rejecting
/// unknown tiers instead of silently falling back.
fn parse_storage(spec: &[String]) -> Result<patternkb::search::StorageBackend, String> {
    match spec
        .iter()
        .position(|a| a == "--storage")
        .and_then(|i| spec.get(i + 1))
    {
        None => Ok(patternkb::search::StorageBackend::Heap),
        Some(raw) => raw
            .parse()
            .map_err(|e| format!("invalid --storage {raw:?}: {e}")),
    }
}

/// Build the serving engine for a dataset spec (shared by boot and the
/// `/admin/reload` hot-swap path). Without `--index-snapshot` a reload is
/// a true rebuild; with it, a reload re-opens the snapshot file — so
/// swapping the file on disk and POSTing /admin/reload is a full index
/// swap (under `--storage mmap`, an mmap remap with no decode).
fn build_serve_engine(spec: &[String]) -> Result<SearchEngine, String> {
    let (graph, _) = build_graph(spec)?;
    let d = flag_value(spec, "--d").unwrap_or(3);
    let shards = flag_value(spec, "--shards").unwrap_or(0);
    let mut builder = EngineBuilder::new()
        .graph(graph)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .shards(shards)
        .storage(parse_storage(spec)?);
    if let Some(path) = flag_value::<String>(spec, "--index-snapshot") {
        builder = builder.index_snapshot(path);
    }
    builder
        .build()
        .map_err(|e| format!("cannot build engine: {e}"))
}

/// Build the durable serving handle for `--data-dir` boots: newest
/// checkpoint plus write-ahead-log tail when the directory has state,
/// the dataset spec only on first boot (and as the text/synonym source).
fn build_serve_shared(spec: &[String], dir: &str) -> Result<SharedEngine, String> {
    let (graph, _) = build_graph(spec)?;
    let d = flag_value(spec, "--d").unwrap_or(3);
    let shards = flag_value(spec, "--shards").unwrap_or(0);
    let mut builder = EngineBuilder::new()
        .graph(graph)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .shards(shards)
        .storage(parse_storage(spec)?)
        .data_dir(dir);
    if let Some(raw) = spec
        .iter()
        .position(|a| a == "--fsync")
        .and_then(|i| spec.get(i + 1))
    {
        let policy: patternkb::search::FsyncPolicy = raw
            .parse()
            .map_err(|e| format!("invalid --fsync {raw:?}: {e}"))?;
        builder = builder.fsync(policy);
    }
    if let Some(bytes) = flag_value(spec, "--checkpoint-bytes") {
        builder = builder.checkpoint_bytes(bytes);
    }
    if let Some(records) = flag_value(spec, "--checkpoint-records") {
        builder = builder.checkpoint_records(records);
    }
    builder
        .build_shared()
        .map_err(|e| format!("cannot build engine: {e}"))
}

/// The `snapshot` subcommand body: build a dataset's indexes once and
/// write them to `--out` (v5 container by default — what
/// `serve --storage mmap --index-snapshot` boots from instantly).
fn run_snapshot(args: &[String]) -> Result<String, String> {
    let (graph, label) = build_graph(args)?;
    let out: String = flag_value(args, "--out").ok_or("snapshot needs --out <file>")?;
    let format: String = flag_value(args, "--format").unwrap_or_else(|| "v5".to_string());
    let d = flag_value(args, "--d").unwrap_or(3);
    let shards = flag_value(args, "--shards").unwrap_or(0);
    let engine = EngineBuilder::new()
        .graph(graph)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .shards(shards)
        .build()
        .map_err(|e| format!("cannot build engine: {e}"))?;
    let path = std::path::Path::new(&out);
    match format.as_str() {
        "v5" => patternkb::index::storage::save_v5(engine.index(), path),
        "raw" => patternkb::index::snapshot::save(engine.index(), path),
        other => return Err(format!("unknown --format {other:?} (v5|raw)")),
    }
    .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "wrote {format} snapshot of {label} to {out}: {:?}",
        engine.index()
    ))
}

/// The `snapshot` subcommand: write a dataset's index snapshot and exit.
fn snapshot_main(args: &[String]) -> ! {
    match run_snapshot(args) {
        Ok(msg) => {
            println!("{msg}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: patternkb-cli snapshot figure1|wiki|imdb|load <file> --out <file> [--format v5|raw] [--d N] [--shards N] [dataset flags]");
            std::process::exit(2);
        }
    }
}

/// Translate `serve` flags into a [`patternkb::serve::ServeConfig`].
fn serve_config(args: &[String]) -> patternkb::serve::ServeConfig {
    let defaults = patternkb::serve::ServeConfig::default();
    patternkb::serve::ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or_else(|| defaults.addr.clone()),
        workers: flag_value(args, "--workers").unwrap_or(defaults.workers),
        queue_capacity: flag_value(args, "--queue").unwrap_or(defaults.queue_capacity),
        batch_max: flag_value(args, "--batch").unwrap_or(defaults.batch_max),
        deadline: std::time::Duration::from_millis(
            flag_value(args, "--deadline-ms").unwrap_or(defaults.deadline.as_millis() as u64),
        ),
        max_body_bytes: flag_value(args, "--max-body-bytes").unwrap_or(defaults.max_body_bytes),
        enable_ingest: !args.iter().any(|a| a == "--no-ingest"),
        ..defaults
    }
}

/// The `serve` subcommand: boot the HTTP server over the dataset and run
/// until `POST /admin/shutdown` drains it (then exit 0).
fn serve_main(args: &[String]) -> ! {
    let spec: Vec<String> = args.to_vec();
    eprintln!(
        "building engine for {:?} …",
        spec.first().map(String::as_str).unwrap_or("figure1")
    );
    let usage = "usage: patternkb-cli serve figure1|wiki|imdb|load <file> [dataset flags] [--addr A] [--workers N] [--queue N] [--batch N] [--deadline-ms N] [--max-body-bytes N] [--no-ingest] [--index-snapshot FILE] [--storage heap|mmap] [--data-dir DIR] [--fsync always|group(5ms)|never] [--checkpoint-bytes N] [--checkpoint-records N]";
    let t0 = std::time::Instant::now();
    let data_dir: Option<String> = flag_value(&spec, "--data-dir");
    let shared = match &data_dir {
        Some(dir) => match build_serve_shared(&spec, dir) {
            Ok(shared) => shared,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        },
        None => match build_serve_engine(&spec) {
            Ok(engine) => SharedEngine::new(engine),
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        },
    };
    let cfg = serve_config(&spec);
    let boot = shared.snapshot();
    eprintln!(
        "engine ready in {:.2}s ({} shard(s), version {}, storage {}{}){}{}",
        t0.elapsed().as_secs_f64(),
        boot.num_shards(),
        shared.version(),
        boot.storage_backend(),
        match boot.snapshot_load_time() {
            Some(took) => format!(", snapshot loaded in {:.3}s", took.as_secs_f64()),
            None => String::new(),
        },
        match &data_dir {
            Some(dir) => format!("; durable in {dir} (reload via restart)"),
            None => "; hot-swappable via POST /admin/reload".to_string(),
        },
        if cfg.enable_ingest {
            ", writable via POST /admin/ingest"
        } else {
            "; ingest disabled (--no-ingest)"
        }
    );
    let shared = std::sync::Arc::new(shared);
    let reload_spec = spec.clone();
    let reload: Box<patternkb::serve::ReloadFn> =
        Box::new(move || build_serve_engine(&reload_spec));
    let server = match patternkb::serve::Server::start(shared, Some(reload), cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            std::process::exit(2);
        }
    };
    // The machine-readable boot line CI and loadgen wait for.
    println!("listening on http://{}", server.local_addr());
    server.join();
    eprintln!("shutdown complete");
    std::process::exit(0);
}

/// Session state mutated by `:commands`.
struct Session {
    k: usize,
    rows: usize,
    algo: AlgorithmChoice,
    rho: f64,
    lambda: u64,
    /// MMR diversification trade-off; `None` = off.
    mmr: Option<f64>,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            k: 5,
            rows: 8,
            algo: AlgorithmChoice::PatternEnum,
            rho: 0.1,
            lambda: 100_000,
            mmr: None,
        }
    }
}

impl Session {
    /// The request this session sends for `line`.
    fn request(&self, line: &str) -> SearchRequest {
        let mut req = SearchRequest::text(line)
            .k(self.k)
            .algorithm(self.algo)
            .sampling(SamplingConfig::new(self.lambda, self.rho, 42))
            .max_rows(self.rows.max(1))
            .relax(true);
        if let Some(lambda) = self.mmr {
            req = req.diversify(lambda);
        }
        req
    }
}

/// Outcome of applying one `:command` line to the session.
enum CommandResult {
    Applied(String),
    Explain(usize),
    Stats,
    Quit,
    Error(String),
}

/// Parse and apply a `:command`; pure so it is unit-testable.
fn apply_command(session: &mut Session, line: &str) -> CommandResult {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    let arg = parts.next();
    match (cmd, arg) {
        (":quit" | ":q" | ":exit", _) => CommandResult::Quit,
        (":stats", _) => CommandResult::Stats,
        (":k", Some(v)) => match v.parse::<usize>() {
            Ok(k) if k >= 1 => {
                session.k = k;
                CommandResult::Applied(format!("k = {k}"))
            }
            _ => CommandResult::Error("k must be a positive integer".into()),
        },
        (":rows", Some(v)) => match v.parse::<usize>() {
            Ok(r) => {
                session.rows = r;
                CommandResult::Applied(format!("rows = {r}"))
            }
            _ => CommandResult::Error("rows must be an integer".into()),
        },
        (":rho", Some(v)) => match v.parse::<f64>() {
            Ok(r) if r > 0.0 && r <= 1.0 => {
                session.rho = r;
                CommandResult::Applied(format!("rho = {r}"))
            }
            _ => CommandResult::Error("rho must be in (0, 1]".into()),
        },
        (":lambda", Some(v)) => match v.parse::<u64>() {
            Ok(l) => {
                session.lambda = l;
                CommandResult::Applied(format!("lambda = {l}"))
            }
            _ => CommandResult::Error("lambda must be an integer".into()),
        },
        (":algo", Some(v)) => {
            let algo = match v {
                "pe" => AlgorithmChoice::PatternEnum,
                "pruned" => AlgorithmChoice::PatternEnumPruned,
                "le" => AlgorithmChoice::LinearEnum,
                "topk" => AlgorithmChoice::LinearEnumTopK,
                "baseline" => AlgorithmChoice::Baseline,
                "auto" => AlgorithmChoice::Auto,
                _ => {
                    return CommandResult::Error(
                        "algo must be pe|pruned|le|topk|baseline|auto".into(),
                    )
                }
            };
            session.algo = algo;
            CommandResult::Applied(format!("algo = {v}"))
        }
        (":mmr", Some("off")) => {
            session.mmr = None;
            CommandResult::Applied("mmr = off".into())
        }
        (":mmr", Some(v)) => match v.parse::<f64>() {
            Ok(l) if (0.0..=1.0).contains(&l) => {
                session.mmr = Some(l);
                CommandResult::Applied(format!("mmr = {l}"))
            }
            _ => CommandResult::Error("mmr takes a λ in [0,1] or `off`".into()),
        },
        (":explain", Some(v)) => match v.parse::<usize>() {
            Ok(i) if i >= 1 => CommandResult::Explain(i - 1),
            _ => CommandResult::Error("explain takes an answer rank (1-based)".into()),
        },
        _ => CommandResult::Error(format!(
            "unknown command {cmd:?}; commands: :k :rows :algo :rho :lambda :mmr :explain :stats :quit"
        )),
    }
}

fn repl(engine: &SearchEngine) {
    let mut session = Session::default();
    let mut last: Option<SearchResponse> = None;
    let stdin = std::io::stdin();
    loop {
        print!("patternkb> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with(':') {
            match apply_command(&mut session, line) {
                CommandResult::Quit => break,
                CommandResult::Applied(msg) => println!("{msg}"),
                CommandResult::Error(msg) => println!("error: {msg}"),
                CommandResult::Stats => {
                    println!("graph: {}", GraphStats::of(engine.graph()));
                    println!("index: {:?}", engine.index());
                }
                CommandResult::Explain(i) => match &last {
                    Some(resp) => match resp.patterns.get(i) {
                        Some(p) => {
                            let keywords: Vec<&str> = resp
                                .query
                                .keywords
                                .iter()
                                .map(|&w| engine.text().vocab().resolve(w))
                                .collect();
                            println!("{}", explain::explain_score(p));
                            if let Some(tree) = p.trees.first() {
                                println!(
                                    "{}",
                                    explain::explain_tree(engine.graph(), tree, &keywords)
                                );
                            }
                        }
                        None => println!("error: last query had {} answers", resp.patterns.len()),
                    },
                    None => println!("error: run a query first"),
                },
            }
            continue;
        }

        // A keyword query: one request, one response.
        let response = match engine.respond(&session.request(line)) {
            Ok(response) => response,
            Err(e) => {
                println!("error: {e}");
                if let Error::UnknownWords(ref ws) = e {
                    for w in ws {
                        let hints = patternkb::text::suggest::suggest(engine.text().vocab(), w);
                        if !hints.is_empty() {
                            let names: Vec<&str> =
                                hints.iter().take(5).map(|(_, t)| t.as_str()).collect();
                            println!("  did you mean ({w}): {}?", names.join(", "));
                        }
                    }
                }
                continue;
            }
        };
        if session.algo == AlgorithmChoice::Auto {
            println!("(planner chose {:?})", response.algorithm);
        }
        if response.is_empty() && !response.relaxations.is_empty() {
            println!("no answers; try dropping keywords:");
            for r in response.relaxations.iter().take(3) {
                let kept: Vec<&str> = r
                    .keywords
                    .iter()
                    .map(|&w| engine.text().vocab().resolve(w))
                    .collect();
                println!(
                    "  {:?} ({} candidate roots)",
                    kept.join(" "),
                    r.candidate_roots
                );
            }
        }
        println!(
            "{} pattern(s) from {} subtree(s), {} candidate roots over {} shard(s), {:.2} ms",
            response.patterns.len(),
            response.stats.subtrees,
            response.stats.candidate_roots,
            response.stats.per_shard.len().max(1),
            response.stats.elapsed.as_secs_f64() * 1e3
        );
        for (rank, (p, table)) in response.patterns.iter().zip(&response.tables).enumerate() {
            println!(
                "\n#{} score={:.5} rows={}  {}",
                rank + 1,
                p.score,
                p.num_trees,
                p.display(engine.graph())
            );
            let preview = table.truncate_rows(session.rows);
            println!("{}", preview.render());
        }
        last = Some(response);
    }
}

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn build_graph(args: &[String]) -> Result<(KnowledgeGraph, String), String> {
    let mode = args.first().map(String::as_str).unwrap_or("figure1");
    let seed: u64 = flag_value(args, "--seed").unwrap_or(42);
    match mode {
        "figure1" => Ok((patternkb::datagen::figure1().0, "figure1".into())),
        "wiki" => {
            let entities = flag_value(args, "--entities").unwrap_or(10_000);
            let cfg = patternkb::datagen::WikiConfig {
                entities,
                seed,
                ..patternkb::datagen::WikiConfig::default()
            };
            Ok((
                patternkb::datagen::wiki::wiki(&cfg),
                format!("wiki/{entities}"),
            ))
        }
        "imdb" => {
            let movies = flag_value(args, "--movies").unwrap_or(5_000);
            let cfg = patternkb::datagen::ImdbConfig { movies, seed };
            Ok((
                patternkb::datagen::imdb::imdb(&cfg),
                format!("imdb/{movies}"),
            ))
        }
        "load" => {
            let path = args.get(1).ok_or("load needs a file path")?;
            let g = snapshot::load(std::path::Path::new(path))
                .map_err(|e| format!("cannot load {path}: {e}"))?;
            Ok((g, format!("load/{path}")))
        }
        other => Err(format!("unknown dataset {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_mutate_session() {
        let mut s = Session::default();
        assert!(matches!(
            apply_command(&mut s, ":k 25"),
            CommandResult::Applied(_)
        ));
        assert_eq!(s.k, 25);
        assert!(matches!(
            apply_command(&mut s, ":algo topk"),
            CommandResult::Applied(_)
        ));
        assert_eq!(s.algo, AlgorithmChoice::LinearEnumTopK);
        assert!(matches!(
            apply_command(&mut s, ":rho 0.25"),
            CommandResult::Applied(_)
        ));
        assert!(matches!(
            apply_command(&mut s, ":lambda 500"),
            CommandResult::Applied(_)
        ));
        assert!(matches!(
            apply_command(&mut s, ":quit"),
            CommandResult::Quit
        ));
    }

    #[test]
    fn session_builds_requests() {
        let mut s = Session::default();
        apply_command(&mut s, ":k 3");
        apply_command(&mut s, ":algo auto");
        apply_command(&mut s, ":mmr 0.5");
        let req = s.request("database company");
        assert_eq!(req.k, 3);
        assert_eq!(req.algorithm, AlgorithmChoice::Auto);
        assert_eq!(req.diversify, Some(0.5));
        assert!(req.relax);
    }

    #[test]
    fn mmr_command() {
        let mut s = Session::default();
        assert!(matches!(
            apply_command(&mut s, ":mmr 0.5"),
            CommandResult::Applied(_)
        ));
        assert_eq!(s.mmr, Some(0.5));
        assert!(matches!(
            apply_command(&mut s, ":mmr off"),
            CommandResult::Applied(_)
        ));
        assert_eq!(s.mmr, None);
        assert!(matches!(
            apply_command(&mut s, ":mmr 1.5"),
            CommandResult::Error(_)
        ));
        assert!(matches!(
            apply_command(&mut s, ":mmr banana"),
            CommandResult::Error(_)
        ));
    }

    #[test]
    fn bad_commands_error() {
        let mut s = Session::default();
        assert!(matches!(
            apply_command(&mut s, ":k zero"),
            CommandResult::Error(_)
        ));
        assert!(matches!(
            apply_command(&mut s, ":rho 2.0"),
            CommandResult::Error(_)
        ));
        assert!(matches!(
            apply_command(&mut s, ":algo quantum"),
            CommandResult::Error(_)
        ));
        assert!(matches!(
            apply_command(&mut s, ":frobnicate"),
            CommandResult::Error(_)
        ));
    }

    #[test]
    fn explain_is_one_based() {
        let mut s = Session::default();
        match apply_command(&mut s, ":explain 3") {
            CommandResult::Explain(i) => assert_eq!(i, 2),
            _ => panic!("expected Explain"),
        }
        assert!(matches!(
            apply_command(&mut s, ":explain 0"),
            CommandResult::Error(_)
        ));
    }

    #[test]
    fn graph_modes() {
        let (g, label) = build_graph(&["figure1".to_string()]).unwrap();
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(label, "figure1");
        assert!(build_graph(&["marsian".to_string()]).is_err());
    }

    #[test]
    fn serve_config_from_flags() {
        let args: Vec<String> = [
            "figure1",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--queue",
            "64",
            "--batch",
            "8",
            "--deadline-ms",
            "250",
            "--max-body-bytes",
            "4096",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = serve_config(&args);
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_capacity, 64);
        assert_eq!(cfg.batch_max, 8);
        assert_eq!(cfg.deadline, std::time::Duration::from_millis(250));
        assert_eq!(cfg.max_body_bytes, 4096);
        assert!(cfg.enable_ingest, "ingest is on unless opted out");
        let mut args = args;
        args.push("--no-ingest".to_string());
        assert!(!serve_config(&args).enable_ingest);
    }

    #[test]
    fn serve_config_defaults() {
        let cfg = serve_config(&["figure1".to_string()]);
        let defaults = patternkb::serve::ServeConfig::default();
        assert_eq!(cfg.addr, defaults.addr);
        assert_eq!(cfg.queue_capacity, defaults.queue_capacity);
        assert_eq!(cfg.deadline, defaults.deadline);
    }

    #[test]
    fn serve_engine_builds_for_figure1() {
        let engine = build_serve_engine(&["figure1".to_string()]).unwrap();
        assert_eq!(engine.d(), 3);
        assert!(build_serve_engine(&["marsian".to_string()]).is_err());
    }

    #[test]
    fn storage_flag_parses_and_rejects() {
        use patternkb::search::StorageBackend;
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_storage(&to_args(&["figure1"])).unwrap(),
            StorageBackend::Heap
        );
        assert_eq!(
            parse_storage(&to_args(&["figure1", "--storage", "mmap"])).unwrap(),
            StorageBackend::Mmap
        );
        assert!(parse_storage(&to_args(&["figure1", "--storage", "disk"]))
            .unwrap_err()
            .contains("--storage"));
    }

    #[test]
    fn snapshot_subcommand_writes_v5_and_serve_maps_it() {
        let dir = std::env::temp_dir().join("patternkb_cli_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("figure1.pkb5");
        let args: Vec<String> = ["figure1", "--out", out.to_str().unwrap(), "--shards", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let msg = run_snapshot(&args).unwrap();
        assert!(msg.contains("v5"), "{msg}");

        // The written file boots on the mapped tier and answers queries.
        let spec: Vec<String> = [
            "figure1",
            "--index-snapshot",
            out.to_str().unwrap(),
            "--storage",
            "mmap",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let engine = build_serve_engine(&spec).unwrap();
        assert_eq!(
            engine.storage_backend(),
            patternkb::search::StorageBackend::Mmap
        );
        assert!(engine.snapshot_load_time().is_some());
        let resp = engine
            .respond(&SearchRequest::text("database software company revenue"))
            .unwrap();
        assert_eq!(resp.patterns.len(), 9);

        // Same file under the heap tier: full decode, same answers.
        let spec_heap: Vec<String> = ["figure1", "--index-snapshot", out.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let heap = build_serve_engine(&spec_heap).unwrap();
        assert_eq!(
            heap.storage_backend(),
            patternkb::search::StorageBackend::Heap
        );
        let resp_heap = heap
            .respond(&SearchRequest::text("database software company revenue"))
            .unwrap();
        for (a, b) in resp.patterns.iter().zip(&resp_heap.patterns) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        std::fs::remove_file(&out).ok();
        assert!(
            run_snapshot(&["figure1".to_string()]).is_err(),
            "--out required"
        );
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["wiki", "--d", "4", "--entities", "99"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value::<usize>(&args, "--d"), Some(4));
        assert_eq!(flag_value::<usize>(&args, "--entities"), Some(99));
        assert_eq!(flag_value::<usize>(&args, "--seed"), None);
    }
}
