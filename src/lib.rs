//! # patternkb
//!
//! Facade crate re-exporting the whole stack: keyword search over knowledge
//! graphs that composes **table answers** from d-height tree patterns,
//! reproducing *"Finding Patterns in a Knowledge Base using Keywords to
//! Compose Table Answers"* (VLDB 2014).
//!
//! ## Quickstart
//!
//! ```
//! use patternkb::prelude::*;
//!
//! // The paper's Figure-1 running example.
//! let (graph, _) = patternkb::datagen::figure1();
//! let engine = SearchEngine::build(graph, SynonymTable::new(), &BuildConfig { d: 3, threads: 1 });
//! let query = engine.parse("database software company revenue").unwrap();
//! let result = engine.search(&query, &SearchConfig::top(10));
//! let top = result.top().unwrap();
//! assert_eq!(top.num_trees, 2); // SQL Server and Oracle DB rows
//! println!("{}", engine.table(top).render());
//! ```

pub use patternkb_datagen as datagen;
pub use patternkb_graph as graph;
pub use patternkb_index as index;
pub use patternkb_search as search;
pub use patternkb_text as text;

/// The items most applications need.
pub mod prelude {
    pub use patternkb_graph::mutate::{GraphDelta, PagerankMode};
    pub use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
    pub use patternkb_index::{BuildConfig, IndexStats};
    pub use patternkb_search::cache::QueryCache;
    pub use patternkb_search::concurrent::SharedEngine;
    pub use patternkb_search::presentation::{present, ColumnOrder, PresentationConfig};
    pub use patternkb_search::topk::SamplingConfig;
    pub use patternkb_search::{
        Algorithm, Query, SearchConfig, SearchEngine, SearchResult, TableAnswer,
    };
    pub use patternkb_text::{Stemmer, SynonymTable};
}
