//! # patternkb
//!
//! Facade crate re-exporting the whole stack: keyword search over knowledge
//! graphs that composes **table answers** from d-height tree patterns,
//! reproducing *"Finding Patterns in a Knowledge Base using Keywords to
//! Compose Table Answers"* (VLDB 2014).
//!
//! The public surface is a request/response API around three types plus
//! one serving handle:
//!
//! * [`EngineBuilder`](prelude::EngineBuilder) — fluent construction;
//! * [`SearchRequest`](prelude::SearchRequest) — what to search for and
//!   every knob, all defaultable;
//! * [`SearchResponse`](prelude::SearchResponse) — ranked patterns, table
//!   answers, the chosen algorithm, stats;
//! * [`SharedEngine`](prelude::SharedEngine) — the concurrent serving
//!   handle with the version-aware result cache built in.
//!
//! ## Quickstart
//!
//! ```
//! use patternkb::prelude::*;
//!
//! // The paper's Figure-1 running example.
//! let (graph, _) = patternkb::datagen::figure1();
//! let engine = EngineBuilder::new().graph(graph).height(3).build()?;
//! let response = engine.respond(
//!     &SearchRequest::text("database software company revenue").k(10),
//! )?;
//! let top = response.top().unwrap();
//! assert_eq!(top.num_trees, 2); // SQL Server and Oracle DB rows
//! println!("{}", response.top_table().unwrap().render());
//! # Ok::<(), patternkb::search::Error>(())
//! ```
//!
//! Serving with live updates goes through the shared handle — same entry
//! point, plus snapshot-swap ingest and response caching:
//!
//! ```
//! use patternkb::prelude::*;
//!
//! let (graph, _) = patternkb::datagen::figure1();
//! let service = EngineBuilder::new()
//!     .graph(graph)
//!     .cache_capacity(512)
//!     .build_shared()?;
//! let req = SearchRequest::text("database company");
//! assert_eq!(service.respond(&req)?.cache, CacheOutcome::Miss);
//! assert_eq!(service.respond(&req)?.cache, CacheOutcome::Hit);
//! # Ok::<(), patternkb::search::Error>(())
//! ```
//!
//! ## Migrating from the pre-0.2 facade
//!
//! The old `search_*` methods remain one release as deprecated shims.
//!
//! | pre-0.2 call | request/response API |
//! |---|---|
//! | `SearchEngine::build(g, syn, &BuildConfig { d, threads })` | `EngineBuilder::new().graph(g).synonyms(syn).height(d).threads(t).build()?` |
//! | `SearchEngine::build_with_stemmer(g, syn, stemmer, cfg)` | `EngineBuilder::new().graph(g).synonyms(syn).stemmer(stemmer)….build()?` |
//! | `SearchEngine::load_index(g, syn, path)` | `EngineBuilder::new().graph(g).synonyms(syn).index_snapshot(path).build()?` |
//! | `engine.parse(text)?` + `engine.search(&q, &cfg)` | `engine.respond(&SearchRequest::text(text).k(k))?` |
//! | `engine.search_with(&q, &cfg, algo)` | `SearchRequest::…​.algorithm(AlgorithmChoice::…)` |
//! | `engine.search_with(&q, &cfg, LinearEnumTopK(samp))` | `SearchRequest::…​.algorithm(AlgorithmChoice::LinearEnumTopK).sampling(samp)` |
//! | `engine.search_auto(&q, &cfg)` → `(result, algo)` | default `AlgorithmChoice::Auto`; the response carries `.algorithm` and `.planned` |
//! | `engine.search_auto_with(&q, &cfg, &planner)` | `SearchRequest::…​.planner(planner)` |
//! | `engine.search_batch(&queries, &cfg, algo, threads)` | `engine.respond_batch(&requests, threads)` |
//! | `SearchConfig { k, scoring, strict_trees, max_rows }` | `SearchRequest` fields `.k` / `.scoring` / `.strict_trees` / `.max_rows` |
//! | `diversify(&result.patterns, &DiversifyConfig { lambda, k })` | `SearchRequest::…​.diversify(lambda)` |
//! | `engine.relax(&q)` on empty results | `SearchRequest::…​.relax(true)` → `response.relaxations` |
//! | `engine.table(&pattern)` per pattern | `response.tables` (aligned with `response.patterns`) |
//! | `present(g, &table, &pcfg)` per table | `SearchRequest::…​.presentation(pcfg)` → `response.presented` |
//! | `QueryCache::new(cap)` + `cache.get_or_compute(…)` | `EngineBuilder::…​.cache_capacity(cap).build_shared()?` + `shared.respond(&req)?` |
//! | `SharedEngine::new(engine)` + manual snapshot/search | `shared.respond(&req)?` (snapshots still available via `shared.snapshot()`) |
//! | panics on bad input | `Result<SearchResponse, patternkb::search::Error>` (`EmptyQuery`, `UnknownWords`, `InvalidRequest`, `Planner`, `Delta`, `Io`) |

pub use patternkb_datagen as datagen;
pub use patternkb_graph as graph;
pub use patternkb_index as index;
pub use patternkb_search as search;
pub use patternkb_text as text;

/// The items most applications need.
pub mod prelude {
    pub use patternkb_graph::mutate::{GraphDelta, PagerankMode};
    pub use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
    pub use patternkb_index::{BuildConfig, IndexStats};
    pub use patternkb_search::cache::QueryCache;
    pub use patternkb_search::concurrent::SharedEngine;
    pub use patternkb_search::presentation::{present, ColumnOrder, PresentationConfig};
    pub use patternkb_search::topk::SamplingConfig;
    pub use patternkb_search::{
        Algorithm, AlgorithmChoice, CacheOutcome, EngineBuilder, Error, Query, SearchConfig,
        SearchEngine, SearchRequest, SearchResponse, SearchResult, TableAnswer,
    };
    pub use patternkb_text::{Stemmer, SynonymTable};
}
