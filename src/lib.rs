//! # patternkb
//!
//! Facade crate re-exporting the whole stack: keyword search over knowledge
//! graphs that composes **table answers** from d-height tree patterns,
//! reproducing *"Finding Patterns in a Knowledge Base using Keywords to
//! Compose Table Answers"* (VLDB 2014).
//!
//! The public surface is a request/response API around three types plus
//! one serving handle:
//!
//! * [`EngineBuilder`](prelude::EngineBuilder) — fluent construction;
//! * [`SearchRequest`](prelude::SearchRequest) — what to search for and
//!   every knob, all defaultable;
//! * [`SearchResponse`](prelude::SearchResponse) — ranked patterns, table
//!   answers, the chosen algorithm, stats;
//! * [`SharedEngine`](prelude::SharedEngine) — the concurrent serving
//!   handle with the version-aware result cache built in.
//!
//! ## Quickstart
//!
//! ```
//! use patternkb::prelude::*;
//!
//! // The paper's Figure-1 running example.
//! let (graph, _) = patternkb::datagen::figure1();
//! let engine = EngineBuilder::new().graph(graph).height(3).build()?;
//! let response = engine.respond(
//!     &SearchRequest::text("database software company revenue").k(10),
//! )?;
//! let top = response.top().unwrap();
//! assert_eq!(top.num_trees, 2); // SQL Server and Oracle DB rows
//! println!("{}", response.top_table().unwrap().render());
//! # Ok::<(), patternkb::search::Error>(())
//! ```
//!
//! Serving with live updates goes through the shared handle — same entry
//! point, plus snapshot-swap ingest and response caching:
//!
//! ```
//! use patternkb::prelude::*;
//!
//! let (graph, _) = patternkb::datagen::figure1();
//! let service = EngineBuilder::new()
//!     .graph(graph)
//!     .cache_capacity(512)
//!     .build_shared()?;
//! let req = SearchRequest::text("database company");
//! assert_eq!(service.respond(&req)?.cache, CacheOutcome::Miss);
//! assert_eq!(service.respond(&req)?.cache, CacheOutcome::Hit);
//! # Ok::<(), patternkb::search::Error>(())
//! ```
//!
//! ## Sharded execution
//!
//! The engine partitions its path indexes into **root-range shards**
//! (default: one per available core; knob:
//! [`EngineBuilder::shards`](prelude::EngineBuilder::shards)). Every query
//! runs one worker per shard and merges the per-shard top-k heaps, with
//! answers **bit-identical** to a single-shard engine;
//! `response.stats.per_shard` reports how the work split.
//!
//! ## Serving over HTTP
//!
//! The [`serve`] crate (`patternkb-serve`, std-only) wraps the shared
//! handle in a production HTTP server — fixed worker pool, bounded
//! admission queue with 429/503 load shedding, request micro-batching,
//! Prometheus `/metrics`, and `/admin/reload` hot snapshot swap. Boot it
//! with `patternkb-cli serve <dataset>`; drive it with the `loadgen` bin
//! from `patternkb-bench`. See the README's "Serving" section.
//!
//! ## Migrating from the pre-0.2 facade
//!
//! The deprecated `search_*`/`build*` shims were removed in 0.3 after
//! their one-release grace period. Everything they did is covered by the
//! request/response API above — see the [`patternkb_search`] crate docs
//! for the full surface ([`EngineBuilder`](prelude::EngineBuilder),
//! [`SearchRequest`](prelude::SearchRequest),
//! [`SearchResponse`](prelude::SearchResponse),
//! [`SharedEngine`](prelude::SharedEngine)).

pub use patternkb_datagen as datagen;
pub use patternkb_graph as graph;
pub use patternkb_index as index;
pub use patternkb_search as search;
pub use patternkb_serve as serve;
pub use patternkb_text as text;

/// The items most applications need.
pub mod prelude {
    pub use patternkb_graph::mutate::{GraphDelta, PagerankMode};
    pub use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
    pub use patternkb_index::{BuildConfig, IndexStats};
    pub use patternkb_search::cache::QueryCache;
    pub use patternkb_search::concurrent::SharedEngine;
    pub use patternkb_search::presentation::{present, ColumnOrder, PresentationConfig};
    pub use patternkb_search::topk::SamplingConfig;
    pub use patternkb_search::{
        Algorithm, AlgorithmChoice, CacheOutcome, EngineBuilder, Error, Query, SearchConfig,
        SearchEngine, SearchRequest, SearchResponse, SearchResult, TableAnswer,
    };
    pub use patternkb_text::{Stemmer, SynonymTable};
}
