//! The §5.3 case study: individual subtrees vs. tree patterns
//! (Figures 14–15), on an "XBox Game"-style knowledge base.
//!
//! The paper's query "XBox Game" illustrates why both answer kinds matter:
//! the best *individual* subtrees surface popular entities (high PageRank)
//! with singular patterns, while the top *tree pattern* is the table the
//! user wanted — "a list of XBox games".
//!
//! Run with: `cargo run --example case_study`

use patternkb::graph::GraphBuilder;
use patternkb::prelude::*;

/// A hand-built console/games KB echoing Figure 14's entities.
fn console_kb() -> patternkb::graph::KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let console = b.add_type("Game Console");
    let game = b.add_type("Video Game");
    let company = b.add_type("Company");
    let medium = b.add_type("Storage Medium");

    let platform = b.add_attr("Platform");
    let top_game = b.add_attr("Top Game");
    let usage = b.add_attr("Usage");
    let maker = b.add_attr("Maker");
    let products = b.add_attr("Products");

    let xbox = b.add_node(console, "Xbox");
    let ms = b.add_node(company, "Microsoft");
    let sony = b.add_node(company, "Sony");
    let dvd = b.add_node(medium, "DVD");

    let games = [
        "Halo 2",
        "GTA San Andreas",
        "Painkiller",
        "Fable",
        "Forza Motorsport",
        "Ninja Gaiden",
    ];
    let mut first_game = None;
    for name in games {
        let gnode = b.add_node(game, name);
        b.add_edge(gnode, platform, xbox);
        first_game.get_or_insert(gnode);
    }
    // High-PageRank hubs: everything links to Xbox and DVD.
    b.add_edge(xbox, maker, ms);
    b.add_edge(xbox, top_game, first_game.unwrap());
    b.add_edge(dvd, usage, xbox);
    b.add_edge(sony, products, dvd);
    for i in 0..8 {
        let fan = b.add_node(company, &format!("Accessory Shop {i}"));
        b.add_edge(fan, products, xbox);
        b.add_edge(fan, products, dvd);
    }
    b.build()
}

fn main() {
    let engine = EngineBuilder::new()
        .graph(console_kb())
        .threads(1)
        .build()
        .expect("a graph is configured");
    let query = engine.parse("xbox game").expect("keywords exist");

    // --- Figure 14: top individual valid subtrees ---
    println!("Top individual valid subtrees (Figure 14 analogue):\n");
    let individual = engine.top_individual(&query, &SearchConfig::default(), 3);
    for (rank, t) in individual.iter().enumerate() {
        let g = engine.graph();
        let root = g.node_text(t.tree.root);
        let paths: Vec<String> = t
            .tree
            .paths
            .iter()
            .map(|p| {
                p.nodes
                    .iter()
                    .map(|&n| g.node_text(n).to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            })
            .collect();
        println!(
            "  Top-{} (score {:.4}) root {root:?}: {}",
            rank + 1,
            t.tree.score,
            paths.join("  |  ")
        );
    }

    // --- Figure 15: the top-1 tree pattern is the game list ---
    let response = engine
        .respond(&SearchRequest::text("xbox game").k(3))
        .expect("keywords exist");
    let top = response.top().expect("patterns exist");
    println!(
        "\nTop-1 tree pattern (Figure 15 analogue), {} rows:\n",
        top.num_trees
    );
    println!("{}", response.top_table().expect("tables align").render());

    // The pattern aggregating the per-game subtrees should list many games,
    // which no single individual subtree can.
    assert!(
        response.patterns.iter().any(|p| p.num_trees >= 6),
        "a pattern aggregating all games exists"
    );
}
