//! Operating a pattern-search service on a **live** knowledge base:
//! batched graph mutation, incremental index refresh, a version-aware
//! result cache, and user-facing table presentation.
//!
//! The paper evaluates a static snapshot (index build = 502 s at d = 3 on
//! Wiki, Figure 6). A deployed service cannot rebuild per ingested fact;
//! this example walks the maintenance path the library provides:
//!
//! 1. serve a query (cache miss → computed, cached);
//! 2. serve it again (cache hit, zero work);
//! 3. ingest a new entity with `GraphDelta` → `apply_delta` (incremental
//!    index refresh — only roots near the change are re-enumerated);
//! 4. serve the query again: the cache detects the version bump, the new
//!    row appears;
//! 5. render the answer as Markdown and CSV with friendly column names.
//!
//! Run with: `cargo run --example live_updates`

use patternkb::graph::mutate::{GraphDelta, PagerankMode};
use patternkb::prelude::*;
use patternkb::search::cache::QueryCache;
use patternkb::search::presentation::{present, ColumnOrder, PresentationConfig};

fn main() {
    // --- build the initial service state -------------------------------
    let (graph, _) = patternkb::datagen::figure1();
    let mut engine = SearchEngine::build(
        graph,
        SynonymTable::new(),
        &BuildConfig { d: 3, threads: 1 },
    );
    let cache = QueryCache::new(64);
    let cfg = SearchConfig::top(5);

    // --- 1. first request: miss, computed ------------------------------
    let q = engine.parse("database software company revenue").unwrap();
    let r1 = cache.get_or_compute(&engine, &q, &cfg, Algorithm::PatternEnumPruned);
    println!(
        "request 1: {} patterns, top table has {} rows   (cache: {:?})",
        r1.patterns.len(),
        r1.top().unwrap().num_trees,
        cache.stats()
    );

    // --- 2. repeat request: pure cache hit -----------------------------
    let r2 = cache.get_or_compute(&engine, &q, &cfg, Algorithm::PatternEnumPruned);
    assert!(std::sync::Arc::ptr_eq(&r1, &r2));
    println!("request 2: served from cache          (cache: {:?})", cache.stats());

    // --- 3. ingest a new fact batch -------------------------------------
    // "IBM develops DB2, a relational database, revenue US$ 57 billion."
    let g = engine.graph();
    let soft = g.type_by_text("Software").unwrap();
    let comp = g.type_by_text("Company").unwrap();
    let model = g.type_by_text("Model").unwrap();
    let dev = g.attr_by_text("Developer").unwrap();
    let rev = g.attr_by_text("Revenue").unwrap();
    let genre = g.attr_by_text("Genre").unwrap();
    let mut delta = GraphDelta::new(g);
    let db2 = delta.add_node(soft, "DB2").unwrap();
    let ibm = delta.add_node(comp, "IBM").unwrap();
    let rdb = delta.add_node(model, "Relational database").unwrap();
    delta.add_edge(db2, dev, ibm).unwrap();
    delta.add_edge(db2, genre, rdb).unwrap();
    delta.add_text_edge(ibm, rev, "US$ 57 billion").unwrap();

    let stats = engine.apply_delta(&delta, PagerankMode::Recompute).unwrap();
    println!(
        "\ningest: +{} nodes, +{} edges  →  {} affected roots, {} postings kept, {} re-enumerated",
        delta.num_new_nodes(),
        delta.num_added_edges(),
        stats.affected_roots,
        stats.postings_kept,
        stats.postings_added,
    );

    // --- 4. same request: stale entry rejected, fresh row appears ------
    let q = engine.parse("database software company revenue").unwrap();
    let r3 = cache.get_or_compute(&engine, &q, &cfg, Algorithm::PatternEnumPruned);
    println!(
        "request 3: top table now has {} rows   (cache: {:?})",
        r3.top().unwrap().num_trees,
        cache.stats()
    );
    assert_eq!(r3.top().unwrap().num_trees, r1.top().unwrap().num_trees + 1);

    // --- 5. presentation -------------------------------------------------
    let table = engine.table(r3.top().unwrap());
    let pres = present(
        engine.graph(),
        &table,
        &PresentationConfig {
            order: ColumnOrder::EntitiesFirst,
            ..PresentationConfig::default()
        },
    );
    println!("\nMarkdown:\n{}", pres.to_markdown());
    println!("CSV:\n{}", pres.to_csv());

    assert!(pres.to_markdown().contains("DB2"));
    assert!(pres.to_csv().contains("US$ 57 billion"));
    println!("live-update pipeline verified: ingest → refresh → invalidate → present");
}
