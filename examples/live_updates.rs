//! Operating a pattern-search service on a **live** knowledge base:
//! batched graph mutation, incremental index refresh, the serving
//! handle's built-in version-aware cache, and user-facing table
//! presentation — all through `respond`.
//!
//! The paper evaluates a static snapshot (index build = 502 s at d = 3 on
//! Wiki, Figure 6). A deployed service cannot rebuild per ingested fact;
//! this example walks the maintenance path the library provides:
//!
//! 1. serve a request (cache miss → computed, cached);
//! 2. serve it again (cache hit, zero search work);
//! 3. ingest a new entity with `GraphDelta` → `apply_delta` (incremental
//!    index refresh — only roots near the change are re-enumerated);
//! 4. serve the request again: the cache detects the version bump, the
//!    new row appears;
//! 5. the same request renders Markdown/CSV with friendly column names
//!    via its presentation options.
//!
//! Run with: `cargo run --example live_updates`

use patternkb::prelude::*;

fn main() -> Result<(), Error> {
    // --- build the initial service state -------------------------------
    let (graph, _) = patternkb::datagen::figure1();
    let service = EngineBuilder::new()
        .graph(graph)
        .threads(1)
        .cache_capacity(64)
        .build_shared()?;
    let request = SearchRequest::text("database software company revenue")
        .k(5)
        .algorithm(AlgorithmChoice::PatternEnumPruned)
        .presentation(PresentationConfig {
            order: ColumnOrder::EntitiesFirst,
            ..PresentationConfig::default()
        });

    // --- 1. first request: miss, computed ------------------------------
    let r1 = service.respond(&request)?;
    assert_eq!(r1.cache, CacheOutcome::Miss);
    println!(
        "request 1: {} patterns, top table has {} rows   (cache: {:?})",
        r1.patterns.len(),
        r1.top().unwrap().num_trees,
        service.cache_stats()
    );

    // --- 2. repeat request: pure cache hit -----------------------------
    let r2 = service.respond(&request)?;
    assert_eq!(r2.cache, CacheOutcome::Hit);
    println!(
        "request 2: served from cache          (cache: {:?})",
        service.cache_stats()
    );

    // --- 3. ingest a new fact batch -------------------------------------
    // "IBM develops DB2, a relational database, revenue US$ 57 billion."
    // `ingest_with` builds the delta against the snapshot pinned under
    // the writer lock, so concurrent writers serialize instead of one of
    // them failing validation — this is the same path `POST /admin/ingest`
    // takes in the serving layer.
    let outcome = service
        .ingest_with(PagerankMode::Recompute, |snap| {
            let g = snap.graph();
            let soft = g.type_by_text("Software").unwrap();
            let comp = g.type_by_text("Company").unwrap();
            let model = g.type_by_text("Model").unwrap();
            let dev = g.attr_by_text("Developer").unwrap();
            let rev = g.attr_by_text("Revenue").unwrap();
            let genre = g.attr_by_text("Genre").unwrap();
            let mut delta = GraphDelta::new(g);
            let db2 = delta.add_node(soft, "DB2")?;
            let ibm = delta.add_node(comp, "IBM")?;
            let rdb = delta.add_node(model, "Relational database")?;
            delta.add_edge(db2, dev, ibm)?;
            delta.add_edge(db2, genre, rdb)?;
            delta.add_text_edge(ibm, rev, "US$ 57 billion")?;
            Ok::<_, patternkb::graph::mutate::DeltaError>(delta)
        })
        .expect("ingest");
    let stats = outcome.stats;
    println!(
        "\ningest: engine now at version {}  →  {} affected roots, {} postings kept, {} re-enumerated",
        outcome.version, stats.affected_roots, stats.postings_kept, stats.postings_added,
    );

    // --- 4. same request: stale entry rejected, fresh row appears ------
    let r3 = service.respond(&request)?;
    assert_eq!(r3.cache, CacheOutcome::Miss, "version bump invalidates");
    println!(
        "request 3: top table now has {} rows   (cache: {:?})",
        r3.top().unwrap().num_trees,
        service.cache_stats()
    );
    assert_eq!(r3.top().unwrap().num_trees, r1.top().unwrap().num_trees + 1);
    assert_eq!(service.cache_stats().stale_rejections, 1);

    // --- 5. presentation came with the response -------------------------
    let pres = &r3.presented.as_ref().expect("requested presentation")[0];
    println!("\nMarkdown:\n{}", pres.to_markdown());
    println!("CSV:\n{}", pres.to_csv());

    assert!(pres.to_markdown().contains("DB2"));
    assert!(pres.to_csv().contains("US$ 57 billion"));
    println!("live-update pipeline verified: ingest → refresh → invalidate → present");
    Ok(())
}
