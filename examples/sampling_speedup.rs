//! The §4.2.2 sampling trade-off, live.
//!
//! Generates a Wiki-like KB, finds a query with many valid subtrees, and
//! runs `LINEARENUM-TOPK` at several sampling rates `ρ`, reporting
//! execution time and top-k precision against the exact answer — the
//! experiment of Figure 12 in miniature.
//!
//! Run with: `cargo run --release --example sampling_speedup`

use patternkb::datagen::{queries::QueryGenerator, wiki, WikiConfig};
use patternkb::prelude::*;
use std::time::Instant;

fn main() {
    let graph = wiki::wiki(&WikiConfig {
        entities: 20_000,
        types: 80,
        attrs_per_type: 4,
        attr_pool: 50,
        vocab: 900,
        avg_degree: 4.0,
        value_pool: 300,
        seed: 11,
        ..WikiConfig::default()
    });
    println!(
        "Wiki-like KB: {} entities, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let engine = EngineBuilder::new()
        .graph(graph)
        .height(3)
        .build()
        .expect("a graph is configured");

    // Find a heavy query: many valid subtrees (like §5.2's query 1–3).
    let mut qgen = QueryGenerator::new(engine.graph(), engine.text(), 3, 5);
    let mut heavy: Option<(Query, u64)> = None;
    for _ in 0..600 {
        if let Some(spec) = qgen.anchored(3) {
            let q = Query::from_ids(spec.keywords.iter().copied());
            let n = engine.count_subtrees(&q);
            if heavy.as_ref().map(|(_, best)| n > *best).unwrap_or(true) {
                heavy = Some((q, n));
            }
        }
    }
    let (query, n_subtrees) = heavy.expect("found a query");
    println!("Heaviest sampled query has {n_subtrees} valid subtrees\n");

    let k = 10;
    let base = SearchRequest::query(query)
        .k(k)
        .algorithm(AlgorithmChoice::LinearEnumTopK);

    // Exact reference.
    let t0 = Instant::now();
    let exact = engine
        .respond(&base.clone().sampling(SamplingConfig::exact()))
        .expect("pre-parsed query");
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
    let exact_keys: Vec<Vec<u32>> = exact.patterns.iter().map(|p| p.key()).collect();
    println!(
        "exact LETopK: {exact_ms:8.2} ms, {} patterns",
        exact.patterns.len()
    );

    println!("\n{:>6}  {:>10}  {:>9}", "rho", "time (ms)", "precision");
    for rho in [1.0, 0.5, 0.2, 0.1, 0.05] {
        let t0 = Instant::now();
        let approx = engine
            .respond(&base.clone().sampling(SamplingConfig::new(0, rho, 99)))
            .expect("pre-parsed query");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let hits = approx
            .patterns
            .iter()
            .filter(|p| exact_keys.contains(&p.key()))
            .count();
        let precision = hits as f64 / exact_keys.len().max(1) as f64;
        println!("{rho:>6.2}  {ms:>10.2}  {precision:>9.2}");
    }

    println!(
        "\nSmaller rho trades precision for speed; with rho = 1 the result\n\
         is exact (Theorem 4), and the pairwise error probability shrinks as\n\
         exp(-2((s1-s2)/(s1+s2))^2 rho^2) (Theorem 5). Note the bound is per\n\
         score *gap*: on a KB this small the candidate-root population per\n\
         type is tiny, so near-tied patterns reorder quickly as rho drops —\n\
         at the paper's scale (millions of entities) precision stays high\n\
         far longer."
    );
}
