//! A multi-threaded search service over a live knowledge base.
//!
//! Three query workers call [`SharedEngine::respond`] non-stop while an
//! ingest worker streams new facts in. The shared handle gives every
//! request an immutable snapshot (readers never block), serves repeats
//! from its built-in version-aware cache, and swaps in the post-delta
//! engine once the incremental index refresh finishes (writers never wait
//! for readers). The cost-based planner picks the algorithm per query —
//! [`AlgorithmChoice::Auto`] is the request default.
//!
//! Run with: `cargo run --release --example concurrent_service`

use patternkb::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn main() -> Result<(), Error> {
    // Start from the paper's Figure-1 KB.
    let (graph, _) = patternkb::datagen::figure1();
    let shared = EngineBuilder::new()
        .graph(graph)
        .cache_capacity(128)
        .build_shared()?;

    const INGESTS: usize = 20;
    let stop = AtomicBool::new(false);
    let queries_served = AtomicUsize::new(0);
    let max_rows_seen = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // --- three query workers ---
        for _ in 0..3 {
            scope.spawn(|| {
                let req = SearchRequest::text("database software company revenue").k(5);
                while !stop.load(Ordering::Relaxed) {
                    let response = shared.respond(&req).expect("keywords always present");
                    // Every response is internally consistent: the Figure-3
                    // table exists in all versions, growing as facts land.
                    let rows = response.top().expect("pattern P1 always answers").num_trees;
                    assert!(rows >= 2, "never fewer rows than the base KB");
                    max_rows_seen.fetch_max(rows, Ordering::Relaxed);
                    queries_served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // --- one ingest worker ---
        scope.spawn(|| {
            for i in 0..INGESTS {
                let snap = shared.snapshot();
                let g = snap.graph();
                let soft = g.type_by_text("Software").unwrap();
                let comp = g.type_by_text("Company").unwrap();
                let model = g.type_by_text("Model").unwrap();
                let dev = g.attr_by_text("Developer").unwrap();
                let rev = g.attr_by_text("Revenue").unwrap();
                let genre = g.attr_by_text("Genre").unwrap();

                let mut d = GraphDelta::new(g);
                let sw = d.add_node(soft, &format!("WareDB {i}")).unwrap();
                let co = d.add_node(comp, &format!("Vendor {i} Inc")).unwrap();
                let md = d.add_node(model, "Relational database").unwrap();
                d.add_edge(sw, dev, co).unwrap();
                d.add_edge(sw, genre, md).unwrap();
                d.add_text_edge(co, rev, &format!("US$ {i} billion"))
                    .unwrap();
                let stats = shared.apply_delta(&d, PagerankMode::Frozen).unwrap();
                println!(
                    "ingest {i:>2}: {} affected roots, {} postings kept, {} added (version {})",
                    stats.affected_roots,
                    stats.postings_kept,
                    stats.postings_added,
                    shared.version()
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    // Final state: base 2 rows + every ingested software/vendor pair.
    let response =
        shared.respond(&SearchRequest::text("database software company revenue").k(5))?;
    let final_rows = response.top().unwrap().num_trees;
    let cache = shared.cache_stats();
    println!(
        "\nserved {} queries across {} versions; Figure-3 table grew 2 → {} rows \
         (max seen mid-flight: {}; cache: {} hits / {} misses / {} stale)",
        queries_served.load(Ordering::Relaxed),
        shared.version() + 1,
        final_rows,
        max_rows_seen.load(Ordering::Relaxed),
        cache.hits,
        cache.misses,
        cache.stale_rejections,
    );
    assert_eq!(final_rows, 2 + INGESTS);
    assert_eq!(shared.version(), INGESTS as u64);
    assert!(
        cache.hits > 0,
        "repeated requests must hit the built-in cache"
    );
    Ok(())
}
