//! Height-threshold sensitivity on a citation graph.
//!
//! The Wiki experiment of §5.1 shows answer counts exploding with `d`; the
//! IMDB schema saturates at `d = 3`. A DBLP-like citation graph sits in
//! between: `Cites` chains make ever-deeper interpretations available, so
//! the same query keeps acquiring new tree patterns as `d` grows — exactly
//! the trade-off ("compact answers" vs "enough interpretations") the paper
//! discusses when fixing `d = 3`.
//!
//! Run with: `cargo run --release --example dblp_citations`

use patternkb::datagen::{dblp, DblpConfig};
use patternkb::prelude::*;

fn main() {
    let graph = dblp::dblp(&DblpConfig {
        papers: 3_000,
        avg_citations: 3.0,
        seed: 5,
    });
    println!(
        "DBLP-like KB: {} entities, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // A prolific author: the "Mel Gibson" of this bibliography.
    let author_t = graph.type_by_text("Author").unwrap();
    let star = graph
        .nodes()
        .filter(|&v| graph.node_type(v) == author_t)
        .max_by_key(|&v| graph.in_degree(v))
        .expect("authors exist");
    let first_name = graph.node_text(star).split(' ').next().unwrap().to_string();
    println!(
        "Most prolific author: {} ({} papers)\n",
        graph.node_text(star),
        graph.in_degree(star)
    );

    let query_text = format!("{first_name} paper venue");
    println!("Query: {query_text:?}");
    println!(
        "\n{:>3} {:>12} {:>12} {:>12}",
        "d", "#patterns", "#subtrees", "time (ms)"
    );
    for d in 2..=5 {
        let engine = EngineBuilder::new()
            .graph(graph.clone())
            .height(d)
            .build()
            .expect("d in range");
        let request = SearchRequest::text(&query_text)
            .k(10)
            .algorithm(AlgorithmChoice::PatternEnum);
        let r = match engine.respond(&request) {
            Ok(r) => r,
            Err(Error::UnknownWords(_)) => {
                println!("{d:>3} (query keywords unreachable at this d)");
                continue;
            }
            Err(e) => panic!("unexpected error: {e}"),
        };
        let n_patterns = engine.count_patterns(&r.query);
        let n_subtrees = engine.count_subtrees(&r.query);
        println!(
            "{d:>3} {n_patterns:>12} {n_subtrees:>12} {:>12.2}",
            r.stats.elapsed.as_secs_f64() * 1e3
        );
        if d == 3 {
            if let (Some(top), Some(table)) = (r.top(), r.top_table()) {
                println!("\nTop answer at d = 3 ({} rows):", top.num_trees);
                let preview = table.truncate_rows(6);
                println!("{}\n", preview.render());
            }
        }
    }
    println!("\nCitation chains keep adding interpretations as d grows —");
    println!("the compactness-vs-coverage trade-off behind the paper's d = 3 choice.");
}
