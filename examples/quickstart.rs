//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure-1(d) knowledge graph, runs the paper's query
//! *"database software company revenue"* through the request/response
//! API, and prints the ranked tree patterns with their table answers —
//! reproducing Figures 2 and 3.
//!
//! Run with: `cargo run --example quickstart`

use patternkb::prelude::*;

fn main() -> Result<(), Error> {
    // The exact knowledge graph of Figure 1(d).
    let (graph, _handles) = patternkb::datagen::figure1();
    println!(
        "Knowledge graph: {} entities, {} attribute edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Build the engine: text index + both path-pattern indexes, d = 3.
    let engine = EngineBuilder::new()
        .graph(graph)
        .height(3)
        .threads(1)
        .build()?;

    // The paper's query. One request in, one response out; parsing
    // (tokenize, stem, canonicalize) happens inside respond.
    let response = engine.respond(
        &SearchRequest::text("database software company revenue")
            .k(5)
            .algorithm(AlgorithmChoice::PatternEnum),
    )?;
    println!(
        "\n{} candidate roots, {} valid subtrees, {} tree patterns ({}µs)\n",
        response.stats.candidate_roots,
        response.stats.subtrees,
        response.stats.patterns,
        response.stats.elapsed.as_micros()
    );

    for (rank, (pattern, table)) in response.patterns.iter().zip(&response.tables).enumerate() {
        println!(
            "#{} score={:.4}  {} subtree(s)   pattern: {}",
            rank + 1,
            pattern.score,
            pattern.num_trees,
            pattern.display(engine.graph())
        );
        println!("{}\n", table.render());
    }

    // The top answer is the paper's P1: a table of database software with
    // their developers' revenues (Figure 3).
    let top = response.top().expect("answers exist");
    assert_eq!(top.num_trees, 2);
    println!("Top pattern reproduces Figure 3: SQL Server and Oracle DB rows.");
    Ok(())
}
