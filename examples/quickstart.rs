//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure-1(d) knowledge graph, runs the paper's query
//! *"database software company revenue"*, and prints the ranked tree
//! patterns with their table answers — reproducing Figures 2 and 3.
//!
//! Run with: `cargo run --example quickstart`

use patternkb::prelude::*;

fn main() {
    // The exact knowledge graph of Figure 1(d).
    let (graph, _handles) = patternkb::datagen::figure1();
    println!(
        "Knowledge graph: {} entities, {} attribute edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Build the engine: text index + both path-pattern indexes, d = 3.
    let engine = SearchEngine::build(
        graph,
        SynonymTable::new(),
        &BuildConfig { d: 3, threads: 1 },
    );

    // The paper's query. Parsing tokenizes, stems and canonicalizes.
    let query = engine
        .parse("database software company revenue")
        .expect("all keywords occur in the KB");

    let result = engine.search(&query, &SearchConfig::top(5));
    println!(
        "\n{} candidate roots, {} valid subtrees, {} tree patterns ({}µs)\n",
        result.stats.candidate_roots,
        result.stats.subtrees,
        result.stats.patterns,
        result.stats.elapsed.as_micros()
    );

    for (rank, pattern) in result.patterns.iter().enumerate() {
        println!(
            "#{} score={:.4}  {} subtree(s)   pattern: {}",
            rank + 1,
            pattern.score,
            pattern.num_trees,
            pattern.display(engine.graph())
        );
        println!("{}\n", engine.table(pattern).render());
    }

    // The top answer is the paper's P1: a table of database software with
    // their developers' revenues (Figure 3).
    let top = result.top().expect("answers exist");
    assert_eq!(top.num_trees, 2);
    println!("Top pattern reproduces Figure 3: SQL Server and Oracle DB rows.");
}
