//! Build once, persist, reload: skipping the Figure-6 construction cost.
//!
//! Index construction dominates setup (the paper reports hours at Wiki
//! scale). This example builds an engine, snapshots both the graph and the
//! path indexes to disk, reloads them into a fresh engine, and verifies the
//! answers are identical — then shows the TSV import path for bringing
//! your own knowledge base.
//!
//! Run with: `cargo run --release --example persistence`

use patternkb::datagen::{wiki, WikiConfig};
use patternkb::graph::{import, snapshot as graph_snapshot};
use patternkb::prelude::*;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("patternkb-persistence-example");
    std::fs::create_dir_all(&dir)?;

    // --- build and persist ---
    let graph = wiki::wiki(&WikiConfig::tiny(21));
    let t0 = Instant::now();
    let engine = EngineBuilder::new()
        .graph(graph.clone())
        .height(3)
        .build()
        .expect("a graph is configured");
    let build_time = t0.elapsed();
    let graph_path = dir.join("kb.pkbg");
    let index_path = dir.join("kb.pkbi");
    graph_snapshot::save(&graph, &graph_path)?;
    engine.save_index(&index_path)?;
    println!(
        "built in {:.1} ms; snapshots: graph {} KB, index {} KB",
        build_time.as_secs_f64() * 1e3,
        std::fs::metadata(&graph_path)?.len() / 1024,
        std::fs::metadata(&index_path)?.len() / 1024
    );

    // --- reload ---
    let t0 = Instant::now();
    let reloaded_graph = graph_snapshot::load(&graph_path)?;
    let reloaded = EngineBuilder::new()
        .graph(reloaded_graph)
        .index_snapshot(&index_path)
        .build()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    println!(
        "reloaded in {:.1} ms (no DFS re-enumeration)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // --- identical answers ---
    let mut qgen =
        patternkb::datagen::queries::QueryGenerator::new(engine.graph(), engine.text(), 3, 9);
    let mut checked = 0;
    for _ in 0..10 {
        let Some(spec) = qgen.anchored(2) else {
            continue;
        };
        let req1 = SearchRequest::query(Query::from_ids(spec.keywords.clone()))
            .k(10)
            .algorithm(AlgorithmChoice::PatternEnum);
        let req2 = SearchRequest::text(spec.surface.join(" "))
            .k(10)
            .algorithm(AlgorithmChoice::PatternEnum);
        let a = engine.respond(&req1).expect("ids from this engine");
        let b = reloaded.respond(&req2).expect("same vocabulary");
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert!((x.score - y.score).abs() < 1e-9);
        }
        checked += 1;
    }
    println!("verified {checked} queries return identical answers after reload");

    // --- bring your own KB: the TSV import path ---
    let nodes_tsv = "\
sql\tSoftware\tSQL Server
ora\tSoftware\tOracle DB
ms\tCompany\tMicrosoft
oc\tCompany\tOracle Corp
";
    let edges_tsv = "\
sql\tDeveloper\tnode\tms
ora\tDeveloper\tnode\toc
ms\tRevenue\ttext\tUS$ 77 billion
oc\tRevenue\ttext\tUS$ 37 billion
";
    let custom = import::from_tsv(nodes_tsv, edges_tsv).expect("valid TSV");
    let custom_engine = EngineBuilder::new()
        .graph(custom)
        .threads(1)
        .build()
        .expect("a graph is configured");
    let r = custom_engine
        .respond(&SearchRequest::text("software company revenue").k(1))
        .expect("keywords exist");
    println!("\nTSV-imported KB answers \"software company revenue\":");
    println!("{}", r.top_table().unwrap().render());

    std::fs::remove_file(&graph_path).ok();
    std::fs::remove_file(&index_path).ok();
    Ok(())
}
