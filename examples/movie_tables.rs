//! Table answers over an IMDB-like knowledge base.
//!
//! The paper motivates table answers with queries like "Mel Gibson movies":
//! the user wants a *list* of movies, not one best subtree. This example
//! generates the 7-type IMDB-like KB, picks a prolific (hub) actor, and
//! asks for their movies and genres — showing how subtrees sharing a tree
//! pattern aggregate into one table.
//!
//! Run with: `cargo run --example movie_tables`

use patternkb::datagen::{imdb, ImdbConfig};
use patternkb::prelude::*;

fn main() {
    let graph = imdb::imdb(&ImdbConfig {
        movies: 2_000,
        seed: 7,
    });
    println!(
        "IMDB-like KB: {} entities, {} edges, {} types",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_types() - 1
    );

    // Find the most-cast actor (the analogue of a famous name).
    let star = graph
        .nodes()
        .filter(|&v| graph.type_text(graph.node_type(v)) == "Person")
        .max_by_key(|&v| graph.in_degree(v))
        .expect("people exist");
    let star_name = graph.node_text(star).to_string();
    let first_name = star_name.split(' ').next().unwrap().to_string();
    println!(
        "Star actor: {star_name} (appears in {} credits)",
        graph.in_degree(star)
    );

    // IMDB's schema caps directed paths at 3 nodes, so d = 3 saturates
    // (paper §5.1: "the max length of directed paths is three").
    let engine = EngineBuilder::new()
        .graph(graph)
        .height(3)
        .build()
        .expect("a graph is configured");

    // "«star» movie genre" — like "Mel Gibson movies" plus a genre column.
    let query_text = format!("{first_name} movie genre");
    println!("\nQuery: {query_text:?}\n");
    let response = engine
        .respond(
            &SearchRequest::text(&query_text)
                .k(3)
                .algorithm(AlgorithmChoice::PatternEnum),
        )
        .expect("keywords exist");

    println!(
        "{} tree patterns from {} subtrees ({} ms)\n",
        response.stats.patterns,
        response.stats.subtrees,
        response.stats.elapsed.as_millis()
    );
    for (rank, (pattern, table)) in response.patterns.iter().zip(&response.tables).enumerate() {
        println!(
            "#{} score={:.5} rows={} pattern: {}",
            rank + 1,
            pattern.score,
            pattern.num_trees,
            pattern.display(engine.graph())
        );
        // Print at most 8 rows for readability.
        let preview = table.truncate_rows(8);
        println!("{}\n", preview.render());
    }

    assert!(
        !response.is_empty(),
        "the star's movies must produce at least one table answer"
    );
}
